(* Hardware specifications of the EVEREST target system (Fig. 3 / Fig. 4):
   CPU models (POWER9 cloud, ARM/RISC-V edge), FPGA devices (bus-attached
   coherent and network-attached cloudFPGA), memories and interconnects.

   Numbers are calibrated to public figures for the respective devices; the
   experiments depend on their relative magnitudes, not the absolutes. *)

type cpu = {
  cpu_name : string;
  cores : int;
  freq_ghz : float;
  flops_per_cycle : float;  (* per core, fused-multiply-add SIMD width *)
  mem_bw_gbs : float;
  idle_w : float;
  active_w_per_core : float;
}

let power9 =
  { cpu_name = "POWER9"; cores = 16; freq_ghz = 3.3; flops_per_cycle = 16.0;
    mem_bw_gbs = 140.0; idle_w = 90.0; active_w_per_core = 12.0 }

let x86_server =
  { cpu_name = "x86-server"; cores = 24; freq_ghz = 2.8; flops_per_cycle = 32.0;
    mem_bw_gbs = 120.0; idle_w = 80.0; active_w_per_core = 10.0 }

let arm_edge =
  { cpu_name = "ARM-edge"; cores = 4; freq_ghz = 1.8; flops_per_cycle = 8.0;
    mem_bw_gbs = 12.0; idle_w = 3.0; active_w_per_core = 2.0 }

let riscv_endpoint =
  { cpu_name = "RISC-V-endpoint"; cores = 2; freq_ghz = 1.0; flops_per_cycle = 2.0;
    mem_bw_gbs = 3.0; idle_w = 0.5; active_w_per_core = 0.8 }

(* peak flops of the whole CPU *)
let cpu_peak_flops c =
  float_of_int c.cores *. c.freq_ghz *. 1e9 *. c.flops_per_cycle

(* Execution time of a kernel on [threads] cores with an efficiency factor
   (memory-bound kernels are capped by bandwidth via the roofline). *)
let cpu_time c ~flops ~bytes ~threads =
  let threads = max 1 (min threads c.cores) in
  let compute =
    flops /. (float_of_int threads *. c.freq_ghz *. 1e9 *. c.flops_per_cycle)
  in
  let memory = bytes /. (c.mem_bw_gbs *. 1e9) in
  Float.max compute memory

type attachment = Bus_coherent | Network_attached

type fpga = {
  fpga_name : string;
  attach : attachment;
  luts : int;
  ffs : int;
  dsps : int;
  brams : int;
  clock_mhz : float;
  role_slots : int;  (* shell-role: concurrent partial-reconfig regions *)
  reconfig_s : float;  (* partial reconfiguration time per role *)
  hbm_bw_gbs : float;
  idle_w : float;
  active_w : float;
}

(* AD9V3-class card behind OpenCAPI, as in the POWER9 HELM platform. *)
let bus_fpga =
  { fpga_name = "AD9V3-OpenCAPI"; attach = Bus_coherent; luts = 1_182_000;
    ffs = 2_364_000; dsps = 6_840; brams = 4_032; clock_mhz = 250.0;
    role_slots = 2; reconfig_s = 0.120; hbm_bw_gbs = 38.0; idle_w = 25.0;
    active_w = 60.0 }

(* cloudFPGA module (Kintex-class, standalone on the DC network). *)
let cloud_fpga =
  { fpga_name = "cloudFPGA-KU060"; attach = Network_attached; luts = 663_000;
    ffs = 1_326_000; dsps = 2_760; brams = 2_160; clock_mhz = 200.0;
    role_slots = 2; reconfig_s = 0.080; hbm_bw_gbs = 19.0; idle_w = 15.0;
    active_w = 35.0 }

let edge_fpga =
  { fpga_name = "edge-Zynq"; attach = Bus_coherent; luts = 274_000;
    ffs = 548_000; dsps = 2_520; brams = 912; clock_mhz = 150.0;
    role_slots = 1; reconfig_s = 0.050; hbm_bw_gbs = 4.0; idle_w = 2.0;
    active_w = 8.0 }

let fpga_budget (f : fpga) =
  { Everest_hls.Estimate.luts = f.luts; ffs = f.ffs; dsps = f.dsps;
    brams = f.brams }

(* Kernel execution time on an FPGA given its HLS estimate, rescaled to the
   device clock. *)
let fpga_kernel_time (f : fpga) (e : Everest_hls.Estimate.t) =
  float_of_int e.Everest_hls.Estimate.cycles /. (f.clock_mhz *. 1e6)

type link = {
  link_name : string;
  latency_s : float;
  bandwidth_gbs : float;
  per_msg_s : float;  (* protocol/software overhead per message *)
}

let opencapi =
  { link_name = "OpenCAPI"; latency_s = 0.3e-6; bandwidth_gbs = 25.0;
    per_msg_s = 0.1e-6 }

let pcie3 =
  { link_name = "PCIe3x16"; latency_s = 0.9e-6; bandwidth_gbs = 12.0;
    per_msg_s = 2.0e-6 }

let eth100_tcp =
  { link_name = "100GbE-TCP"; latency_s = 12.0e-6; bandwidth_gbs = 11.0;
    per_msg_s = 8.0e-6 }

let eth10_tcp =
  { link_name = "10GbE-TCP"; latency_s = 30.0e-6; bandwidth_gbs = 1.1;
    per_msg_s = 10.0e-6 }

let eth10_udp =
  { link_name = "10GbE-UDP"; latency_s = 25.0e-6; bandwidth_gbs = 1.2;
    per_msg_s = 3.0e-6 }

let wan =
  { link_name = "WAN"; latency_s = 10.0e-3; bandwidth_gbs = 0.125;
    per_msg_s = 50.0e-6 }

let transfer_time (l : link) ~bytes =
  l.latency_s +. l.per_msg_s +. (float_of_int bytes /. (l.bandwidth_gbs *. 1e9))

(* effective bandwidth including fixed costs *)
let effective_gbs (l : link) ~bytes =
  float_of_int bytes /. transfer_time l ~bytes /. 1e9

type tier = Endpoint | Inner_edge | Cloud

let tier_name = function
  | Endpoint -> "endpoint"
  | Inner_edge -> "inner-edge"
  | Cloud -> "cloud"
