(** Hardware specifications of the EVEREST target system (Fig. 3 / Fig. 4):
    CPU models (POWER9 cloud, ARM/RISC-V edge), FPGA devices (bus-attached
    coherent and network-attached cloudFPGA), and interconnects.

    Numbers are calibrated to public figures for the respective devices;
    the experiments depend on their relative magnitudes, not absolutes. *)

type cpu = {
  cpu_name : string;
  cores : int;
  freq_ghz : float;
  flops_per_cycle : float;  (** Per core (SIMD FMA width). *)
  mem_bw_gbs : float;
  idle_w : float;
  active_w_per_core : float;
}

val power9 : cpu
val x86_server : cpu
val arm_edge : cpu
val riscv_endpoint : cpu

(** Peak flops of the whole CPU. *)
val cpu_peak_flops : cpu -> float

(** Roofline execution time on [threads] cores: max of compute time and
    memory-bandwidth time. *)
val cpu_time : cpu -> flops:float -> bytes:float -> threads:int -> float

(** How an FPGA attaches to its host (the Fig. 4 dichotomy). *)
type attachment = Bus_coherent | Network_attached

type fpga = {
  fpga_name : string;
  attach : attachment;
  luts : int;
  ffs : int;
  dsps : int;
  brams : int;
  clock_mhz : float;
  role_slots : int;  (** Shell-role: concurrent partial-reconfig regions. *)
  reconfig_s : float;  (** Partial reconfiguration time per role. *)
  hbm_bw_gbs : float;
  idle_w : float;
  active_w : float;
}

(** AD9V3-class card behind OpenCAPI (the POWER9 HELM platform). *)
val bus_fpga : fpga

(** cloudFPGA module: standalone on the DC network. *)
val cloud_fpga : fpga

val edge_fpga : fpga

(** Device area budget for {!Everest_hls.Estimate.fits}. *)
val fpga_budget : fpga -> Everest_hls.Estimate.area

(** Kernel execution time from its HLS estimate, rescaled to the device
    clock. *)
val fpga_kernel_time : fpga -> Everest_hls.Estimate.t -> float

type link = {
  link_name : string;
  latency_s : float;
  bandwidth_gbs : float;
  per_msg_s : float;  (** Protocol/software overhead per message. *)
}

val opencapi : link
val pcie3 : link
val eth100_tcp : link
val eth10_tcp : link
val eth10_udp : link
val wan : link

val transfer_time : link -> bytes:int -> float
val effective_gbs : link -> bytes:int -> float

(** Processing tiers of the EVEREST ecosystem (Fig. 3). *)
type tier = Endpoint | Inner_edge | Cloud

val tier_name : tier -> string
