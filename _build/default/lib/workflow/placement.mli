(** Distributed data allocation (§IV: "data representations and distributed
    allocation"; §II: "move the computation closer to the data").

    For every task output of a scheduled plan, decide whether consumers
    pull from the producer, read from a staged hub copy, or receive
    parallel replicas — by comparing modeled transfer costs on the actual
    cluster links. *)

open Everest_platform

type decision =
  | Keep_at_producer
  | Hub of string  (** Stage one copy at this node. *)
  | Replicate_to_consumers  (** Parallel pushes to every consumer. *)

type allocation = {
  task_id : int;
  bytes : int;
  producer : string;
  consumers : string list;
  decision : decision;
  pull_cost_s : float;  (** Cost of the naive pull strategy. *)
  chosen_cost_s : float;
}

(** Cost of consumers pulling straight from the producer. *)
val pull_cost :
  Cluster.t -> producer:string -> consumers:string list -> bytes:int -> float

(** Cost of staging one copy at the hub, consumers pulling from there. *)
val hub_cost :
  Cluster.t -> producer:string -> consumers:string list -> bytes:int -> string ->
  float

(** Best strategy with its naive and chosen costs. *)
val decide :
  Cluster.t -> producer:string -> consumers:string list -> bytes:int ->
  decision * float * float

(** Allocate every consumed task output of a plan. *)
val optimize : Cluster.t -> Scheduler.plan -> allocation list

val total_pull : allocation list -> float
val total_chosen : allocation list -> float

(** Relative modeled saving over naive pulls, in [0, 1). *)
val saving : allocation list -> float

val pp_decision : Format.formatter -> decision -> unit
