(** Workflow schedulers: assignment of tasks to nodes and implementation
    choice.  Baselines (round-robin, min-load) plus HEFT and the
    locality-aware HEFT that models HyperLoom's data-aware placement. *)

open Everest_platform

type assignment = { node : string; impl : Dag.impl }

type plan = {
  dag : Dag.t;
  assignments : assignment array;  (** Indexed by task id. *)
  policy : string;
}

(** Estimated execution time of [impl] on a node, ignoring queuing;
    [infinity] for FPGA implementations on FPGA-less nodes. *)
val exec_estimate : Node.t -> Dag.impl -> float

(** Fastest feasible implementation of a task on a node. *)
val best_impl : Node.t -> Dag.task -> (Dag.impl * float) option

val eligible_nodes : Cluster.t -> Dag.task -> Node.t list

(** Spread tasks across eligible nodes in turn. *)
val round_robin : Cluster.t -> Dag.t -> plan

(** Greedy least-accumulated-work placement. *)
val min_load : Cluster.t -> Dag.t -> plan

(** Heterogeneous earliest-finish-time list scheduling.  With
    [locality_aware], communication costs use the actual cluster links and
    current data placement instead of an average bandwidth. *)
val heft : ?locality_aware:bool -> Cluster.t -> Dag.t -> plan

(** [heft ~locality_aware:true]. *)
val locality : Cluster.t -> Dag.t -> plan

(** Look up a policy by name: "round-robin", "min-load", "heft",
    "heft-locality"/"locality". *)
val by_name : string -> (Cluster.t -> Dag.t -> plan) option
