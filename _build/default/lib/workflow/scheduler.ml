(* Workflow schedulers: assignment of tasks to nodes (and implementation
   choice).  Baselines (round-robin, min-load) plus HEFT and the
   locality-aware scheduler that models HyperLoom's data-aware placement
   ("improve resource utilization and reduce the overall workflow processing
   time", paper §III-A). *)

open Everest_platform

type assignment = { node : string; impl : Dag.impl }

type plan = {
  dag : Dag.t;
  assignments : assignment array;  (* indexed by task id *)
  policy : string;
}

(* Estimated execution time of [impl] on [node], ignoring queuing. *)
let exec_estimate (node : Node.t) (impl : Dag.impl) =
  match impl with
  | Dag.Cpu { flops; bytes; threads } ->
      Spec.cpu_time node.Node.cpu ~flops ~bytes ~threads
  | Dag.Fpga { estimate; in_bytes; out_bytes; _ } -> (
      match node.Node.fpgas with
      | [] -> infinity
      | dev :: _ ->
          let link =
            match dev.Node.fspec.Spec.attach with
            | Spec.Bus_coherent -> Spec.opencapi
            | Spec.Network_attached -> Spec.eth100_tcp
          in
          Spec.fpga_kernel_time dev.Node.fspec estimate
          +. Spec.transfer_time link ~bytes:in_bytes
          +. Spec.transfer_time link ~bytes:out_bytes)

(* Best implementation for a node: fastest feasible. *)
let best_impl (node : Node.t) (t : Dag.task) =
  List.fold_left
    (fun acc impl ->
      let c = exec_estimate node impl in
      match acc with
      | Some (_, best) when best <= c -> acc
      | _ when c = infinity -> acc
      | _ -> Some (impl, c))
    None t.Dag.impls

let eligible_nodes (c : Cluster.t) (t : Dag.task) =
  match t.Dag.pinned with
  | Some n -> [ Cluster.find_node c n ]
  | None ->
      List.filter (fun n -> best_impl n t <> None) c.Cluster.nodes

let assign_or_fail t node =
  match best_impl node t with
  | Some (impl, _) -> { node = node.Node.name; impl }
  | None ->
      (* pinned node without a feasible impl: fall back to first impl *)
      { node = node.Node.name; impl = List.hd t.Dag.impls }

(* ---- round robin ------------------------------------------------------------------ *)

let round_robin (c : Cluster.t) (dag : Dag.t) : plan =
  let counter = ref 0 in
  let assignments =
    Array.map
      (fun (t : Dag.task) ->
        let nodes = eligible_nodes c t in
        let nodes = if nodes = [] then c.Cluster.nodes else nodes in
        let node = List.nth nodes (!counter mod List.length nodes) in
        incr counter;
        assign_or_fail t node)
      dag.Dag.tasks
  in
  { dag; assignments; policy = "round-robin" }

(* ---- min-load --------------------------------------------------------------------- *)

let min_load (c : Cluster.t) (dag : Dag.t) : plan =
  let load : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let get n = Option.value ~default:0.0 (Hashtbl.find_opt load n) in
  let assignments =
    Array.map
      (fun (t : Dag.task) ->
        let nodes = eligible_nodes c t in
        let nodes = if nodes = [] then c.Cluster.nodes else nodes in
        let node =
          List.fold_left
            (fun best n ->
              if get n.Node.name < get best.Node.name then n else best)
            (List.hd nodes) (List.tl nodes)
        in
        let a = assign_or_fail t node in
        Hashtbl.replace load a.node
          (get a.node +. exec_estimate node a.impl);
        a)
      dag.Dag.tasks
  in
  { dag; assignments; policy = "min-load" }

(* ---- HEFT ------------------------------------------------------------------------- *)

(* Average execution cost across nodes and average transfer cost are used
   for the upward rank; earliest-finish-time drives placement. *)
let heft ?(locality_aware = false) (c : Cluster.t) (dag : Dag.t) : plan =
  let nodes = c.Cluster.nodes in
  let n_tasks = Dag.size dag in
  let avg_exec (t : Dag.task) =
    let costs =
      List.filter_map
        (fun n -> Option.map snd (best_impl n t))
        nodes
    in
    if costs = [] then 1.0
    else List.fold_left ( +. ) 0.0 costs /. float_of_int (List.length costs)
  in
  let avg_bw =
    (* representative DC link *)
    Spec.eth100_tcp.Spec.bandwidth_gbs *. 1e9
  in
  let rank = Array.make n_tasks 0.0 in
  for i = n_tasks - 1 downto 0 do
    let t = dag.Dag.tasks.(i) in
    let succ_part =
      List.fold_left
        (fun m s ->
          let comm = float_of_int t.Dag.out_bytes /. avg_bw in
          Float.max m (comm +. rank.(s)))
        0.0 (Dag.consumers dag i)
    in
    rank.(i) <- avg_exec t +. succ_part
  done;
  let order =
    List.sort
      (fun a b -> compare rank.(b) rank.(a))
      (List.init n_tasks Fun.id)
  in
  let node_ready : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let task_finish = Array.make n_tasks 0.0 in
  let task_node = Array.make n_tasks "" in
  let assignments = Array.make n_tasks { node = ""; impl = Dag.Cpu { flops = 0.; bytes = 0.; threads = 1 } } in
  (* schedule in rank order, but dependencies always rank higher, so inputs
     are placed before consumers *)
  List.iter
    (fun i ->
      let t = dag.Dag.tasks.(i) in
      let candidates =
        match t.Dag.pinned with
        | Some n -> [ Cluster.find_node c n ]
        | None -> nodes
      in
      let eft_on (n : Node.t) =
        match best_impl n t with
        | None -> None
        | Some (impl, exec) ->
            let ready_node =
              Option.value ~default:0.0 (Hashtbl.find_opt node_ready n.Node.name)
            in
            let ready_data =
              List.fold_left
                (fun m d ->
                  let src = Cluster.find_node c task_node.(d) in
                  let comm =
                    if locality_aware then
                      Cluster.transfer_time c ~src ~dst:n
                        ~bytes:dag.Dag.tasks.(d).Dag.out_bytes
                    else if String.equal task_node.(d) n.Node.name then 0.0
                    else
                      float_of_int dag.Dag.tasks.(d).Dag.out_bytes /. avg_bw
                  in
                  Float.max m (task_finish.(d) +. comm))
                0.0 t.Dag.inputs
            in
            let start = Float.max ready_node ready_data in
            Some (impl, start +. exec)
      in
      let best =
        List.fold_left
          (fun acc n ->
            match eft_on n with
            | None -> acc
            | Some (impl, eft) -> (
                match acc with
                | Some (_, _, best_eft) when best_eft <= eft -> acc
                | _ -> Some (n, impl, eft)))
          None candidates
      in
      match best with
      | Some (n, impl, eft) ->
          assignments.(i) <- { node = n.Node.name; impl };
          task_finish.(i) <- eft;
          task_node.(i) <- n.Node.name;
          Hashtbl.replace node_ready n.Node.name eft
      | None ->
          let n = List.hd nodes in
          assignments.(i) <- assign_or_fail t n;
          task_node.(i) <- n.Node.name)
    order;
  { dag; assignments;
    policy = (if locality_aware then "heft-locality" else "heft") }

let locality (c : Cluster.t) (dag : Dag.t) : plan = heft ~locality_aware:true c dag

let by_name = function
  | "round-robin" -> Some round_robin
  | "min-load" -> Some min_load
  | "heft" -> Some (heft ~locality_aware:false)
  | "heft-locality" | "locality" -> Some locality
  | _ -> None
