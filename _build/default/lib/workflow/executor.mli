(** Plan execution on the simulated platform.

    Each task waits for its inputs, pulls them from the producers' nodes
    over the cluster links, runs its chosen implementation on its assigned
    node, and signals completion — the measurable counterpart of
    HyperLoom's distributed executor.  Planned bitstreams are preloaded at
    deployment (cloudFPGA configures roles at allocation). *)

type stats = {
  makespan : float;
  task_finish : float array;
  bytes_moved : int;
  transfers : int;
  energy_j : float;
  per_node_tasks : (string * int) list;
  retries : int;  (** Re-executions caused by node failures. *)
}

(** Execute the plan.  [failures] is a list of [(node, time)] pairs: the
    node dies at the simulated time; tasks divert or re-execute on a
    fallback node (HyperLoom-style recovery).
    @raise Invalid_argument if a task never completes or every node fails. *)
val execute :
  ?failures:(string * float) list ->
  Everest_platform.Cluster.t ->
  Scheduler.plan ->
  stats

(** Build a fresh demonstrator, schedule with the named policy, execute.
    @raise Invalid_argument on unknown policy names. *)
val run_on_demonstrator :
  ?cloud_fpgas:int ->
  ?edges:int ->
  ?endpoints:int ->
  ?failures:(string * float) list ->
  policy:string ->
  Dag.t ->
  Scheduler.plan * stats
