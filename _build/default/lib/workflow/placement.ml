(* Distributed data allocation (§IV item 4: "the available techniques for
   data management (e.g., data representations and distributed allocation)"
   and §II: "move the computation closer to the data").

   Given a scheduled plan, every task output has a home node (where it was
   produced) and a set of consumer nodes.  This optimizer decides, per data
   object, whether to

     - keep it at the producer (consumers pull on demand),
     - push one replica to a hub node all consumers read from, or
     - replicate to every consumer ahead of time,

   by comparing modeled transfer costs on the actual cluster links.  The
   replication decision matters for read-hot objects consumed across slow
   links (e.g. an ensemble dataset fanned out to many nodes). *)

open Everest_platform

type decision =
  | Keep_at_producer
  | Hub of string  (* stage one copy at this node *)
  | Replicate_to_consumers

type allocation = {
  task_id : int;
  bytes : int;
  producer : string;
  consumers : string list;  (* node names, deduplicated *)
  decision : decision;
  pull_cost_s : float;  (* cost of the naive strategy *)
  chosen_cost_s : float;
}

(* Cost of consumers pulling straight from the producer.  Pulls to the same
   node are free. *)
let pull_cost (c : Cluster.t) ~producer ~consumers ~bytes =
  let src = Cluster.find_node c producer in
  List.fold_left
    (fun acc name ->
      let dst = Cluster.find_node c name in
      acc +. Cluster.transfer_time c ~src ~dst ~bytes)
    0.0 consumers

(* Cost of staging one copy at [hub], consumers pulling from there. *)
let hub_cost (c : Cluster.t) ~producer ~consumers ~bytes hub =
  let src = Cluster.find_node c producer in
  let h = Cluster.find_node c hub in
  Cluster.transfer_time c ~src ~dst:h ~bytes
  +. List.fold_left
       (fun acc name ->
         let dst = Cluster.find_node c name in
         acc +. Cluster.transfer_time c ~src:h ~dst ~bytes)
       0.0 consumers

let decide (c : Cluster.t) ~producer ~consumers ~bytes : decision * float * float =
  let naive = pull_cost c ~producer ~consumers ~bytes in
  (* candidate hubs: any consumer node (staging where the data is used) *)
  let best_hub =
    List.fold_left
      (fun acc hub ->
        let cost = hub_cost c ~producer ~consumers ~bytes hub in
        match acc with
        | Some (_, best) when best <= cost -> acc
        | _ -> Some (hub, cost))
      None consumers
  in
  (* replication = the hub strategy with every consumer its own hub; with
     our link model that equals the naive pull cost, so it wins only via
     overlap — model it as the max (parallel pushes) plus the initial copy *)
  let replicate =
    match consumers with
    | [] -> infinity
    | _ ->
        let src = Cluster.find_node c producer in
        List.fold_left
          (fun m name ->
            let dst = Cluster.find_node c name in
            Float.max m (Cluster.transfer_time c ~src ~dst ~bytes))
          0.0 consumers
  in
  let candidates =
    (Keep_at_producer, naive)
    :: (Replicate_to_consumers, replicate)
    :: (match best_hub with Some (h, cost) -> [ (Hub h, cost) ] | None -> [])
  in
  let d, cost =
    List.fold_left
      (fun (bd, bc) (d, c) -> if c < bc then (d, c) else (bd, bc))
      (Keep_at_producer, naive) candidates
  in
  (d, naive, cost)

(* Allocate every task output of a plan. *)
let optimize (c : Cluster.t) (plan : Scheduler.plan) : allocation list =
  let dag = plan.Scheduler.dag in
  Array.to_list dag.Dag.tasks
  |> List.filter_map (fun (t : Dag.task) ->
         let consumers =
           Dag.consumers dag t.Dag.id
           |> List.map (fun i -> plan.Scheduler.assignments.(i).Scheduler.node)
           |> List.sort_uniq compare
         in
         if consumers = [] then None
         else
           let producer = plan.Scheduler.assignments.(t.Dag.id).Scheduler.node in
           let decision, pull, chosen =
             decide c ~producer ~consumers ~bytes:t.Dag.out_bytes
           in
           Some
             { task_id = t.Dag.id; bytes = t.Dag.out_bytes; producer;
               consumers; decision; pull_cost_s = pull; chosen_cost_s = chosen })

let total_pull allocs = List.fold_left (fun a x -> a +. x.pull_cost_s) 0.0 allocs

let total_chosen allocs =
  List.fold_left (fun a x -> a +. x.chosen_cost_s) 0.0 allocs

(* Modeled saving of the optimized allocation over naive pulls. *)
let saving allocs =
  let p = total_pull allocs in
  if p <= 0.0 then 0.0 else (p -. total_chosen allocs) /. p

let pp_decision ppf = function
  | Keep_at_producer -> Fmt.string ppf "keep"
  | Hub h -> Fmt.pf ppf "hub<%s>" h
  | Replicate_to_consumers -> Fmt.string ppf "replicate"
