lib/workflow/dag.mli: Everest_hls
