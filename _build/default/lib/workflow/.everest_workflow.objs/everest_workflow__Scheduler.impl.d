lib/workflow/scheduler.ml: Array Cluster Dag Everest_platform Float Fun Hashtbl List Node Option Spec String
