lib/workflow/scheduler.mli: Cluster Dag Everest_platform Node
