lib/workflow/dag.ml: Array Everest_hls List Printf
