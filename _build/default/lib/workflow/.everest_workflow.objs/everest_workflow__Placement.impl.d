lib/workflow/placement.ml: Array Cluster Dag Everest_platform Float Fmt List Scheduler
