lib/workflow/executor.mli: Dag Everest_platform Scheduler
