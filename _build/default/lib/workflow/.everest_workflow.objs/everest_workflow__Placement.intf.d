lib/workflow/placement.mli: Cluster Everest_platform Format Scheduler
