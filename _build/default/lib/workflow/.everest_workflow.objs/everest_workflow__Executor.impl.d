lib/workflow/executor.ml: Array Cluster Dag Desim Everest_hls Everest_platform Float List Node Printf Scheduler Spec
