(* Plan execution on the simulated platform.

   Each task waits for its inputs, pulls them from the producers' nodes over
   the cluster links, runs its chosen implementation on its assigned node,
   and signals completion — the measurable counterpart of HyperLoom's
   distributed executor.

   Fault tolerance: [failures] marks nodes that die at a given simulated
   time.  Tasks launched on a dead node divert to a fallback; tasks whose
   node died while they ran are detected at completion and re-executed
   (HyperLoom re-runs failed tasks from their inputs). *)

open Everest_platform

type stats = {
  makespan : float;
  task_finish : float array;
  bytes_moved : int;
  transfers : int;
  energy_j : float;
  per_node_tasks : (string * int) list;
  retries : int;
}

let execute ?(failures = []) (c : Cluster.t) (plan : Scheduler.plan) : stats =
  let dag = plan.Scheduler.dag in
  let sim = c.Cluster.sim in
  let dead (node : Node.t) =
    match List.assoc_opt node.Node.name failures with
    | Some t -> Desim.now sim >= t
    | None -> false
  in
  let fallback () =
    match List.find_opt (fun n -> not (dead n)) c.Cluster.nodes with
    | Some n -> n
    | None -> invalid_arg "executor: every node failed"
  in
  (* Deployment-time configuration: install every planned bitstream on the
     FPGAs of its assigned node (the cloudFPGA shell configures roles when
     resources are allocated, not lazily at first launch). *)
  Array.iter
    (fun (a : Scheduler.assignment) ->
      match a.Scheduler.impl with
      | Dag.Fpga { bitstream; _ } ->
          let node = Cluster.find_node c a.Scheduler.node in
          List.iter (fun dev -> Node.preload dev ~bitstream) node.Node.fpgas
      | Dag.Cpu _ -> ())
    plan.Scheduler.assignments;
  let n = Dag.size dag in
  let finish = Array.make n (-1.0) in
  let ran_on = Array.make n "" in
  let remaining_deps = Array.map (fun t -> List.length t.Dag.inputs) dag.Dag.tasks in
  let retries = ref 0 in
  let rec launch i =
    let t = dag.Dag.tasks.(i) in
    let a = plan.Scheduler.assignments.(i) in
    let planned = Cluster.find_node c a.Scheduler.node in
    let dst = if dead planned then fallback () else planned in
    run_on i t a dst
  and run_on i (t : Dag.task) (a : Scheduler.assignment) (dst : Node.t) =
    (* pull inputs sequentially (HyperLoom pulls over per-pair connections) *)
    let rec pull inputs k =
      match inputs with
      | [] -> k ()
      | d :: rest ->
          let src = Cluster.find_node c ran_on.(d) in
          Cluster.transfer c ~src ~dst ~bytes:dag.Dag.tasks.(d).Dag.out_bytes
            (fun () -> pull rest k)
    in
    pull t.Dag.inputs (fun () ->
        let done_ () =
          if dead dst then begin
            (* the node died while the task ran: re-execute elsewhere *)
            incr retries;
            run_on i t a (fallback ())
          end
          else begin
            ran_on.(i) <- dst.Node.name;
            finish.(i) <- Desim.now sim;
            List.iter
              (fun s ->
                remaining_deps.(s) <- remaining_deps.(s) - 1;
                if remaining_deps.(s) = 0 then launch s)
              (Dag.consumers dag i)
          end
        in
        match a.Scheduler.impl with
        | Dag.Cpu { flops; bytes; threads } ->
            Node.run_cpu sim dst ~flops ~bytes ~threads done_
        | Dag.Fpga { bitstream; estimate; in_bytes; out_bytes } -> (
            match Node.pick_device dst with
            | None ->
                (* infeasible assignment: degrade to CPU at estimate cycles *)
                Node.run_cpu sim dst
                  ~flops:(float_of_int estimate.Everest_hls.Estimate.cycles *. 10.0)
                  ~bytes:(float_of_int (in_bytes + out_bytes))
                  ~threads:1 done_
            | Some dev ->
                let link =
                  match dev.Node.fspec.Spec.attach with
                  | Spec.Bus_coherent -> Spec.opencapi
                  | Spec.Network_attached -> Spec.eth100_tcp
                in
                Node.run_fpga sim dst dev ~bitstream ~estimate ~host_link:link
                  ~in_bytes ~out_bytes done_))
  in
  Array.iteri
    (fun i t -> if t.Dag.inputs = [] then launch i)
    dag.Dag.tasks;
  Cluster.run c;
  Array.iteri
    (fun i f ->
      if f < 0.0 then
        invalid_arg (Printf.sprintf "executor: task %d never completed" i))
    finish;
  let makespan = Array.fold_left Float.max 0.0 finish in
  let per_node =
    List.map
      (fun (nd : Node.t) -> (nd.Node.name, nd.Node.tasks_run))
      c.Cluster.nodes
  in
  {
    makespan;
    task_finish = finish;
    bytes_moved = c.Cluster.bytes_moved;
    transfers = c.Cluster.transfers;
    energy_j = Cluster.total_energy c;
    per_node_tasks = per_node;
    retries = !retries;
  }

(* Convenience: build a fresh demonstrator, schedule with [policy], run. *)
let run_on_demonstrator ?(cloud_fpgas = 4) ?(edges = 2) ?(endpoints = 4)
    ?failures ~policy dag =
  let c = Cluster.everest_demonstrator ~cloud_fpgas ~edges ~endpoints () in
  match Scheduler.by_name policy with
  | None -> invalid_arg ("unknown scheduling policy " ^ policy)
  | Some f ->
      let plan = f c dag in
      (plan, execute ?failures c plan)
