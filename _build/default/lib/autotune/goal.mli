(** Optimization goals: prioritized constraints plus a rank objective (the
    mARGOt goal structure). *)

type cmp = Le | Ge

type constr = {
  metric : string;
  cmp : cmp;
  bound : float;
  priority : int;  (** Lower number = more important; relaxed last. *)
}

type objective =
  | Minimize of string
  | Maximize of string
  | Combo of (string * float) list
      (** Geometric combination: minimize the product of metric^weight. *)

type t = { constraints : constr list; objective : objective }

val constraint_ : ?priority:int -> string -> cmp -> float -> constr
val make : ?constraints:constr list -> objective -> t

(** Does the point satisfy the constraint?  Missing metrics fail. *)
val satisfies : Knowledge.point -> constr -> bool

(** Rank score; lower is better.
    @raise Invalid_argument when a referenced metric is absent. *)
val score : t -> Knowledge.point -> float

val pp_constr : Format.formatter -> constr -> unit
val pp : Format.formatter -> t -> unit
