(* Optimization goals: prioritized constraints plus a rank objective, the
   mARGOt goal structure ("the optimization goal set for execution, e.g.
   performance or energy consumption", paper §IV). *)

type cmp = Le | Ge

type constr = {
  metric : string;
  cmp : cmp;
  bound : float;
  priority : int;  (* lower number = more important; relaxed last *)
}

type objective =
  | Minimize of string
  | Maximize of string
  (* geometric combination: minimize product of metric^weight *)
  | Combo of (string * float) list

type t = { constraints : constr list; objective : objective }

let constraint_ ?(priority = 1) metric cmp bound = { metric; cmp; bound; priority }

let make ?(constraints = []) objective = { constraints; objective }

let satisfies (p : Knowledge.point) (c : constr) =
  match Knowledge.metric p c.metric with
  | None -> false
  | Some v -> ( match c.cmp with Le -> v <= c.bound | Ge -> v >= c.bound)

(* Rank score: lower is better. *)
let score (g : t) (p : Knowledge.point) =
  match g.objective with
  | Minimize m -> Knowledge.metric_exn p m
  | Maximize m -> -.Knowledge.metric_exn p m
  | Combo ws ->
      List.fold_left
        (fun acc (m, w) ->
          let v = Float.max 1e-30 (Knowledge.metric_exn p m) in
          acc *. Float.pow v w)
        1.0 ws

let pp_constr ppf c =
  Fmt.pf ppf "%s %s %g (p%d)" c.metric
    (match c.cmp with Le -> "<=" | Ge -> ">=")
    c.bound c.priority

let pp ppf g =
  Fmt.pf ppf "constraints=[%a] objective=%s"
    Fmt.(list ~sep:(any "; ") pp_constr)
    g.constraints
    (match g.objective with
    | Minimize m -> "min " ^ m
    | Maximize m -> "max " ^ m
    | Combo ws ->
        String.concat "*"
          (List.map (fun (m, w) -> Printf.sprintf "%s^%g" m w) ws))
