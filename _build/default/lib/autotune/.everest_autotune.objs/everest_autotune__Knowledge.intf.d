lib/autotune/knowledge.mli: Format
