lib/autotune/selector.ml: Goal Knowledge List Option
