lib/autotune/goal.ml: Float Fmt Knowledge List Printf String
