lib/autotune/knowledge.ml: Float Fmt Hashtbl List Option Printf String
