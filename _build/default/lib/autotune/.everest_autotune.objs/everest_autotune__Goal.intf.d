lib/autotune/goal.mli: Format Knowledge
