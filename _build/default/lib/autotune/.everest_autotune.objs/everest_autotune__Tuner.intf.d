lib/autotune/tuner.mli: Goal Knowledge Queue Selector
