lib/autotune/selector.mli: Goal Knowledge
