lib/autotune/tuner.ml: Float Goal Knowledge List Queue Selector String
