(** The mARGOt decision core: select the operating point that satisfies the
    constraints (relaxing the least-important ones when infeasible) and
    optimizes the rank objective, within the feature cluster nearest to the
    current input. *)

type decision = {
  point : Knowledge.point;
  relaxed : Goal.constr list;  (** Constraints that had to be dropped. *)
}

(** Candidates satisfying [constraints]; constraints are dropped from the
    least important (highest priority number) until non-empty.  Returns the
    survivors and the relaxed constraints. *)
val feasible_set :
  Knowledge.point list ->
  Goal.constr list ->
  Goal.constr list ->
  Knowledge.point list * Goal.constr list

(** [None] only when the knowledge is empty. *)
val select :
  Knowledge.t -> Goal.t -> features:(string * float) list -> decision option

(** Best point ignoring clustering and constraints (for regret studies). *)
val oracle : Knowledge.t -> Goal.t -> Knowledge.point option
