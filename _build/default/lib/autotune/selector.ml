(* The mARGOt decision core: select the operating point that satisfies the
   constraints (relaxing the least-important ones when infeasible) and
   optimizes the rank objective, restricted to the feature cluster nearest
   to the current input. *)

type decision = {
  point : Knowledge.point;
  relaxed : Goal.constr list;  (* constraints that had to be dropped *)
}

(* Filter by constraints with priority-aware relaxation: drop constraints
   from least-important (highest priority number) to most-important until
   the candidate set is non-empty. *)
let rec feasible_set candidates (constraints : Goal.constr list) relaxed =
  let ok =
    List.filter
      (fun p -> List.for_all (Goal.satisfies p) constraints)
      candidates
  in
  if ok <> [] || constraints = [] then (ok, relaxed)
  else
    let worst =
      List.fold_left
        (fun acc c ->
          match acc with
          | Some (w : Goal.constr) when w.Goal.priority >= c.Goal.priority -> acc
          | _ -> Some c)
        None constraints
    in
    match worst with
    | None -> (candidates, relaxed)
    | Some w ->
        feasible_set candidates
          (List.filter (fun c -> c != w) constraints)
          (w :: relaxed)

let select (k : Knowledge.t) (g : Goal.t) ~features : decision option =
  let cluster = Knowledge.nearest_cluster k ~features in
  if cluster = [] then None
  else
    let candidates, relaxed = feasible_set cluster g.Goal.constraints [] in
    let candidates = if candidates = [] then cluster else candidates in
    let best =
      List.fold_left
        (fun acc p ->
          let s = Goal.score g p in
          match acc with
          | Some (bs, _) when bs <= s -> acc
          | _ -> Some (s, p))
        None candidates
    in
    Option.map (fun (_, p) -> { point = p; relaxed = List.rev relaxed }) best

(* Oracle: ignores clustering and constraints, returns the true best score
   for regret measurement. *)
let oracle (k : Knowledge.t) (g : Goal.t) =
  List.fold_left
    (fun acc p ->
      let s = Goal.score g p in
      match acc with Some (bs, _) when bs <= s -> acc | _ -> Some (s, p))
    None k.Knowledge.points
  |> Option.map snd
