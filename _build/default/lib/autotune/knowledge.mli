(** Application knowledge: the operating points of a kernel (mARGOt,
    paper ref [11]).

    Each code/hardware variant, measured or estimated under given data
    features, yields an operating point mapping the variant to its expected
    metrics.  The runtime selector consults this knowledge; runtime
    observations refine it. *)

type metrics = (string * float) list

type point = {
  variant : string;
  features : (string * float) list;  (** e.g. ["size"] -> 4096. *)
  metrics : metrics;  (** e.g. ["time_s"], ["energy_j"], ["error"]. *)
}

type t = { kernel : string; mutable points : point list }

val create : string -> point list -> t
val add : t -> point -> unit
val metric : point -> string -> float option

(** @raise Invalid_argument when the metric is absent. *)
val metric_exn : point -> string -> float

val variants : t -> string list

(** Normalized Euclidean distance over the union of feature keys. *)
val feature_distance :
  ?scales:(string * float) list ->
  (string * float) list ->
  (string * float) list ->
  float

(** Per-feature scale (max - min) across the knowledge. *)
val feature_scales : t -> (string * float) list

(** Points whose features are nearest to [features] (the mARGOt feature
    cluster). *)
val nearest_cluster : t -> features:(string * float) list -> point list

(** Exponential-moving-average update of the point matching [variant] (and
    nearest features); unknown variants are added as new points. *)
val observe :
  ?alpha:float ->
  t ->
  variant:string ->
  features:(string * float) list ->
  measured:metrics ->
  unit

val pp_point : Format.formatter -> point -> unit
