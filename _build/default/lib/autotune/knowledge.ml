(* Application knowledge: the operating points of a kernel.

   mARGOt-style (paper [11]): each code/hardware variant measured (or
   estimated by the compiler) under given data features yields an operating
   point mapping the variant to its expected metrics.  The runtime selector
   consults this knowledge; runtime observations refine it. *)

type metrics = (string * float) list

type point = {
  variant : string;
  features : (string * float) list;  (* e.g. "size" -> 4096, "density" -> 0.3 *)
  metrics : metrics;  (* e.g. "time_s", "energy_j", "error" *)
}

type t = { kernel : string; mutable points : point list }

let create kernel points = { kernel; points }

let add k p = k.points <- p :: k.points

let metric p name = List.assoc_opt name p.metrics

let metric_exn p name =
  match metric p name with
  | Some v -> v
  | None ->
      invalid_arg (Printf.sprintf "point %s has no metric %S" p.variant name)

let variants k =
  List.sort_uniq compare (List.map (fun p -> p.variant) k.points)

(* Euclidean distance over the union of feature keys (missing = 0),
   normalized by the scale of each feature across the knowledge. *)
let feature_distance ?(scales = []) a b =
  let keys =
    List.sort_uniq compare (List.map fst a @ List.map fst b)
  in
  sqrt
    (List.fold_left
       (fun acc key ->
         let va = Option.value ~default:0.0 (List.assoc_opt key a) in
         let vb = Option.value ~default:0.0 (List.assoc_opt key b) in
         let s = Option.value ~default:1.0 (List.assoc_opt key scales) in
         let s = if s = 0.0 then 1.0 else s in
         let d = (va -. vb) /. s in
         acc +. (d *. d))
       0.0 keys)

let feature_scales k =
  let tbl : (string, float * float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun p ->
      List.iter
        (fun (key, v) ->
          let lo, hi =
            Option.value ~default:(v, v) (Hashtbl.find_opt tbl key)
          in
          Hashtbl.replace tbl key (Float.min lo v, Float.max hi v))
        p.features)
    k.points;
  Hashtbl.fold
    (fun key (lo, hi) acc -> (key, Float.max 1e-12 (hi -. lo)) :: acc)
    tbl []

(* Points whose features are nearest to [features] (the mARGOt feature
   cluster): all points sharing the minimal feature vector distance. *)
let nearest_cluster k ~features =
  match k.points with
  | [] -> []
  | ps ->
      let scales = feature_scales k in
      let with_d =
        List.map (fun p -> (feature_distance ~scales p.features features, p)) ps
      in
      let dmin = List.fold_left (fun m (d, _) -> Float.min m d) infinity with_d in
      List.filter_map
        (fun (d, p) -> if d <= dmin +. 1e-12 then Some p else None)
        with_d

(* Exponential-moving-average update of the stored metrics of the point
   matching [variant] (and nearest features). *)
let observe ?(alpha = 0.3) k ~variant ~features ~measured =
  let scales = feature_scales k in
  let candidates = List.filter (fun p -> String.equal p.variant variant) k.points in
  match candidates with
  | [] ->
      add k { variant; features; metrics = measured }
  | _ ->
      let best =
        List.fold_left
          (fun acc p ->
            let d = feature_distance ~scales p.features features in
            match acc with
            | Some (bd, _) when bd <= d -> acc
            | _ -> Some (d, p))
          None candidates
      in
      let _, p = Option.get best in
      let updated =
        List.map
          (fun (name, old) ->
            match List.assoc_opt name measured with
            | Some v -> (name, ((1.0 -. alpha) *. old) +. (alpha *. v))
            | None -> (name, old))
          p.metrics
      in
      let extra =
        List.filter (fun (n, _) -> not (List.mem_assoc n p.metrics)) measured
      in
      p.metrics |> ignore;
      k.points <-
        List.map
          (fun q -> if q == p then { p with metrics = updated @ extra } else q)
          k.points

let pp_point ppf p =
  Fmt.pf ppf "%s %a -> %a" p.variant
    Fmt.(list ~sep:(any ",") (pair ~sep:(any "=") string float))
    p.features
    Fmt.(list ~sep:(any ",") (pair ~sep:(any "=") string float))
    p.metrics
