lib/energy/windfarm.ml: Array Weather
