lib/energy/weather.mli:
