lib/energy/forecast.ml: Array Dataset Everest_ml Float List Metrics Mlp Weather Windfarm
