lib/energy/weather.ml: Array Everest_ml Float Metrics Rng
