lib/energy/forecast.mli: Weather Windfarm
