lib/energy/windfarm.mli: Weather
