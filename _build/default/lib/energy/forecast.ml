(* Day-ahead wind-power forecasting (use case A).

   Pipeline: weather ensemble at chosen resolution -> per-hour features
   (ensemble mean/std of wind + calendar) -> learned power model (MLP on
   historical production) -> 24-hour forecast; compared against persistence
   and climatology baselines, on MAE and market imbalance cost. *)

open Everest_ml

type config = {
  resolution_km : float;
  n_members : int;
  hidden : int list;
  epochs : int;
  train_days : int;
}

let default_config =
  { resolution_km = 12.5; n_members = 10; hidden = [ 16; 8 ]; epochs = 120;
    train_days = 45 }

type forecaster = {
  cfg : config;
  net : Mlp.t;
  norm : Dataset.norm;
  y_mean : float;
  y_std : float;
  farm : Windfarm.farm;
}

let features (e : Weather.ensemble) (truth : Weather.series) h =
  let mean, std = Weather.ensemble_mean_std e h in
  let hod = float_of_int (h mod 24) in
  [| mean; std; mean ** 3.0 /. 1000.0;
     sin (2.0 *. Float.pi *. hod /. 24.0);
     cos (2.0 *. Float.pi *. hod /. 24.0);
     truth.(max 0 (h - 24)).Weather.wind_ms  (* yesterday's observed wind *)
  |]

(* Clamp the training window so at least 4 test days remain. *)
let effective_cfg cfg (p : Weather.params) =
  { cfg with train_days = max 2 (min cfg.train_days (p.Weather.days - 4)) }

let train ?(cfg = default_config) ?(farm = Windfarm.default_farm)
    (p : Weather.params) =
  let cfg = effective_cfg cfg p in
  let truth = Weather.truth p in
  let power = Windfarm.production farm truth in
  let ensemble =
    Weather.generate ~n_members:cfg.n_members p truth
      ~resolution_km:cfg.resolution_km
  in
  let hours = Array.length truth in
  let train_hours = min hours (cfg.train_days * 24) in
  let xs = Array.init train_hours (fun h -> features ensemble truth h) in
  let ys_raw = Array.sub power 0 train_hours in
  let norm = Dataset.fit_norm xs in
  let y_mean = Metrics.mean ys_raw in
  let y_std = Float.max 1e-9 (Metrics.stddev ys_raw) in
  let xs_n = Array.map (Dataset.normalize norm) xs in
  let ys = Array.map (fun y -> [| (y -. y_mean) /. y_std |]) ys_raw in
  let net =
    Mlp.create ~seed:5 ~layers:((Array.length xs.(0)) :: cfg.hidden @ [ 1 ])
      ~activation:Mlp.Relu ()
  in
  ignore (Mlp.fit ~epochs:cfg.epochs ~lr:0.005 ~batch_size:32 net xs_n ys);
  ({ cfg; net; norm; y_mean; y_std; farm }, truth, power, ensemble)

(* Forecast the horizon [from_hour, from_hour+24). *)
let predict (f : forecaster) (ensemble : Weather.ensemble)
    (truth : Weather.series) ~from_hour =
  Array.init 24 (fun k ->
      let h = from_hour + k in
      let x = Dataset.normalize f.norm (features ensemble truth h) in
      let y = (Mlp.predict f.net x).(0) in
      Float.max 0.0 ((y *. f.y_std) +. f.y_mean))

(* Baselines *)
let persistence (power : float array) ~from_hour =
  Array.init 24 (fun k -> power.(from_hour + k - 24))

let climatology (power : float array) ~train_hours ~from_hour =
  Array.init 24 (fun k ->
      let hod = (from_hour + k) mod 24 in
      let acc = ref 0.0 and n = ref 0 in
      let h = ref hod in
      while !h < train_hours do
        acc := !acc +. power.(!h);
        incr n;
        h := !h + 24
      done;
      !acc /. float_of_int (max 1 !n))

type eval = {
  mae_kw : float;
  rmse_kw : float;
  imbalance_eur : float;
  ramp_recall : float;
}

(* Evaluate day-ahead forecasts over the test days. *)
let evaluate ?(cfg = default_config) ?(farm = Windfarm.default_farm)
    (p : Weather.params) =
  let cfg = effective_cfg cfg p in
  let f, truth, power, ensemble = train ~cfg ~farm p in
  let hours = Array.length truth in
  let start = cfg.train_days * 24 in
  let days = (hours - start) / 24 - 1 in
  let all_pred = ref [] and all_true = ref [] in
  let all_persist = ref [] and all_climo = ref [] in
  for d = 0 to days - 1 do
    let from_hour = start + (d * 24) in
    let pred = predict f ensemble truth ~from_hour in
    let actual = Array.sub power from_hour 24 in
    all_pred := pred :: !all_pred;
    all_true := actual :: !all_true;
    all_persist := persistence power ~from_hour :: !all_persist;
    all_climo := climatology power ~train_hours:start ~from_hour :: !all_climo
  done;
  let flat l = Array.concat (List.rev !l) in
  let pred = flat all_pred and truth_p = flat all_true in
  let persist = flat all_persist and climo = flat all_climo in
  let rated = Windfarm.rated_farm_kw farm in
  let ramp_threshold = 0.3 *. rated in
  (* ramp events: hour-to-hour production change above 30% of rated power *)
  let ramp_conf pred truth =
    let dp = Array.init (Array.length pred - 1) (fun i -> Float.abs (pred.(i + 1) -. pred.(i))) in
    let dt = Array.init (Array.length truth - 1) (fun i -> Float.abs (truth.(i + 1) -. truth.(i))) in
    Metrics.exceedance_confusion ~threshold:ramp_threshold dp dt
  in
  let eval_of pred =
    { mae_kw = Metrics.mae pred truth_p;
      rmse_kw = Metrics.rmse pred truth_p;
      imbalance_eur = Metrics.imbalance_cost pred truth_p /. 1000.0;
      ramp_recall = Metrics.recall (ramp_conf pred truth_p) }
  in
  (eval_of pred, eval_of persist, eval_of climo)

(* The headline study: forecast quality versus ensemble resolution.  Returns
   (resolution_km, model MAE, member flops) rows. *)
let resolution_sweep ?(resolutions = [ 25.0; 12.5; 5.0; 2.5 ]) (p : Weather.params)
    =
  List.map
    (fun r ->
      let cfg = { default_config with resolution_km = r } in
      let model, _, _, _ = train ~cfg p in
      ignore model;
      let e, _, _ = evaluate ~cfg p in
      let flops = Weather.member_flops ~resolution_km:r ~hours:24 in
      (r, e.mae_kw, e.imbalance_eur, flops))
    resolutions
