(* Synthetic weather for the renewable-energy use case (§VI-A).

   The generator produces a "true" local wind signal combining synoptic
   variability (slow, large-scale), a diurnal cycle, terrain-induced local
   structure (fast, small-scale) and occasional ramp events — the sudden
   local changes the paper says coarse global models miss.

   A ensemble member at a given grid resolution sees the true signal
   low-pass filtered according to its resolution (coarse models smooth away
   local structure) plus model error noise.  Higher resolution keeps more
   local structure: exactly the benefit EVEREST gets from accelerating
   high-resolution ensembles. *)

open Everest_ml

type sample = {
  hour : int;
  wind_ms : float;  (* near-surface wind speed *)
  temp_c : float;
  radiation_wm2 : float;
}

type series = sample array

type params = {
  days : int;
  seed : int;
  ramp_prob_per_day : float;  (* probability of a ramp event *)
  ramp_magnitude : float;
}

let default_params =
  { days = 60; seed = 42; ramp_prob_per_day = 0.3; ramp_magnitude = 6.0 }

(* The hidden truth: hourly local weather. *)
let truth (p : params) : series =
  let rng = Rng.create p.seed in
  let hours = p.days * 24 in
  let synoptic = Array.make hours 0.0 in
  (* AR(1) synoptic signal with ~3-day correlation *)
  let alpha = exp (-1.0 /. 72.0) in
  let s = ref 0.0 in
  for h = 0 to hours - 1 do
    s := (alpha *. !s) +. Rng.gaussian ~sigma:0.6 rng;
    synoptic.(h) <- !s
  done;
  (* terrain-induced fast fluctuations *)
  let local = Array.init hours (fun _ -> Rng.gaussian ~sigma:1.2 rng) in
  (* smooth the local signal slightly (2h correlation) *)
  for h = 1 to hours - 1 do
    local.(h) <- (0.6 *. local.(h - 1)) +. (0.4 *. local.(h))
  done;
  (* ramp events: sharp several-hour excursions *)
  let ramps = Array.make hours 0.0 in
  for d = 0 to p.days - 1 do
    if Rng.float rng < p.ramp_prob_per_day then begin
      let start = (d * 24) + Rng.int rng 18 in
      let sign = if Rng.float rng < 0.5 then 1.0 else -1.0 in
      let dur = 3 + Rng.int rng 4 in
      for k = 0 to dur - 1 do
        if start + k < hours then
          ramps.(start + k) <-
            sign *. p.ramp_magnitude
            *. sin (Float.pi *. float_of_int k /. float_of_int dur)
      done
    end
  done;
  Array.init hours (fun h ->
      let hod = h mod 24 in
      let diurnal = 1.5 *. sin (2.0 *. Float.pi *. float_of_int (hod - 14) /. 24.0) in
      let wind =
        Float.max 0.0
          (8.0 +. (2.5 *. synoptic.(h)) +. diurnal +. (1.8 *. local.(h)) +. ramps.(h))
      in
      let temp =
        12.0 +. (8.0 *. sin (2.0 *. Float.pi *. float_of_int (hod - 15) /. 24.0))
        +. (2.0 *. synoptic.(h))
      in
      let rad =
        Float.max 0.0
          (800.0 *. sin (Float.pi *. float_of_int (hod - 6) /. 12.0))
      in
      { hour = h; wind_ms = wind; temp_c = temp; radiation_wm2 = rad })

(* Grid resolution in km.  The fraction of local structure a model resolves
   falls with grid spacing; 2.5 km keeps most of it, 25 km little. *)
let resolved_fraction ~resolution_km =
  Float.max 0.0 (Float.min 1.0 (1.2 -. (0.045 *. resolution_km)))

(* One ensemble member: filtered truth + resolution-dependent noise. *)
let member (p : params) (truth : series) ~resolution_km ~member_id : series =
  let rng = Rng.create (p.seed + (member_id * 7919) + int_of_float resolution_km) in
  let keep = resolved_fraction ~resolution_km in
  let hours = Array.length truth in
  (* local structure = truth - 24h moving average *)
  let smooth = Array.make hours 0.0 in
  for h = 0 to hours - 1 do
    let lo = max 0 (h - 12) and hi = min (hours - 1) (h + 12) in
    let acc = ref 0.0 in
    for k = lo to hi do
      acc := !acc +. truth.(k).wind_ms
    done;
    smooth.(h) <- !acc /. float_of_int (hi - lo + 1)
  done;
  (* persistent member bias (initial-condition perturbation) *)
  let bias = Rng.gaussian ~sigma:0.5 rng in
  Array.init hours (fun h ->
      let t = truth.(h) in
      let local_part = t.wind_ms -. smooth.(h) in
      let seen =
        smooth.(h) +. (keep *. local_part) +. bias
        +. Rng.gaussian ~sigma:(0.3 +. (0.02 *. resolution_km)) rng
      in
      { t with wind_ms = Float.max 0.0 seen })

type ensemble = { members : series array; resolution_km : float }

let generate ?(n_members = 10) (p : params) (truth : series) ~resolution_km =
  { members =
      Array.init n_members (fun i -> member p truth ~resolution_km ~member_id:i);
    resolution_km }

let ensemble_mean_std (e : ensemble) h =
  let vals = Array.map (fun m -> m.(h).wind_ms) e.members in
  (Metrics.mean vals, Metrics.stddev vals)

(* Simulation cost of one member: ~flops per grid cell per step; halving the
   grid spacing quadruples cells and doubles steps (CFL). *)
let member_flops ~resolution_km ~hours =
  let domain_km = 100.0 in
  let cells = (domain_km /. resolution_km) ** 2.0 in
  let steps_per_hour = 3600.0 /. (6.0 *. resolution_km) in
  cells *. steps_per_hour *. float_of_int hours *. 500.0
