(* Wind-farm power model: standard power curve per turbine. *)

type turbine = {
  cut_in_ms : float;
  rated_ms : float;
  cut_out_ms : float;
  rated_kw : float;
}

let default_turbine =
  { cut_in_ms = 3.0; rated_ms = 12.0; cut_out_ms = 25.0; rated_kw = 2500.0 }

(* Cubic ramp between cut-in and rated speed. *)
let turbine_power (t : turbine) wind_ms =
  if wind_ms < t.cut_in_ms || wind_ms >= t.cut_out_ms then 0.0
  else if wind_ms >= t.rated_ms then t.rated_kw
  else
    let x =
      (wind_ms -. t.cut_in_ms) /. (t.rated_ms -. t.cut_in_ms)
    in
    t.rated_kw *. (x ** 3.0)

type farm = { turbines : int; turbine : turbine; wake_loss : float }

let default_farm = { turbines = 20; turbine = default_turbine; wake_loss = 0.08 }

let farm_power_kw (f : farm) wind_ms =
  float_of_int f.turbines
  *. turbine_power f.turbine wind_ms
  *. (1.0 -. f.wake_loss)

let rated_farm_kw (f : farm) =
  float_of_int f.turbines *. f.turbine.rated_kw *. (1.0 -. f.wake_loss)

(* Power series (kW) from a weather series. *)
let production (f : farm) (w : Weather.series) =
  Array.map (fun (s : Weather.sample) -> farm_power_kw f s.Weather.wind_ms) w
