(** Day-ahead wind-power forecasting (use case A).

    Pipeline: weather ensemble at a chosen resolution -> per-hour features
    (ensemble mean/std + calendar) -> MLP power model trained on historical
    production -> 24-hour forecast; compared against persistence and
    climatology on MAE and market imbalance cost. *)

type config = {
  resolution_km : float;
  n_members : int;
  hidden : int list;
  epochs : int;
  train_days : int;  (** Clamped so at least 4 test days remain. *)
}

val default_config : config

type forecaster

(** Feature vector of one forecast hour. *)
val features : Weather.ensemble -> Weather.series -> int -> float array

(** Train on the first [train_days]; returns the forecaster plus the truth,
    production and ensemble used. *)
val train :
  ?cfg:config ->
  ?farm:Windfarm.farm ->
  Weather.params ->
  forecaster * Weather.series * float array * Weather.ensemble

(** 24-hour forecast starting at [from_hour]. *)
val predict :
  forecaster -> Weather.ensemble -> Weather.series -> from_hour:int -> float array

(** Yesterday-equals-today baseline. *)
val persistence : float array -> from_hour:int -> float array

(** Hour-of-day training average baseline. *)
val climatology : float array -> train_hours:int -> from_hour:int -> float array

type eval = {
  mae_kw : float;
  rmse_kw : float;
  imbalance_eur : float;
  ramp_recall : float;  (** Detected fraction of >30%-of-rated hourly ramps. *)
}

(** Day-ahead evaluation over the test days: (model, persistence,
    climatology). *)
val evaluate :
  ?cfg:config -> ?farm:Windfarm.farm -> Weather.params -> eval * eval * eval

(** The headline study: per resolution, (resolution, model MAE, imbalance
    cost, flop/member). *)
val resolution_sweep :
  ?resolutions:float list -> Weather.params -> (float * float * float * float) list
