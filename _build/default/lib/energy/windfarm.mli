(** Wind-farm power model: standard power curve per turbine, wake losses at
    farm level. *)

type turbine = {
  cut_in_ms : float;
  rated_ms : float;
  cut_out_ms : float;
  rated_kw : float;
}

val default_turbine : turbine

(** Cubic ramp between cut-in and rated speed; zero outside the operating
    envelope. *)
val turbine_power : turbine -> float -> float

type farm = { turbines : int; turbine : turbine; wake_loss : float }

val default_farm : farm
val farm_power_kw : farm -> float -> float
val rated_farm_kw : farm -> float

(** Hourly production series (kW) from a weather series. *)
val production : farm -> Weather.series -> float array
