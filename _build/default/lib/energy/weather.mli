(** Synthetic weather for the renewable-energy use case (§VI-A).

    A hidden "truth" combines synoptic variability, a diurnal cycle,
    terrain-induced local structure and occasional ramp events — the sudden
    local changes the paper says coarse global models miss.  An ensemble
    member at a given grid resolution sees the truth low-pass filtered by
    its resolution plus model noise; higher resolution keeps more local
    structure, which is exactly the benefit EVEREST gets from accelerating
    high-resolution ensembles. *)

type sample = { hour : int; wind_ms : float; temp_c : float; radiation_wm2 : float }
type series = sample array

type params = {
  days : int;
  seed : int;
  ramp_prob_per_day : float;
  ramp_magnitude : float;
}

val default_params : params

(** The hidden truth: hourly local weather, deterministic in the seed. *)
val truth : params -> series

(** Fraction of local structure a model resolves at the grid spacing. *)
val resolved_fraction : resolution_km:float -> float

(** One ensemble member at the given resolution. *)
val member : params -> series -> resolution_km:float -> member_id:int -> series

type ensemble = { members : series array; resolution_km : float }

val generate : ?n_members:int -> params -> series -> resolution_km:float -> ensemble

(** Ensemble mean and spread of wind speed at one hour. *)
val ensemble_mean_std : ensemble -> int -> float * float

(** Simulation cost of one member: halving the grid spacing quadruples the
    cells and doubles the steps (CFL). *)
val member_flops : resolution_km:float -> hours:int -> float
