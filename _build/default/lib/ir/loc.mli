(** Source locations attached to operations, mirroring MLIR's Location. *)

type t =
  | Unknown
  | File of { file : string; line : int; col : int }
  | Name of string  (** A named location, e.g. a DSL node label. *)
  | Fused of t list

val unknown : t

(** [file name line] is a file location (column defaults to 0). *)
val file : ?col:int -> string -> int -> t

val name : string -> t

(** Combine several locations (e.g. after fusion); singletons collapse. *)
val fused : t list -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
