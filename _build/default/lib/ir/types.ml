(* The EVEREST IR type system.

   A small MLIR-like type lattice: scalars, tensors with optionally dynamic
   shapes, memrefs carrying a memory space (the platform distinguishes host
   DRAM, FPGA BRAM/HBM and remote memories), stream/token types used by the
   dataflow dialect, and function types. *)

type scalar = I1 | I8 | I16 | I32 | I64 | F32 | F64 | Index

(* A dimension is either statically known or dynamic ([Dyn]). *)
type dim = Static of int | Dyn

type mem_space = Host | Device of int | Bram | Hbm | Remote of string

type t =
  | Scalar of scalar
  | Tensor of { elt : scalar; shape : dim list }
  | Memref of { elt : scalar; shape : dim list; space : mem_space }
  | Stream of t
  | Token
  | Func of { args : t list; rets : t list }
  | Opaque of string  (* dialect-specific types, e.g. "sec.key" *)

let i1 = Scalar I1
let i8 = Scalar I8
let i16 = Scalar I16
let i32 = Scalar I32
let i64 = Scalar I64
let f32 = Scalar F32
let f64 = Scalar F64
let index = Scalar Index

let tensor elt shape = Tensor { elt; shape = List.map (fun d -> Static d) shape }
let tensor_dyn elt shape = Tensor { elt; shape }
let memref ?(space = Host) elt shape =
  Memref { elt; shape = List.map (fun d -> Static d) shape; space }
let memref_dyn ?(space = Host) elt shape = Memref { elt; shape; space }
let stream t = Stream t
let func args rets = Func { args; rets }
let opaque s = Opaque s

let is_scalar = function Scalar _ -> true | _ -> false
let is_tensor = function Tensor _ -> true | _ -> false
let is_memref = function Memref _ -> true | _ -> false

let is_float_scalar = function Scalar (F32 | F64) -> true | _ -> false
let is_int_scalar = function
  | Scalar (I1 | I8 | I16 | I32 | I64 | Index) -> true
  | _ -> false

let scalar_bits = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 | Index -> 64
  | F32 -> 32
  | F64 -> 64

let elt_type = function
  | Tensor { elt; _ } | Memref { elt; _ } -> Some (Scalar elt)
  | _ -> None

let shape = function
  | Tensor { shape; _ } | Memref { shape; _ } -> Some shape
  | _ -> None

(* Number of elements when the shape is fully static. *)
let num_elements t =
  match shape t with
  | None -> None
  | Some dims ->
      List.fold_left
        (fun acc d ->
          match (acc, d) with
          | Some n, Static k -> Some (n * k)
          | _ -> None)
        (Some 1) dims

let byte_size t =
  match t with
  | Scalar s -> Some ((scalar_bits s + 7) / 8)
  | Tensor { elt; _ } | Memref { elt; _ } -> (
      match num_elements t with
      | Some n -> Some (n * ((scalar_bits elt + 7) / 8))
      | None -> None)
  | _ -> None

let rank t = match shape t with Some s -> Some (List.length s) | None -> None

let static_shape_exn t =
  match shape t with
  | Some dims ->
      List.map (function Static d -> d | Dyn -> invalid_arg "dynamic dim") dims
  | None -> invalid_arg "type has no shape"

let scalar_name = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"
  | Index -> "index"

let mem_space_name = function
  | Host -> "host"
  | Device d -> Printf.sprintf "device<%d>" d
  | Bram -> "bram"
  | Hbm -> "hbm"
  | Remote n -> Printf.sprintf "remote<%s>" n

let pp_dim ppf = function
  | Static d -> Fmt.int ppf d
  | Dyn -> Fmt.string ppf "?"

let rec pp ppf = function
  | Scalar s -> Fmt.string ppf (scalar_name s)
  | Tensor { elt; shape } ->
      Fmt.pf ppf "tensor<%ax%s>" Fmt.(list ~sep:(any "x") pp_dim) shape
        (scalar_name elt)
  | Memref { elt; shape; space } ->
      Fmt.pf ppf "memref<%ax%s, %s>"
        Fmt.(list ~sep:(any "x") pp_dim)
        shape (scalar_name elt) (mem_space_name space)
  | Stream t -> Fmt.pf ppf "stream<%a>" pp t
  | Token -> Fmt.string ppf "token"
  | Func { args; rets } ->
      Fmt.pf ppf "(%a) -> (%a)"
        Fmt.(list ~sep:(any ", ") pp)
        args
        Fmt.(list ~sep:(any ", ") pp)
        rets
  | Opaque s -> Fmt.pf ppf "!%s" s

let to_string t = Fmt.str "%a" pp t

let rec equal a b =
  match (a, b) with
  | Scalar x, Scalar y -> x = y
  | Tensor a, Tensor b -> a.elt = b.elt && a.shape = b.shape
  | Memref a, Memref b -> a.elt = b.elt && a.shape = b.shape && a.space = b.space
  | Stream x, Stream y -> equal x y
  | Token, Token -> true
  | Func a, Func b ->
      List.length a.args = List.length b.args
      && List.length a.rets = List.length b.rets
      && List.for_all2 equal a.args b.args
      && List.for_all2 equal a.rets b.rets
  | Opaque x, Opaque y -> String.equal x y
  | _ -> false

(* Shape compatibility treats dynamic dimensions as wildcards. *)
let dim_compatible a b =
  match (a, b) with Dyn, _ | _, Dyn -> true | Static x, Static y -> x = y

let shape_compatible sa sb =
  List.length sa = List.length sb && List.for_all2 dim_compatible sa sb

let compatible a b =
  match (a, b) with
  | Tensor x, Tensor y -> x.elt = y.elt && shape_compatible x.shape y.shape
  | Memref x, Memref y ->
      x.elt = y.elt && shape_compatible x.shape y.shape && x.space = y.space
  | _ -> equal a b
