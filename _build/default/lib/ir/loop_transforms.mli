(** Loop unrolling and function inlining.

    Both are enablers for the HLS flow: unrolling widens the inner loop
    body (more parallel operations per initiation) and inlining removes
    call boundaries so whole kernels become one synthesizable region.
    Semantics preservation is checked against the interpreter in the test
    suite. *)

(** Trip count of a constant-bound loop; [None] for non-positive steps. *)
val trip_count : lo:int -> hi:int -> step:int -> int option

(** Fully unroll constant-bound [scf.for] loops with trip count <= [limit]
    (default 64); larger loops are left intact.  Iteration arguments chain
    through the unrolled clones. *)
val full_unroll : ?limit:int -> Ir.ctx -> Ir.func -> Ir.func

(** Unroll constant-bound loops by [factor] when the trip count divides
    evenly; other loops are left intact. *)
val unroll_by : Ir.ctx -> factor:int -> Ir.func -> Ir.func

(** Inline every [func.call] whose callee is defined in the module and has
    at most [max_ops] operations (default 1000). *)
val inline_module : ?max_ops:int -> Ir.ctx -> Ir.modul -> Ir.modul

(** {!inline_module} as a pipeline pass. *)
val inline_pass : Pass.t
