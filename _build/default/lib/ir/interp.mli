(** Reference interpreter for the IR.

    Executes arith/scf/memref/tensor/func/sec ops over a small runtime value
    domain.  Used by the test suite to check that compiler transformations
    preserve semantics, and by the platform simulator to obtain ground-truth
    results for software variants.  The interpreter also keeps an operation
    profile that the cost estimators are validated against. *)

(** Runtime values.  Tensors and memrefs share one dense float buffer
    representation. *)
type rt = RInt of int | RFloat of float | RBuf of buf | RToken

and buf = { shape : int list; data : float array; space : Types.mem_space }

exception Runtime_error of string

(** Execution counters accumulated across an evaluation. *)
type profile = {
  mutable scalar_ops : int;
  mutable loads : int;
  mutable stores : int;
  mutable tensor_elems : int;  (** Elements produced by tensor ops. *)
  mutable calls : int;
  mutable crypto_bytes : int;
}

val new_profile : unit -> profile

(** Interpreter state; create one per run. *)
type env

(** [make_env ?max_steps ?modul ctx] builds an environment.  [max_steps]
    bounds the number of evaluated ops (default 10^8); [modul] resolves
    [func.call]. *)
val make_env : ?max_steps:int -> ?modul:Ir.modul -> Ir.ctx -> env

(** {2 Value helpers} *)

val as_int : rt -> int
val as_float : rt -> float
val as_buf : rt -> buf
val buf : ?space:Types.mem_space -> int list -> float array -> rt
val zeros : ?space:Types.mem_space -> int list -> rt

(** Copying constructor from a shape and data array. *)
val tensor_of_array : int list -> float array -> rt

(** Row-major linear index; checks bounds.
    @raise Runtime_error on rank mismatch or out-of-bounds. *)
val linear_index : int list -> int list -> int

(** Einsum-style contraction over dense buffers, e.g. ["ij,jk->ik"]. *)
val einsum : string -> buf list -> buf

(** Evaluate a single op in [env]. *)
val eval_op : env -> Ir.op -> unit

(** Evaluate a straight-line op list. *)
val eval_ops : env -> Ir.op list -> unit

(** Bind [args] to the block arguments, then evaluate its body. *)
val eval_block : env -> Ir.block -> rt list -> unit

(** Call a function value-to-value within an existing environment. *)
val call_func : env -> Ir.func -> rt list -> rt list

(** [run_func ctx m name args] executes [@name] of [m]; returns the results
    and the execution profile.
    @raise Runtime_error on dynamic errors or step-budget exhaustion. *)
val run_func :
  ?max_steps:int -> Ir.ctx -> Ir.modul -> string -> rt list -> rt list * profile

(** Approximate equality on runtime values (relative epsilon on floats). *)
val rt_equal : ?eps:float -> rt -> rt -> bool
