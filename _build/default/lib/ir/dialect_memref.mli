(** [memref] dialect: buffers with explicit memory spaces.

    Memory spaces matter to EVEREST: the compiler moves data between host
    DRAM, FPGA BRAM/HBM and remote nodes, and the HLS memory partitioner
    rewrites single memrefs into banked ones. *)

open Ir

val alloc : ?space:Types.mem_space -> ctx -> Types.scalar -> int list -> op

(** Allocation with dynamic extents supplied as operands. *)
val alloc_dyn :
  ?space:Types.mem_space -> ctx -> Types.scalar -> value list -> Types.dim list -> op

val dealloc : ctx -> value -> op

(** Indexed load; the result type is the element type.
    @raise Invalid_argument when the operand is not a memref. *)
val load : ctx -> value -> value list -> op

(** [store ctx v m idxs] writes [v] into [m] at [idxs]. *)
val store : ctx -> value -> value -> value list -> op

val copy : ctx -> value -> value -> op

(** Change only the memory space: an explicit data transfer. *)
val transfer : ctx -> value -> Types.mem_space -> op

val register : unit -> unit
