(* `memref` dialect: buffers with explicit memory spaces.

   Memory spaces matter to EVEREST: the compiler moves data between host
   DRAM, FPGA BRAM/HBM and remote nodes, and the HLS memory partitioner
   rewrites single memrefs into banked ones. *)

open Ir

let alloc ?(space = Types.Host) ctx elt shape =
  op ctx "memref.alloc" [] [ Types.memref ~space elt shape ]

let alloc_dyn ?(space = Types.Host) ctx elt dims ty_shape =
  op ctx "memref.alloc" dims [ Types.memref_dyn ~space elt ty_shape ]

let dealloc ctx m = op ctx "memref.dealloc" [ m ] []

let load ctx m idxs =
  let elt =
    match m.vty with
    | Types.Memref { elt; _ } -> Types.Scalar elt
    | _ -> invalid_arg "memref.load: not a memref"
  in
  op ctx "memref.load" (m :: idxs) [ elt ]

let store ctx v m idxs = op ctx "memref.store" (v :: m :: idxs) []
let copy ctx src dst = op ctx "memref.copy" [ src; dst ] []

(* Change only the memory space: models an explicit transfer. *)
let transfer ctx m space =
  match m.vty with
  | Types.Memref { elt; shape; _ } ->
      op ctx "memref.transfer" [ m ] [ Types.Memref { elt; shape; space } ]
  | _ -> invalid_arg "memref.transfer: not a memref"

let memref_rank (v : value) =
  match v.vty with Types.Memref { shape; _ } -> List.length shape | _ -> -1

let verify_load (o : Ir.op) =
  match o.operands with
  | m :: idxs when memref_rank m >= 0 ->
      if List.length idxs = memref_rank m then
        Dialect.expect_results 1 o
      else Dialect.err "memref.load: index count must equal rank"
  | _ -> Dialect.err "memref.load: first operand must be a memref"

let verify_store (o : Ir.op) =
  match o.operands with
  | _ :: m :: idxs when memref_rank m >= 0 ->
      if List.length idxs = memref_rank m then Dialect.ok
      else Dialect.err "memref.store: index count must equal rank"
  | _ -> Dialect.err "memref.store: second operand must be a memref"

let register () =
  Dialect.register "memref.alloc" ~doc:"Allocate a buffer in a memory space."
    (Dialect.expect_results 1);
  Dialect.register "memref.dealloc" ~doc:"Free a buffer."
    (Dialect.all [ Dialect.expect_operands 1; Dialect.expect_results 0 ]);
  Dialect.register "memref.load" ~doc:"Indexed read." verify_load;
  Dialect.register "memref.store" ~doc:"Indexed write." verify_store;
  Dialect.register "memref.copy" ~doc:"Bulk copy between buffers."
    (Dialect.all [ Dialect.expect_operands 2; Dialect.expect_results 0 ]);
  Dialect.register "memref.transfer"
    ~doc:"Move a buffer to another memory space."
    (Dialect.all [ Dialect.expect_operands 1; Dialect.expect_results 1 ])
