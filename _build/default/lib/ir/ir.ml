(* Core IR structure: SSA values, operations, blocks, regions, modules.

   The representation is immutable: rewrites build new operation lists and
   substitute values by identity.  Value identities are allocated from a
   context so that freshly built fragments never collide. *)

type value = { vid : int; vty : Types.t }

type op = {
  name : string;  (* fully qualified, e.g. "arith.addf" *)
  operands : value list;
  results : value list;
  attrs : (string * Attr.t) list;
  regions : region list;
  loc : Loc.t;
}

and block = { bargs : value list; body : op list }
and region = block list

type ctx = { mutable next_id : int }

let ctx () = { next_id = 0 }

let fresh_value ctx ty =
  let vid = ctx.next_id in
  ctx.next_id <- ctx.next_id + 1;
  { vid; vty = ty }

let fresh_values ctx tys = List.map (fresh_value ctx) tys

(* Ensure the context allocates above every id present in [ops]; used after
   parsing, which assigns ids itself. *)
let bump_ctx ctx ops =
  let rec max_op m op =
    let m =
      List.fold_left (fun m v -> max m v.vid) m (op.operands @ op.results)
    in
    List.fold_left max_region m op.regions
  and max_region m blocks =
    List.fold_left
      (fun m b ->
        let m = List.fold_left (fun m v -> max m v.vid) m b.bargs in
        List.fold_left max_op m b.body)
      m blocks
  in
  let m = List.fold_left max_op (-1) ops in
  if m >= ctx.next_id then ctx.next_id <- m + 1

let value_equal a b = a.vid = b.vid

let op ?(attrs = []) ?(regions = []) ?(loc = Loc.unknown) ctx name operands
    result_types =
  { name; operands; results = fresh_values ctx result_types; attrs; regions; loc }

let result ?(n = 0) o = List.nth o.results n
let result_opt ?(n = 0) o = List.nth_opt o.results n
let attr key o = Attr.find key o.attrs
let attr_int key o = Attr.find_int key o.attrs
let attr_str key o = Attr.find_str key o.attrs
let attr_bool key o = Attr.find_bool key o.attrs
let attr_float key o = Attr.find_float key o.attrs
let attr_sym key o = Attr.find_sym key o.attrs
let attr_ints key o = Attr.find_ints key o.attrs
let with_attr key v o = { o with attrs = Attr.set key v o.attrs }
let has_attr key o = Option.is_some (attr key o)

let block ?(args = []) body = { bargs = args; body }
let region blocks : region = blocks
let simple_region body = [ block body ]

let dialect_of op =
  match String.index_opt op.name '.' with
  | Some i -> String.sub op.name 0 i
  | None -> op.name

(* Structural traversal *)

let rec iter_ops f (ops : op list) =
  List.iter
    (fun o ->
      f o;
      List.iter (fun r -> List.iter (fun b -> iter_ops f b.body) r) o.regions)
    ops

let rec fold_ops f acc ops =
  List.fold_left
    (fun acc o ->
      let acc = f acc o in
      List.fold_left
        (fun acc r -> List.fold_left (fun acc b -> fold_ops f acc b.body) acc r)
        acc o.regions)
    acc ops

let count_ops ops = fold_ops (fun n _ -> n + 1) 0 ops

(* Substitute values through an op list (including nested regions). *)
let rec substitute (subst : (int * value) list) ops =
  if subst = [] then ops
  else
    List.map
      (fun o ->
        {
          o with
          operands =
            List.map
              (fun v ->
                match List.assoc_opt v.vid subst with
                | Some v' -> v'
                | None -> v)
              o.operands;
          regions =
            List.map
              (List.map (fun b -> { b with body = substitute subst b.body }))
              o.regions;
        })
      ops

(* Clone ops with fresh result values, applying [subst] (vid -> value) to
   operands.  Returns the clones plus the extended substitution mapping old
   result ids to the fresh values. *)
let rec clone_ops ctx (subst : (int * value) list) (ops : op list) :
    op list * (int * value) list =
  List.fold_left
    (fun (acc, subst) (o : op) ->
      let operands =
        List.map
          (fun (v : value) ->
            match List.assoc_opt v.vid subst with Some v' -> v' | None -> v)
          o.operands
      in
      let results = List.map (fun (r : value) -> fresh_value ctx r.vty) o.results in
      let subst =
        List.fold_left2
          (fun s (r : value) (r' : value) -> (r.vid, r') :: s)
          subst o.results results
      in
      let regions, subst =
        List.fold_left
          (fun (rs, subst) region ->
            let blocks, subst =
              List.fold_left
                (fun (bs, subst) (b : block) ->
                  let bargs =
                    List.map (fun (v : value) -> fresh_value ctx v.vty) b.bargs
                  in
                  let subst =
                    List.fold_left2
                      (fun s (v : value) (v' : value) -> (v.vid, v') :: s)
                      subst b.bargs bargs
                  in
                  let body, subst = clone_ops ctx subst b.body in
                  (bs @ [ { bargs; body } ], subst))
                ([], subst) region
            in
            (rs @ [ blocks ], subst))
          ([], subst) o.regions
      in
      (acc @ [ { o with operands; results; regions } ], subst))
    ([], subst) ops

(* A top-level module: named functions plus module-level attributes. *)

type func = {
  fname : string;
  fargs : value list;
  fret_types : Types.t list;
  fbody : op list;
  fattrs : (string * Attr.t) list;
}

type modul = { mname : string; funcs : func list; mattrs : (string * Attr.t) list }

let func ?(attrs = []) name args ret_types body =
  { fname = name; fargs = args; fret_types = ret_types; fbody = body; fattrs = attrs }

let modul ?(attrs = []) name funcs = { mname = name; funcs; mattrs = attrs }

let find_func m name = List.find_opt (fun f -> String.equal f.fname name) m.funcs

let replace_func m f =
  {
    m with
    funcs = List.map (fun g -> if String.equal g.fname f.fname then f else g) m.funcs;
  }

let add_func m f = { m with funcs = m.funcs @ [ f ] }

let func_type f =
  Types.func (List.map (fun v -> v.vty) f.fargs) f.fret_types

let module_op_count m =
  List.fold_left (fun n f -> n + count_ops f.fbody) 0 m.funcs
