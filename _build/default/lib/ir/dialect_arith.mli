(** [arith] dialect: scalar arithmetic, comparisons and casts. *)

open Ir

(** {2 Constants} *)

val const_i : ?ty:Types.t -> ctx -> int -> op
val const_f : ?ty:Types.t -> ctx -> float -> op
val const_index : ctx -> int -> op

(** {2 Binary operations} — result type follows the left operand. *)

val binary : ctx -> string -> value -> value -> op
val addi : ctx -> value -> value -> op
val subi : ctx -> value -> value -> op
val muli : ctx -> value -> value -> op
val divi : ctx -> value -> value -> op
val remi : ctx -> value -> value -> op
val addf : ctx -> value -> value -> op
val subf : ctx -> value -> value -> op
val mulf : ctx -> value -> value -> op
val divf : ctx -> value -> value -> op
val maxf : ctx -> value -> value -> op
val minf : ctx -> value -> value -> op
val andi : ctx -> value -> value -> op
val ori : ctx -> value -> value -> op
val xori : ctx -> value -> value -> op
val shli : ctx -> value -> value -> op
val shri : ctx -> value -> value -> op

(** {2 Comparisons and selection} *)

type cmp_pred = Eq | Ne | Lt | Le | Gt | Ge

val cmp_pred_name : cmp_pred -> string
val cmp_pred_of_name : string -> cmp_pred option
val cmpi : ctx -> cmp_pred -> value -> value -> op
val cmpf : ctx -> cmp_pred -> value -> value -> op
val select : ctx -> value -> value -> value -> op

(** {2 Unary operations} *)

val cast : ctx -> value -> Types.t -> op
val negf : ctx -> value -> op
val sqrtf : ctx -> value -> op
val expf : ctx -> value -> op

(** Value of a constant op, if it is one. *)
val const_value : Ir.op -> Attr.t option

val int_binops : string list
val float_binops : string list

(** Register the dialect's op definitions. *)
val register : unit -> unit
