(** [scf] dialect: structured control flow.

    [scf.for] carries lower/upper/step operands, iteration arguments and a
    single-block body whose block arguments are [induction-var;
    iter-args...], terminated by [scf.yield]. *)

open Ir

val yield : ctx -> value list -> op

(** [for_ ctx lo hi step body] where [body ctx iv iter_args] returns the
    body ops and the values to yield.  The loop's results are the final
    iteration arguments. *)
val for_ :
  ?iter_args:value list ->
  ?attrs:(string * Attr.t) list ->
  ctx ->
  value ->
  value ->
  value ->
  (ctx -> value -> value list -> op list * value list) ->
  op

(** Two-armed conditional with optional results; each arm returns its body
    and yielded values. *)
val if_ :
  ?ret_types:Types.t list ->
  ctx ->
  value ->
  (ctx -> op list * value list) ->
  (ctx -> op list * value list) ->
  op

(** Parallel counted loop: iterations are independent (the compiler emits
    threaded variants from it). *)
val parallel :
  ?attrs:(string * Attr.t) list ->
  ctx ->
  value ->
  value ->
  value ->
  (ctx -> value -> op list) ->
  op

val register : unit -> unit
