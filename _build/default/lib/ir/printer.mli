(** Textual form of the IR (MLIR generic-op style).

    {[ %3 = "arith.addf"(%1, %2) {k = v} : (f64, f64) -> (f64) ]}

    Regions print as brace-enclosed blocks; blocks open with a caret header
    listing block arguments.  {!Parser} is the exact inverse, which the test
    suite checks by round-tripping. *)

val pp_value : Format.formatter -> Ir.value -> unit
val pp_value_typed : Format.formatter -> Ir.value -> unit
val pp_attrs : Format.formatter -> (string * Attr.t) list -> unit

(** [pp_op indent ppf o] prints one op at the given indentation. *)
val pp_op : int -> Format.formatter -> Ir.op -> unit

val pp_region : int -> Format.formatter -> Ir.region -> unit
val pp_func : Format.formatter -> Ir.func -> unit
val pp_module : Format.formatter -> Ir.modul -> unit
val op_to_string : Ir.op -> string
val func_to_string : Ir.func -> string
val module_to_string : Ir.modul -> string
