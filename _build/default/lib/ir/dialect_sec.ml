(* `sec` dialect: the data-centric security annotations of EVEREST.

   Values are classified with confidentiality levels; encrypt/decrypt mark
   boundary crossings; `sec.taint`/`sec.check` express the dynamic
   information-flow-tracking contract the HLS flow instruments (TaintHLS). *)

open Ir

type level = Public | Internal | Confidential | Secret

let level_name = function
  | Public -> "public"
  | Internal -> "internal"
  | Confidential -> "confidential"
  | Secret -> "secret"

let level_of_name = function
  | "public" -> Some Public
  | "internal" -> Some Internal
  | "confidential" -> Some Confidential
  | "secret" -> Some Secret
  | _ -> None

let level_rank = function
  | Public -> 0 | Internal -> 1 | Confidential -> 2 | Secret -> 3

let level_leq a b = level_rank a <= level_rank b

let classify ctx v level =
  op ctx "sec.classify" [ v ] [ v.vty ]
    ~attrs:[ ("level", Attr.str (level_name level)) ]

let encrypt ?(algo = "aes128-ctr") ctx v key =
  op ctx "sec.encrypt" [ v; key ] [ v.vty ] ~attrs:[ ("algo", Attr.str algo) ]

let decrypt ?(algo = "aes128-ctr") ctx v key =
  op ctx "sec.decrypt" [ v; key ] [ v.vty ] ~attrs:[ ("algo", Attr.str algo) ]

let mac ?(algo = "hmac-sha256") ctx v key =
  op ctx "sec.mac" [ v; key ] [ Types.tensor Types.I8 [ 32 ] ]
    ~attrs:[ ("algo", Attr.str algo) ]

let taint ctx v = op ctx "sec.taint" [ v ] [ v.vty ]
let check ctx v = op ctx "sec.check" [ v ] [ v.vty ]

(* Attach a runtime anomaly monitor to a value (timing / range / pattern). *)
let monitor ctx v kind =
  op ctx "sec.monitor" [ v ] [ v.vty ] ~attrs:[ ("kind", Attr.str kind) ]

let verify_level (o : Ir.op) =
  match Ir.attr_str "level" o with
  | Some l when Option.is_some (level_of_name l) -> Dialect.ok
  | Some l -> Dialect.err "sec.classify: unknown level %S" l
  | None -> Dialect.err "sec.classify: missing level"

let register () =
  Dialect.register "sec.classify" ~doc:"Assign a confidentiality level."
    (Dialect.all
       [ Dialect.expect_operands 1; Dialect.expect_results 1;
         (fun o -> verify_level o) ]);
  List.iter
    (fun n ->
      Dialect.register n ~traits:[ Dialect.Pure ]
        ~doc:"Cryptographic boundary op."
        (Dialect.all [ Dialect.expect_operands 2; Dialect.expect_results 1;
                       Dialect.expect_attr "algo" ]))
    [ "sec.encrypt"; "sec.decrypt"; "sec.mac" ];
  List.iter
    (fun n ->
      Dialect.register n ~doc:"Dynamic information-flow tracking marker."
        (Dialect.all [ Dialect.expect_operands 1; Dialect.expect_results 1 ]))
    [ "sec.taint"; "sec.check" ];
  Dialect.register "sec.monitor" ~doc:"Attach a runtime anomaly monitor."
    (Dialect.all
       [ Dialect.expect_operands 1; Dialect.expect_results 1;
         Dialect.expect_attr "kind" ])
