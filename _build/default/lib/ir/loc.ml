(* Source locations attached to every operation, mirroring MLIR's Location. *)

type t =
  | Unknown
  | File of { file : string; line : int; col : int }
  | Name of string
  | Fused of t list

let unknown = Unknown
let file ?(col = 0) fname line = File { file = fname; line; col }
let name n = Name n

let fused = function
  | [] -> Unknown
  | [ l ] -> l
  | ls -> Fused ls

let rec pp ppf = function
  | Unknown -> Fmt.string ppf "loc(unknown)"
  | File { file; line; col } -> Fmt.pf ppf "loc(%s:%d:%d)" file line col
  | Name n -> Fmt.pf ppf "loc(%S)" n
  | Fused ls -> Fmt.pf ppf "loc(fused[%a])" Fmt.(list ~sep:(any ", ") pp) ls

let to_string l = Fmt.str "%a" pp l
