(** [func] dialect: calls and returns between module-level functions. *)

open Ir

val call : ctx -> string -> value list -> Types.t list -> op
val return : ctx -> value list -> op
val register : unit -> unit
