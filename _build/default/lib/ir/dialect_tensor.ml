(* `tensor` dialect: the data-centric abstraction of EVEREST DSLs.

   Value-semantics tensor operations carried from the tensor-expression DSL
   (CFDlang/TeIL lineage).  The compiler either lowers them to scf/memref
   loop nests (software variants) or outlines chains of them into hw.kernel
   ops (hardware variants). *)

open Ir

let elt_of (v : value) =
  match v.vty with
  | Types.Tensor { elt; _ } -> elt
  | Types.Scalar s -> s
  | _ -> invalid_arg "tensor op on non-tensor value"


let fill ctx scalar ty = op ctx "tensor.fill" [ scalar ] [ ty ]

let elementwise ctx kind operands =
  match operands with
  | v :: _ ->
      op ctx "tensor.elementwise" operands [ v.vty ]
        ~attrs:[ ("kind", Attr.str kind) ]
  | [] -> invalid_arg "tensor.elementwise: no operands"

let add ctx a b = elementwise ctx "add" [ a; b ]
let sub ctx a b = elementwise ctx "sub" [ a; b ]
let mul ctx a b = elementwise ctx "mul" [ a; b ]
let relu ctx a = elementwise ctx "relu" [ a ]
let sigmoid ctx a = elementwise ctx "sigmoid" [ a ]
let tanh_ ctx a = elementwise ctx "tanh" [ a ]
let scale ctx s a = op ctx "tensor.scale" [ s; a ] [ a.vty ]

let matmul ctx a b =
  match (a.vty, b.vty) with
  | ( Types.Tensor { elt; shape = [ m; _k ] },
      Types.Tensor { shape = [ _k'; n ]; _ } ) ->
      op ctx "tensor.matmul" [ a; b ] [ Types.Tensor { elt; shape = [ m; n ] } ]
  | _ -> invalid_arg "tensor.matmul: rank-2 tensors required"

let transpose ctx a =
  match a.vty with
  | Types.Tensor { elt; shape = [ m; n ] } ->
      op ctx "tensor.transpose" [ a ] [ Types.Tensor { elt; shape = [ n; m ] } ]
  | _ -> invalid_arg "tensor.transpose: rank-2 tensor required"

let reshape ctx a shape =
  op ctx "tensor.reshape" [ a ] [ Types.tensor (elt_of a) shape ]

(* Reduce along all axes to a scalar. *)
let reduce ctx kind a =
  op ctx "tensor.reduce" [ a ]
    [ Types.Scalar (elt_of a) ]
    ~attrs:[ ("kind", Attr.str kind) ]

(* Generic contraction described by an einsum-like spec, e.g. "ij,jk->ik". *)
let contract ctx spec operands out_ty =
  op ctx "tensor.contract" operands [ out_ty ] ~attrs:[ ("spec", Attr.str spec) ]

let ew_kinds =
  [ "add"; "sub"; "mul"; "div"; "max"; "min"; "relu"; "sigmoid"; "tanh";
    "exp"; "neg"; "sqrt" ]

let unary_kinds = [ "relu"; "sigmoid"; "tanh"; "exp"; "neg"; "sqrt" ]

let verify_elementwise (o : Ir.op) =
  match Ir.attr_str "kind" o with
  | None -> Dialect.err "tensor.elementwise: missing kind"
  | Some k when not (List.mem k ew_kinds) ->
      Dialect.err "tensor.elementwise: unknown kind %S" k
  | Some k ->
      let arity = if List.mem k unary_kinds then 1 else 2 in
      Dialect.all
        [ Dialect.expect_operands arity; Dialect.expect_results 1;
          Dialect.same_type_operands ]
        o

let verify_matmul (o : Ir.op) =
  match o.operands with
  | [ a; b ] -> (
      match (a.vty, b.vty) with
      | Types.Tensor { shape = [ _; k ]; _ }, Types.Tensor { shape = [ k'; _ ]; _ }
        when Types.dim_compatible k k' ->
          Dialect.expect_results 1 o
      | _ -> Dialect.err "tensor.matmul: inner dimensions must agree")
  | _ -> Dialect.err "tensor.matmul: expected 2 operands"

let register () =
  Dialect.register "tensor.fill" ~traits:[ Dialect.Pure ]
    ~doc:"Broadcast a scalar into a tensor."
    (Dialect.all [ Dialect.expect_operands 1; Dialect.expect_results 1 ]);
  Dialect.register "tensor.elementwise" ~traits:[ Dialect.Pure; Dialect.Commutative ]
    ~doc:"Pointwise tensor operation." verify_elementwise;
  Dialect.register "tensor.scale" ~traits:[ Dialect.Pure ]
    ~doc:"Scalar-tensor multiply."
    (Dialect.all [ Dialect.expect_operands 2; Dialect.expect_results 1 ]);
  Dialect.register "tensor.matmul" ~traits:[ Dialect.Pure ]
    ~doc:"Rank-2 matrix product." verify_matmul;
  Dialect.register "tensor.transpose" ~traits:[ Dialect.Pure ]
    ~doc:"Rank-2 transpose."
    (Dialect.all [ Dialect.expect_operands 1; Dialect.expect_results 1 ]);
  Dialect.register "tensor.reshape" ~traits:[ Dialect.Pure ] ~doc:"Reshape."
    (Dialect.all [ Dialect.expect_operands 1; Dialect.expect_results 1 ]);
  Dialect.register "tensor.reduce" ~traits:[ Dialect.Pure ]
    ~doc:"Full reduction to a scalar."
    (Dialect.all
       [ Dialect.expect_operands 1; Dialect.expect_results 1;
         Dialect.expect_attr "kind" ]);
  Dialect.register "tensor.contract" ~traits:[ Dialect.Pure ]
    ~doc:"Einsum-style contraction."
    (Dialect.all [ Dialect.expect_results 1; Dialect.expect_attr "spec" ])
