(* Attributes: compile-time metadata attached to operations.

   Attributes carry the "data-driven" information EVEREST relies on: data
   characteristics (access patterns, sizes, localities), security
   requirements, and variant/trade-off annotations. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Type of Types.t
  | Sym of string  (* reference to a symbol, e.g. a function *)
  | List of t list
  | Dict of (string * t) list

let unit = Unit
let bool b = Bool b
let int i = Int i
let float f = Float f
let str s = Str s
let typ t = Type t
let sym s = Sym s
let list l = List l
let dict d = Dict d

let ints l = List (List.map (fun i -> Int i) l)
let strs l = List (List.map (fun s -> Str s) l)

let as_bool = function Bool b -> Some b | _ -> None
let as_int = function Int i -> Some i | _ -> None
let as_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_sym = function Sym s -> Some s | _ -> None
let as_type = function Type t -> Some t | _ -> None
let as_list = function List l -> Some l | _ -> None
let as_dict = function Dict d -> Some d | _ -> None

let as_ints a =
  match a with
  | List l ->
      List.fold_right
        (fun x acc ->
          match (x, acc) with Int i, Some r -> Some (i :: r) | _ -> None)
        l (Some [])
  | _ -> None

let find key attrs = List.assoc_opt key attrs
let find_int key attrs = Option.bind (find key attrs) as_int
let find_str key attrs = Option.bind (find key attrs) as_str
let find_bool key attrs = Option.bind (find key attrs) as_bool
let find_float key attrs = Option.bind (find key attrs) as_float
let find_sym key attrs = Option.bind (find key attrs) as_sym
let find_ints key attrs = Option.bind (find key attrs) as_ints

let set key v attrs = (key, v) :: List.remove_assoc key attrs

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec pp ppf = function
  | Unit -> Fmt.string ppf "unit"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%h" f
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | Type t -> Types.pp ppf t
  | Sym s -> Fmt.pf ppf "@%s" s
  | List l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) l
  | Dict d ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any " = ") string pp))
        d

let to_string a = Fmt.str "%a" pp a

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y | Sym x, Sym y -> String.equal x y
  | Type x, Type y -> Types.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Dict x, Dict y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           x y
  | _ -> false
