(** Greedy pattern-rewrite driver.

    A pattern inspects one op (with access to the defining ops of its
    operands) and either declines or produces replacement ops plus a value
    substitution.  The driver applies patterns to a fixpoint, innermost
    regions first, mirroring MLIR's canonicalization driver. *)

(** Result of a successful match: ops spliced in place of the matched op,
    and a substitution from its old results to new values. *)
type produced = { new_ops : Ir.op list; subst : (Ir.value * Ir.value) list }

type pattern = {
  pname : string;
  benefit : int;  (** Higher-benefit patterns are tried first. *)
  matcher : Ir.ctx -> defs:(int -> Ir.op option) -> Ir.op -> produced option;
      (** [defs vid] is the op defining value [vid], when visible. *)
}

val pattern :
  ?benefit:int ->
  string ->
  (Ir.ctx -> defs:(int -> Ir.op option) -> Ir.op -> produced option) ->
  pattern

(** Replace the op by nothing (its results must be dead or substituted). *)
val erase : produced

val replace_with : Ir.op list -> (Ir.value * Ir.value) list -> produced

(** [fold_to op v new_ops] replaces single-result [op] by value [v],
    splicing [new_ops]; [None] if [op] has several results. *)
val fold_to : Ir.op -> Ir.value -> Ir.op list -> produced option

(** Rewrite statistics: how often each pattern applied. *)
type stats = { mutable applications : (string * int) list }

(** Apply [patterns] over an op list until fixpoint (bounded by
    [max_iterations]). *)
val apply_patterns :
  ?max_iterations:int ->
  Ir.ctx ->
  pattern list ->
  Ir.op list ->
  Ir.op list * stats

val apply_to_func :
  ?max_iterations:int -> Ir.ctx -> pattern list -> Ir.func -> Ir.func * stats

val apply_to_module :
  ?max_iterations:int -> Ir.ctx -> pattern list -> Ir.modul -> Ir.modul
