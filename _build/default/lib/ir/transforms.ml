(* Standard transformations: constant folding, algebraic canonicalization,
   common-subexpression elimination and dead-code elimination. *)

open Ir

(* ---- constant folding ---------------------------------------------------- *)

let int_fold name a b =
  match name with
  | "arith.addi" -> Some (a + b)
  | "arith.subi" -> Some (a - b)
  | "arith.muli" -> Some (a * b)
  | "arith.divi" -> if b = 0 then None else Some (a / b)
  | "arith.remi" -> if b = 0 then None else Some (a mod b)
  | "arith.andi" -> Some (a land b)
  | "arith.ori" -> Some (a lor b)
  | "arith.xori" -> Some (a lxor b)
  | "arith.shli" -> Some (a lsl b)
  | "arith.shri" -> Some (a lsr b)
  | _ -> None

let float_fold name a b =
  match name with
  | "arith.addf" -> Some (a +. b)
  | "arith.subf" -> Some (a -. b)
  | "arith.mulf" -> Some (a *. b)
  | "arith.divf" -> Some (a /. b)
  | "arith.maxf" -> Some (Float.max a b)
  | "arith.minf" -> Some (Float.min a b)
  | _ -> None

let cmp_fold pred c =
  match pred with
  | Dialect_arith.Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let const_of ~defs (v : value) =
  match defs v.vid with
  | Some o -> Dialect_arith.const_value o
  | None -> None

let fold_constants =
  Rewrite.pattern "fold-constants" ~benefit:2 (fun ctx ~defs o ->
      match o.operands with
      | [ a; b ] -> (
          match (const_of ~defs a, const_of ~defs b) with
          | Some (Attr.Int x), Some (Attr.Int y) -> (
              match int_fold o.name x y with
              | Some r ->
                  let c = Dialect_arith.const_i ~ty:a.vty ctx r in
                  Rewrite.fold_to o (Ir.result c) [ c ]
              | None -> (
                  match o.name with
                  | "arith.cmpi" ->
                      Option.bind (Ir.attr_str "predicate" o) (fun p ->
                          Option.bind (Dialect_arith.cmp_pred_of_name p)
                            (fun pred ->
                              let r = cmp_fold pred (compare x y) in
                              let c =
                                Dialect_arith.const_i ~ty:Types.i1 ctx
                                  (if r then 1 else 0)
                              in
                              Rewrite.fold_to o (Ir.result c) [ c ]))
                  | _ -> None))
          | Some (Attr.Float x), Some (Attr.Float y) -> (
              match float_fold o.name x y with
              | Some r ->
                  let c = Dialect_arith.const_f ~ty:a.vty ctx r in
                  Rewrite.fold_to o (Ir.result c) [ c ]
              | None -> (
                  match o.name with
                  | "arith.cmpf" ->
                      Option.bind (Ir.attr_str "predicate" o) (fun p ->
                          Option.bind (Dialect_arith.cmp_pred_of_name p)
                            (fun pred ->
                              let r = cmp_fold pred (compare x y) in
                              let c =
                                Dialect_arith.const_i ~ty:Types.i1 ctx
                                  (if r then 1 else 0)
                              in
                              Rewrite.fold_to o (Ir.result c) [ c ]))
                  | _ -> None))
          | _ -> None)
      | _ -> None)

(* ---- algebraic identities ------------------------------------------------ *)

let is_const_val ~defs v k =
  match const_of ~defs v with
  | Some (Attr.Int i) -> float_of_int i = k
  | Some (Attr.Float f) -> f = k
  | _ -> false

let algebraic_identities =
  Rewrite.pattern "algebraic-identities" (fun _ctx ~defs o ->
      match (o.name, o.operands) with
      | ("arith.addi" | "arith.addf" | "arith.subi" | "arith.subf"), [ a; b ]
        when is_const_val ~defs b 0.0 ->
          Rewrite.fold_to o a []
      | ("arith.addi" | "arith.addf"), [ a; b ] when is_const_val ~defs a 0.0 ->
          Rewrite.fold_to o b []
      | ("arith.muli" | "arith.mulf" | "arith.divi" | "arith.divf"), [ a; b ]
        when is_const_val ~defs b 1.0 ->
          Rewrite.fold_to o a []
      | ("arith.muli" | "arith.mulf"), [ a; b ] when is_const_val ~defs a 1.0 ->
          Rewrite.fold_to o b []
      | "arith.select", [ c; a; b ] -> (
          match const_of ~defs c with
          | Some (Attr.Int 1) -> Rewrite.fold_to o a []
          | Some (Attr.Int 0) -> Rewrite.fold_to o b []
          | _ -> None)
      | _ -> None)

(* Double transpose cancels; encrypt-then-decrypt with the same key folds. *)
let involutions =
  Rewrite.pattern "involutions" (fun _ctx ~defs o ->
      match (o.name, o.operands) with
      | "tensor.transpose", [ a ] -> (
          match defs a.vid with
          | Some inner
            when String.equal inner.name "tensor.transpose" ->
              Rewrite.fold_to o (List.hd inner.operands) []
          | _ -> None)
      | "sec.decrypt", [ c; k ] -> (
          match defs c.vid with
          | Some inner
            when String.equal inner.name "sec.encrypt"
                 && value_equal (List.nth inner.operands 1) k
                 && Ir.attr "algo" inner = Ir.attr "algo" o ->
              Rewrite.fold_to o (List.hd inner.operands) []
          | _ -> None)
      | _ -> None)

let canonicalize_patterns = [ fold_constants; algebraic_identities; involutions ]

let canonicalize =
  Pass.make "canonicalize" (fun ctx m ->
      Rewrite.apply_to_module ctx canonicalize_patterns m)

(* ---- CSE ------------------------------------------------------------------ *)

(* Key identifying a pure op up to its results. *)
let op_key (o : op) =
  (o.name, List.map (fun v -> v.vid) o.operands, o.attrs)

let cse_ops ops =
  let rec go seen subst acc = function
    | [] -> List.rev acc
    | (o : op) :: rest ->
        let o =
          {
            o with
            operands =
              List.map
                (fun (v : value) ->
                  match List.assoc_opt v.vid subst with
                  | Some v' -> v'
                  | None -> v)
                o.operands;
            regions =
              List.map
                (List.map (fun b ->
                     { b with body = Ir.substitute subst b.body }))
                o.regions;
          }
        in
        if Dialect.is_pure o && o.regions = [] then begin
          let key = op_key o in
          match List.assoc_opt key seen with
          | Some (prior : op) ->
              let subst =
                List.fold_left2
                  (fun s (r : value) (pr : value) -> (r.vid, pr) :: s)
                  subst o.results prior.results
              in
              go seen subst acc rest
          | None -> go ((key, o) :: seen) subst (o :: acc) rest
        end
        else
          let o =
            { o with
              regions =
                List.map
                  (List.map (fun (b : block) ->
                       { b with body = go [] [] [] b.body }))
                  o.regions }
          in
          go seen subst (o :: acc) rest
  in
  go [] [] [] ops

let cse =
  Pass.make "cse" (fun _ctx m ->
      { m with funcs = List.map (fun f -> { f with fbody = cse_ops f.fbody }) m.funcs })

(* ---- DCE ------------------------------------------------------------------ *)

module IntSet = Set.Make (Int)

let rec used_in ops =
  List.fold_left
    (fun s (o : op) ->
      let s =
        List.fold_left (fun s (v : value) -> IntSet.add v.vid s) s o.operands
      in
      List.fold_left
        (fun s r -> List.fold_left (fun s (b : block) -> IntSet.union s (used_in b.body)) s r)
        s o.regions)
    IntSet.empty ops

let rec dce_ops live ops =
  (* A pure region-free op whose results are all dead is removed.  Iterate
     because removal can kill producers. *)
  let one_round ops =
    let used = IntSet.union live (used_in ops) in
    List.filter_map
      (fun (o : op) ->
        let o =
          if o.regions = [] then o
          else
            { o with
              regions =
                List.map
                  (List.map (fun (b : block) ->
                       { b with body = dce_ops used b.body }))
                  o.regions }
        in
        if
          Dialect.is_pure o && o.regions = []
          && o.results <> []
          && List.for_all (fun (r : value) -> not (IntSet.mem r.vid used)) o.results
        then None
        else Some o)
      ops
  in
  let rec fix ops =
    let ops' = one_round ops in
    if List.length ops' = List.length ops then ops' else fix ops'
  in
  fix ops

let dce =
  Pass.make "dce" (fun _ctx m ->
      { m with
        funcs = List.map (fun f -> { f with fbody = dce_ops IntSet.empty f.fbody }) m.funcs })

let standard_pipeline = [ canonicalize; cse; dce ]
