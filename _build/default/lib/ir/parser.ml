(* Recursive-descent parser for the textual IR emitted by Printer.

   The concrete syntax is the MLIR generic-op form; Parser and Printer are
   exact inverses, which the test suite checks by round-tripping. *)

exception Parse_error of string

type state = { src : string; mutable pos : int; mutable env : (int * Ir.value) list }

let error st fmt =
  let around =
    let a = max 0 (st.pos - 20) and b = min (String.length st.src) (st.pos + 20) in
    String.sub st.src a (b - a)
  in
  Fmt.kstr (fun s -> raise (Parse_error (s ^ " near: " ^ around))) fmt

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  if not (eof st) then
    match peek st with
    | ' ' | '\t' | '\n' | '\r' -> advance st; skip_ws st
    | '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' ->
        while (not (eof st)) && peek st <> '\n' do advance st done;
        skip_ws st
    | _ -> ()

let expect st c =
  skip_ws st;
  if peek st = c then advance st else error st "expected %C" c

let try_char st c =
  skip_ws st;
  if peek st = c then (advance st; true) else false

let expect_str st s =
  skip_ws st;
  let n = String.length s in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = s then
    st.pos <- st.pos + n
  else error st "expected %S" s

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let ident st =
  skip_ws st;
  let start = st.pos in
  while (not (eof st)) && is_ident_char (peek st) do advance st done;
  if st.pos = start then error st "expected identifier";
  String.sub st.src start (st.pos - start)

let int_lit st =
  skip_ws st;
  let start = st.pos in
  if peek st = '-' then advance st;
  while (not (eof st)) && peek st >= '0' && peek st <= '9' do advance st done;
  if st.pos = start then error st "expected integer";
  int_of_string (String.sub st.src start (st.pos - start))

let string_lit st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated string"
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          advance st;
          (match peek st with
          | 'n' -> Buffer.add_char b '\n'
          | c -> Buffer.add_char b c);
          advance st; go ()
      | c -> Buffer.add_char b c; advance st; go ()
  in
  go ();
  Buffer.contents b

(* Numbers: integers or floats (including the %h hex-float form). *)
let number st =
  skip_ws st;
  let start = st.pos in
  let prev () = if st.pos > start then st.src.[st.pos - 1] else ' ' in
  if peek st = '-' then advance st;
  let cont () =
    match peek st with
    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' | 'x' | 'X' | '.' -> true
    | 'p' | 'P' -> true
    | '+' | '-' -> ( match prev () with 'p' | 'P' | 'e' | 'E' -> true | _ -> false)
    | _ -> false
  in
  while (not (eof st)) && cont () do advance st done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Attr.Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Attr.Float f
      | None -> error st "bad number %S" s)

let scalar_of_name = function
  | "i1" -> Some Types.I1 | "i8" -> Some Types.I8 | "i16" -> Some Types.I16
  | "i32" -> Some Types.I32 | "i64" -> Some Types.I64
  | "f32" -> Some Types.F32 | "f64" -> Some Types.F64
  | "index" -> Some Types.Index | _ -> None

(* Shape strings look like "4x?x16xf64": dims separated by 'x', ending in the
   element type name. *)
let parse_shape_body st =
  let dims = ref [] in
  let rec go () =
    skip_ws st;
    if peek st = '?' then begin
      advance st;
      dims := Types.Dyn :: !dims;
      expect st 'x'; go ()
    end
    else if peek st >= '0' && peek st <= '9' then begin
      let d = int_lit st in
      dims := Types.Static d :: !dims;
      expect st 'x'; go ()
    end
    else
      let name = ident st in
      match scalar_of_name name with
      | Some s -> (List.rev !dims, s)
      | None -> error st "bad element type %S" name
  in
  go ()

let rec parse_type st : Types.t =
  skip_ws st;
  if peek st = '(' then begin
    advance st;
    let args = parse_type_list st in
    expect st ')';
    expect_str st "->";
    expect st '(';
    let rets = parse_type_list st in
    expect st ')';
    Types.func args rets
  end
  else if peek st = '!' then begin
    advance st;
    Types.opaque (ident st)
  end
  else
    let name = ident st in
    match name with
    | "token" -> Types.Token
    | "tensor" ->
        expect st '<';
        let shape, elt = parse_shape_body st in
        expect st '>';
        Types.Tensor { elt; shape }
    | "memref" ->
        expect st '<';
        let shape, elt = parse_shape_body st in
        expect st ',';
        let space = parse_mem_space st in
        expect st '>';
        Types.Memref { elt; shape; space }
    | "stream" ->
        expect st '<';
        let t = parse_type st in
        expect st '>';
        Types.Stream t
    | n -> (
        match scalar_of_name n with
        | Some s -> Types.Scalar s
        | None -> error st "unknown type %S" n)

and parse_mem_space st =
  let name = ident st in
  match name with
  | "host" -> Types.Host
  | "bram" -> Types.Bram
  | "hbm" -> Types.Hbm
  | "device" ->
      expect st '<';
      let d = int_lit st in
      expect st '>'; Types.Device d
  | "remote" ->
      expect st '<';
      let n = ident st in
      expect st '>'; Types.Remote n
  | s -> error st "unknown memory space %S" s

and parse_type_list st =
  skip_ws st;
  if peek st = ')' then []
  else
    let rec go acc =
      let t = parse_type st in
      if try_char st ',' then go (t :: acc) else List.rev (t :: acc)
    in
    go []

let rec parse_attr st : Attr.t =
  skip_ws st;
  match peek st with
  | '"' -> Attr.Str (string_lit st)
  | '@' -> advance st; Attr.Sym (ident st)
  | '[' ->
      advance st;
      let rec go acc =
        skip_ws st;
        if peek st = ']' then (advance st; List.rev acc)
        else
          let a = parse_attr st in
          if try_char st ',' then go (a :: acc)
          else (expect st ']'; List.rev (a :: acc))
      in
      Attr.List (go [])
  | '{' -> Attr.Dict (parse_attr_dict st)
  | c when c = '-' || (c >= '0' && c <= '9') -> number st
  | _ -> (
      (* bare word: bool, unit, or a type *)
      let save = st.pos in
      let name = ident st in
      match name with
      | "true" -> Attr.Bool true
      | "false" -> Attr.Bool false
      | "unit" -> Attr.Unit
      | _ ->
          st.pos <- save;
          Attr.Type (parse_type st))

and parse_attr_dict st =
  expect st '{';
  let rec go acc =
    skip_ws st;
    if peek st = '}' then (advance st; List.rev acc)
    else
      let key = ident st in
      expect st '=';
      let v = parse_attr st in
      if try_char st ',' then go ((key, v) :: acc)
      else (expect st '}'; List.rev ((key, v) :: acc))
  in
  go []

let parse_value_ref st =
  expect st '%';
  let id = int_lit st in
  id

let parse_value_refs st stop =
  skip_ws st;
  if peek st = stop then []
  else
    let rec go acc =
      let v = parse_value_ref st in
      if try_char st ',' then go (v :: acc) else List.rev (v :: acc)
    in
    go []

let lookup st id =
  match List.assoc_opt id st.env with
  | Some v -> v
  | None -> error st "use of undefined value %%%d" id

let define st id ty =
  let v = { Ir.vid = id; vty = ty } in
  st.env <- (id, v) :: st.env;
  v

(* typed value list "%0: f64, %1: i32" *)
let parse_typed_args st stop =
  skip_ws st;
  if peek st = stop then []
  else
    let rec go acc =
      let id = parse_value_ref st in
      expect st ':';
      let ty = parse_type st in
      let v = define st id ty in
      if try_char st ',' then go (v :: acc) else List.rev (v :: acc)
    in
    go []

let rec parse_op st : Ir.op =
  skip_ws st;
  (* results (optional) then '"' *)
  let result_ids =
    if peek st = '%' then begin
      let ids = parse_value_refs st '=' in
      expect st '=';
      ids
    end
    else []
  in
  skip_ws st;
  let name = string_lit st in
  expect st '(';
  let operand_ids = parse_value_refs st ')' in
  expect st ')';
  skip_ws st;
  let attrs = if peek st = '{' then parse_attr_dict st else [] in
  expect st ':';
  expect st '(';
  let _arg_tys = parse_type_list st in
  expect st ')';
  expect_str st "->";
  expect st '(';
  let ret_tys = parse_type_list st in
  expect st ')';
  if List.length ret_tys <> List.length result_ids then
    error st "%s: result arity mismatch" name;
  let operands = List.map (lookup st) operand_ids in
  let results = List.map2 (fun id ty -> define st id ty) result_ids ret_tys in
  let regions = parse_regions st in
  { Ir.name; operands; results; attrs; regions; loc = Loc.unknown }

and parse_regions st =
  skip_ws st;
  if peek st = '{' then begin
    let r = parse_region st in
    r :: parse_regions st
  end
  else []

and parse_region st : Ir.region =
  expect st '{';
  let parse_block () =
    skip_ws st;
    let args =
      if peek st = '^' then begin
        advance st;
        expect st '(';
        let args = parse_typed_args st ')' in
        expect st ')';
        expect st ':';
        args
      end
      else []
    in
    let rec ops acc =
      skip_ws st;
      if peek st = '}' || peek st = '^' then List.rev acc
      else ops (parse_op st :: acc)
    in
    { Ir.bargs = args; body = ops [] }
  in
  let rec blocks acc =
    skip_ws st;
    if peek st = '}' then (advance st; List.rev acc)
    else blocks (parse_block () :: acc)
  in
  blocks []

(* Attr dict vs region/body brace: a non-empty attr dict starts with
   "ident ="; anything else (op, '%', '}', "func") is a body.  The printer
   never emits empty attr dicts, so '{' '}' is always an empty body. *)
let looks_like_attr_dict st =
  skip_ws st;
  if peek st <> '{' then false
  else begin
    let save = st.pos in
    advance st;
    skip_ws st;
    let is_dict =
      is_ident_char (peek st)
      &&
      try
        ignore (ident st);
        skip_ws st;
        peek st = '='
      with Parse_error _ -> false
    in
    st.pos <- save;
    is_dict
  end

let parse_func st : Ir.func =
  expect_str st "func";
  expect st '@';
  let name = ident st in
  expect st '(';
  let args = parse_typed_args st ')' in
  expect st ')';
  expect_str st "->";
  expect st '(';
  let rets = parse_type_list st in
  expect st ')';
  let attrs = if looks_like_attr_dict st then parse_attr_dict st else [] in
  expect st '{';
  let rec ops acc =
    skip_ws st;
    if peek st = '}' then (advance st; List.rev acc)
    else ops (parse_op st :: acc)
  in
  let body = ops [] in
  { Ir.fname = name; fargs = args; fret_types = rets; fbody = body; fattrs = attrs }

let parse_module_st st : Ir.modul =
  expect_str st "module";
  expect st '@';
  let name = ident st in
  let attrs = if looks_like_attr_dict st then parse_attr_dict st else [] in
  expect st '{';
  let rec funcs acc =
    skip_ws st;
    if peek st = '}' then (advance st; List.rev acc)
    else begin
      st.env <- [];
      funcs (parse_func st :: acc)
    end
  in
  let fs = funcs [] in
  { Ir.mname = name; funcs = fs; mattrs = attrs }

let parse_module ctx src =
  let st = { src; pos = 0; env = [] } in
  let m = parse_module_st st in
  List.iter (fun f -> Ir.bump_ctx ctx (f.Ir.fbody)) m.funcs;
  List.iter
    (fun (f : Ir.func) ->
      let dummy =
        Ir.{ name = "args"; operands = f.fargs; results = []; attrs = [];
             regions = []; loc = Loc.unknown }
      in
      Ir.bump_ctx ctx [ dummy ])
    m.funcs;
  m

let parse_func_str ctx src =
  let st = { src; pos = 0; env = [] } in
  let f = parse_func st in
  Ir.bump_ctx ctx f.Ir.fbody;
  f
