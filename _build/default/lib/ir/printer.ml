(* Textual form of the IR (MLIR generic-op style).

       %3 = "arith.addf"(%1, %2) {k = v} : (f64, f64) -> (f64)

   Regions print as brace-enclosed blocks; blocks open with a caret header
   listing block arguments.  The printer is the inverse of Parser. *)

open Ir

let pp_value ppf (v : value) = Fmt.pf ppf "%%%d" v.vid

let pp_value_typed ppf (v : value) =
  Fmt.pf ppf "%%%d: %a" v.vid Types.pp v.vty

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Fmt.pf ppf " {%a}"
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any " = ") string Attr.pp))
        attrs

let rec pp_op indent ppf (o : op) =
  let pad = String.make indent ' ' in
  Fmt.string ppf pad;
  (match o.results with
  | [] -> ()
  | rs -> Fmt.pf ppf "%a = " Fmt.(list ~sep:(any ", ") pp_value) rs);
  Fmt.pf ppf "\"%s\"(%a)%a : (%a) -> (%a)" o.name
    Fmt.(list ~sep:(any ", ") pp_value)
    o.operands pp_attrs o.attrs
    Fmt.(list ~sep:(any ", ") Types.pp)
    (List.map (fun v -> v.vty) o.operands)
    Fmt.(list ~sep:(any ", ") Types.pp)
    (List.map (fun v -> v.vty) o.results);
  List.iter (fun r -> pp_region indent ppf r) o.regions

and pp_region indent ppf (r : region) =
  Fmt.pf ppf " {@.";
  List.iteri
    (fun i b ->
      if i > 0 || b.bargs <> [] then
        Fmt.pf ppf "%s^(%a):@." (String.make indent ' ')
          Fmt.(list ~sep:(any ", ") pp_value_typed)
          b.bargs;
      List.iter (fun o -> Fmt.pf ppf "%a@." (pp_op (indent + 2)) o) b.body)
    r;
  Fmt.pf ppf "%s}" (String.make indent ' ')

let pp_func ppf (f : func) =
  Fmt.pf ppf "func @%s(%a) -> (%a)%a {@."
    f.fname
    Fmt.(list ~sep:(any ", ") pp_value_typed)
    f.fargs
    Fmt.(list ~sep:(any ", ") Types.pp)
    f.fret_types pp_attrs f.fattrs;
  List.iter (fun o -> Fmt.pf ppf "%a@." (pp_op 2) o) f.fbody;
  Fmt.pf ppf "}"

let pp_module ppf (m : modul) =
  Fmt.pf ppf "module @%s%a {@." m.mname pp_attrs m.mattrs;
  List.iter (fun f -> Fmt.pf ppf "%a@." pp_func f) m.funcs;
  Fmt.pf ppf "}@."

let op_to_string o = Fmt.str "%a" (pp_op 0) o
let func_to_string f = Fmt.str "%a" pp_func f
let module_to_string m = Fmt.str "%a" pp_module m
