(** Dialect registry.

    Each operation name is registered with traits and a verifier; the
    module-level verifier ({!Verify}) walks the IR and applies them. *)

type trait =
  | Pure  (** No side effects: eligible for CSE/DCE. *)
  | Commutative
  | Terminator  (** Ends a block (scf.yield, func.return, ...). *)
  | IsolatedRegion  (** Regions do not capture outer SSA values. *)

type op_def = {
  opname : string;
  traits : trait list;
  doc : string;
  verify : Ir.op -> (unit, string) result;
}

(** Register an operation definition (replaces an existing one). *)
val register :
  ?traits:trait list ->
  ?doc:string ->
  string ->
  (Ir.op -> (unit, string) result) ->
  unit

val lookup : string -> op_def option
val is_registered : string -> bool
val has_trait : string -> trait -> bool
val is_pure : Ir.op -> bool
val is_terminator : Ir.op -> bool

(** All registered definitions, sorted by name. *)
val registered_ops : unit -> op_def list

(** {2 Verification helpers for dialect definitions} *)

val ok : (unit, string) result
val err : ('a, Format.formatter, unit, (unit, string) result) format4 -> 'a
val expect_operands : int -> Ir.op -> (unit, string) result
val expect_results : int -> Ir.op -> (unit, string) result
val expect_regions : int -> Ir.op -> (unit, string) result
val expect_attr : string -> Ir.op -> (unit, string) result

(** Sequence two checks, stopping at the first error. *)
val ( >>> ) :
  (unit, string) result -> (unit -> (unit, string) result) -> (unit, string) result

(** Apply every check in order, stopping at the first error. *)
val all : (Ir.op -> (unit, string) result) list -> Ir.op -> (unit, string) result

val same_type_operands : Ir.op -> (unit, string) result
val operand_type : int -> Ir.op -> Types.t
val result_type : int -> Ir.op -> Types.t
val no_verify : Ir.op -> (unit, string) result
