(** Attributes: compile-time metadata attached to operations.

    Attributes carry the "data-driven" information EVEREST relies on: data
    characteristics (access patterns, sizes, localities), security
    requirements, and variant/trade-off annotations. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Type of Types.t
  | Sym of string  (** Reference to a symbol (function name), printed [\@f]. *)
  | List of t list
  | Dict of (string * t) list

(** {2 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val str : string -> t
val typ : Types.t -> t
val sym : string -> t
val list : t list -> t
val dict : (string * t) list -> t

(** [ints l] is a list attribute of integers. *)
val ints : int list -> t

(** [strs l] is a list attribute of strings. *)
val strs : string list -> t

(** {2 Projections} — [None] when the attribute has a different kind.
    [as_float] also accepts integer attributes. *)

val as_bool : t -> bool option
val as_int : t -> int option
val as_float : t -> float option
val as_str : t -> string option
val as_sym : t -> string option
val as_type : t -> Types.t option
val as_list : t -> t list option
val as_dict : t -> (string * t) list option
val as_ints : t -> int list option

(** {2 Attribute lists} — the [(key, value)] dictionaries ops carry. *)

val find : string -> (string * t) list -> t option
val find_int : string -> (string * t) list -> int option
val find_str : string -> (string * t) list -> string option
val find_bool : string -> (string * t) list -> bool option
val find_float : string -> (string * t) list -> float option
val find_sym : string -> (string * t) list -> string option
val find_ints : string -> (string * t) list -> int list option

(** [set key v attrs] replaces or adds the binding for [key]. *)
val set : string -> t -> (string * t) list -> (string * t) list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
