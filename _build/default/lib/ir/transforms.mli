(** Standard transformations: constant folding, algebraic canonicalization,
    common-subexpression elimination and dead-code elimination. *)

(** Fold binary arith ops and comparisons over constant operands. *)
val fold_constants : Rewrite.pattern

(** x+0, x*1, select on constant condition, and friends. *)
val algebraic_identities : Rewrite.pattern

(** transpose(transpose x) -> x; decrypt(encrypt(x, k), k) -> x. *)
val involutions : Rewrite.pattern

val canonicalize_patterns : Rewrite.pattern list

(** The canonicalization pass (the patterns above, to fixpoint). *)
val canonicalize : Pass.t

(** Value-number pure region-free ops within each block. *)
val cse : Pass.t

(** Remove pure ops whose results are unused (iterated). *)
val dce : Pass.t

(** [canonicalize; cse; dce] — the default middle-end pipeline. *)
val standard_pipeline : Pass.t list
