(** The EVEREST IR type system.

    A small MLIR-like type lattice: scalars, tensors with optionally dynamic
    shapes, memrefs carrying a memory space (host DRAM, FPGA BRAM/HBM,
    remote nodes), stream/token types for the dataflow dialect, and function
    types. *)

(** Scalar element types. *)
type scalar = I1 | I8 | I16 | I32 | I64 | F32 | F64 | Index

(** A dimension is either statically known or dynamic. *)
type dim = Static of int | Dyn

(** Where a buffer lives in the EVEREST memory hierarchy. *)
type mem_space = Host | Device of int | Bram | Hbm | Remote of string

type t =
  | Scalar of scalar
  | Tensor of { elt : scalar; shape : dim list }
      (** Value-semantics tensor (the DSL abstraction). *)
  | Memref of { elt : scalar; shape : dim list; space : mem_space }
      (** Buffer with identity, in a specific memory space. *)
  | Stream of t  (** FIFO channel of elements, used by hw kernels. *)
  | Token  (** Synchronization-only value. *)
  | Func of { args : t list; rets : t list }
  | Opaque of string  (** Dialect-specific opaque type, printed [!name]. *)

(** {2 Constructors} *)

val i1 : t
val i8 : t
val i16 : t
val i32 : t
val i64 : t
val f32 : t
val f64 : t
val index : t

(** [tensor elt dims] is a fully static tensor type. *)
val tensor : scalar -> int list -> t

(** [tensor_dyn elt dims] allows dynamic dimensions. *)
val tensor_dyn : scalar -> dim list -> t

(** [memref ?space elt dims] is a static buffer type (default space {!Host}). *)
val memref : ?space:mem_space -> scalar -> int list -> t

val memref_dyn : ?space:mem_space -> scalar -> dim list -> t
val stream : t -> t
val func : t list -> t list -> t
val opaque : string -> t

(** {2 Predicates and accessors} *)

val is_scalar : t -> bool
val is_tensor : t -> bool
val is_memref : t -> bool
val is_float_scalar : t -> bool
val is_int_scalar : t -> bool

(** Bit width of a scalar element. *)
val scalar_bits : scalar -> int

(** Element type of a tensor/memref, as a scalar type. *)
val elt_type : t -> t option

(** Shape of a tensor/memref. *)
val shape : t -> dim list option

(** Number of elements when the shape is fully static. *)
val num_elements : t -> int option

(** Total byte size when statically known. *)
val byte_size : t -> int option

val rank : t -> int option

(** Static shape of a shaped type.
    @raise Invalid_argument on dynamic dims or unshaped types. *)
val static_shape_exn : t -> int list

(** {2 Printing} *)

val scalar_name : scalar -> string
val mem_space_name : mem_space -> string
val pp_dim : Format.formatter -> dim -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Equality}

    [equal] is structural; [compatible] additionally treats dynamic
    dimensions as wildcards, which is what operation verifiers use. *)

val equal : t -> t -> bool
val dim_compatible : dim -> dim -> bool
val shape_compatible : dim list -> dim list -> bool
val compatible : t -> t -> bool
