(** [hw] dialect: hardware variants.

    [hw.kernel] wraps a region the HLS flow turns into an accelerator; its
    attributes record the estimates (area, latency, II) the DSE and runtime
    need.  [hw.offload] is the call-site form referring to an outlined
    kernel. *)

open Ir

val kernel :
  ?attrs:(string * Attr.t) list ->
  ctx ->
  string ->
  value list ->
  Types.t list ->
  op list ->
  op

val offload :
  ?attrs:(string * Attr.t) list ->
  ctx ->
  kernel:string ->
  value list ->
  Types.t list ->
  op

(** @raise Invalid_argument when the operand is not a stream. *)
val stream_read : ctx -> value -> op

val stream_write : ctx -> value -> value -> op

(** Partial reconfiguration request: load the bitstream into a role slot;
    yields a completion token. *)
val reconfig : ctx -> string -> op

val yield : ctx -> value list -> op
val register : unit -> unit
