(* `func` dialect: calls and returns between module-level functions. *)

open Ir

let call ctx callee args ret_types =
  op ctx "func.call" args ret_types ~attrs:[ ("callee", Attr.sym callee) ]

let return ctx vs = op ctx "func.return" vs []

let register () =
  Dialect.register "func.call" ~doc:"Direct call to a module function."
    (fun o ->
      match Ir.attr_sym "callee" o with
      | Some _ -> Dialect.ok
      | None -> Dialect.err "func.call: missing @callee");
  Dialect.register "func.return" ~traits:[ Dialect.Terminator ]
    ~doc:"Return from a function." (Dialect.expect_results 0)
