(** Core IR structure: SSA values, operations, blocks, regions, functions
    and modules.

    The representation is immutable: rewrites build new operation lists and
    substitute values by identity.  Value identities are allocated from a
    context ({!ctx}) so freshly built fragments never collide. *)

(** An SSA value: a unique id plus its type. *)
type value = { vid : int; vty : Types.t }

(** An operation: name ["dialect.op"], operands, fresh result values,
    attributes, nested regions and a source location. *)
type op = {
  name : string;
  operands : value list;
  results : value list;
  attrs : (string * Attr.t) list;
  regions : region list;
  loc : Loc.t;
}

and block = { bargs : value list; body : op list }
and region = block list

(** Allocation context for fresh value ids. *)
type ctx

val ctx : unit -> ctx
val fresh_value : ctx -> Types.t -> value
val fresh_values : ctx -> Types.t list -> value list

(** Raise the context's counter above every id occurring in [ops]; used
    after parsing, which assigns ids itself. *)
val bump_ctx : ctx -> op list -> unit

val value_equal : value -> value -> bool

(** [op ctx name operands result_types] builds an operation with fresh
    result values. *)
val op :
  ?attrs:(string * Attr.t) list ->
  ?regions:region list ->
  ?loc:Loc.t ->
  ctx ->
  string ->
  value list ->
  Types.t list ->
  op

(** [result ?n o] is the [n]-th result of [o] (default the first). *)
val result : ?n:int -> op -> value

val result_opt : ?n:int -> op -> value option

(** {2 Attribute accessors} *)

val attr : string -> op -> Attr.t option
val attr_int : string -> op -> int option
val attr_str : string -> op -> string option
val attr_bool : string -> op -> bool option
val attr_float : string -> op -> float option
val attr_sym : string -> op -> string option
val attr_ints : string -> op -> int list option
val with_attr : string -> Attr.t -> op -> op
val has_attr : string -> op -> bool

(** {2 Regions} *)

val block : ?args:value list -> op list -> block
val region : block list -> region
val simple_region : op list -> region

(** Dialect prefix of an op name (["arith"] for ["arith.addf"]). *)
val dialect_of : op -> string

(** {2 Traversal} — visit nested regions depth-first. *)

val iter_ops : (op -> unit) -> op list -> unit
val fold_ops : ('a -> op -> 'a) -> 'a -> op list -> 'a
val count_ops : op list -> int

(** [substitute subst ops] replaces operand values by id throughout [ops],
    including nested regions. *)
val substitute : (int * value) list -> op list -> op list

(** [clone_ops ctx subst ops] clones [ops] with fresh result values,
    applying [subst] to operands; returns the clones and the extended
    substitution (old result id -> fresh value). *)
val clone_ops : ctx -> (int * value) list -> op list -> op list * (int * value) list

(** {2 Functions and modules} *)

type func = {
  fname : string;
  fargs : value list;
  fret_types : Types.t list;
  fbody : op list;
  fattrs : (string * Attr.t) list;
}

type modul = { mname : string; funcs : func list; mattrs : (string * Attr.t) list }

val func :
  ?attrs:(string * Attr.t) list ->
  string ->
  value list ->
  Types.t list ->
  op list ->
  func

val modul : ?attrs:(string * Attr.t) list -> string -> func list -> modul
val find_func : modul -> string -> func option

(** Replace the function with the same name. *)
val replace_func : modul -> func -> modul

val add_func : modul -> func -> modul
val func_type : func -> Types.t
val module_op_count : modul -> int
