(* Dialect registry.

   Each operation name is registered with traits and a verifier.  The
   verifier receives the op and reports a structural error message; the
   module-level verifier (Verify) walks the IR and applies these. *)

type trait =
  | Pure  (* no side effects: eligible for CSE/DCE *)
  | Commutative
  | Terminator
  | IsolatedRegion  (* regions do not capture outer SSA values *)

type op_def = {
  opname : string;
  traits : trait list;
  doc : string;
  verify : Ir.op -> (unit, string) result;
}

let registry : (string, op_def) Hashtbl.t = Hashtbl.create 128

let register ?(traits = []) ?(doc = "") opname verify =
  Hashtbl.replace registry opname { opname; traits; doc; verify }

let lookup name = Hashtbl.find_opt registry name
let is_registered name = Hashtbl.mem registry name

let has_trait name t =
  match lookup name with Some d -> List.mem t d.traits | None -> false

let is_pure (op : Ir.op) = has_trait op.name Pure
let is_terminator (op : Ir.op) = has_trait op.name Terminator

let registered_ops () =
  Hashtbl.fold (fun _ d acc -> d :: acc) registry []
  |> List.sort (fun a b -> compare a.opname b.opname)

(* Verification helpers used by dialect definitions. *)

let ok = Ok ()
let err fmt = Fmt.kstr (fun s -> Error s) fmt

let expect_operands n (op : Ir.op) =
  if List.length op.operands = n then ok
  else err "%s: expected %d operands, got %d" op.name n (List.length op.operands)

let expect_results n (op : Ir.op) =
  if List.length op.results = n then ok
  else err "%s: expected %d results, got %d" op.name n (List.length op.results)

let expect_regions n (op : Ir.op) =
  if List.length op.regions = n then ok
  else err "%s: expected %d regions, got %d" op.name n (List.length op.regions)

let expect_attr key (op : Ir.op) =
  if Ir.has_attr key op then ok else err "%s: missing attribute %S" op.name key

let ( >>> ) a b = match a with Ok () -> b () | Error _ as e -> e

let all checks op =
  List.fold_left
    (fun acc c -> match acc with Ok () -> c op | Error _ as e -> e)
    ok checks

let same_type_operands (op : Ir.op) =
  match op.operands with
  | [] -> ok
  | v :: rest ->
      if List.for_all (fun w -> Types.compatible v.Ir.vty w.Ir.vty) rest then ok
      else err "%s: operands must share one type" op.name

let operand_type n (op : Ir.op) = (List.nth op.operands n).Ir.vty
let result_type n (op : Ir.op) = (List.nth op.results n).Ir.vty

let no_verify (_ : Ir.op) = ok
