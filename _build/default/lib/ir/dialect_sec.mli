(** [sec] dialect: the data-centric security annotations of EVEREST.

    Values are classified with confidentiality levels; encrypt/decrypt mark
    boundary crossings; [sec.taint]/[sec.check] express the dynamic
    information-flow-tracking contract the HLS flow instruments
    (TaintHLS). *)

open Ir

(** Confidentiality lattice, ordered Public < Internal < Confidential <
    Secret. *)
type level = Public | Internal | Confidential | Secret

val level_name : level -> string
val level_of_name : string -> level option
val level_rank : level -> int

(** [level_leq a b] iff information at level [a] may flow to clearance
    [b]. *)
val level_leq : level -> level -> bool

val classify : ctx -> value -> level -> op
val encrypt : ?algo:string -> ctx -> value -> value -> op
val decrypt : ?algo:string -> ctx -> value -> value -> op

(** Authentication tag (32 bytes). *)
val mac : ?algo:string -> ctx -> value -> value -> op

val taint : ctx -> value -> op
val check : ctx -> value -> op

(** Attach a runtime anomaly monitor of the given kind. *)
val monitor : ctx -> value -> string -> op

val register : unit -> unit
