(* `df` dialect: dataflow orchestration (the HyperLoom workflow layer).

   A `df.graph` region holds `df.task` ops; each task names its kernel
   function symbol, consumes data values produced by other tasks, and carries
   the data-characteristics annotations (expected size, access pattern,
   security class) that drive compilation and scheduling. *)

open Ir

let task ?(attrs = []) ctx ~kernel inputs out_types =
  op ctx "df.task" inputs out_types
    ~attrs:(("kernel", Attr.sym kernel) :: attrs)

(* External data entering the workflow (sensor stream, historical archive). *)
let source ?(attrs = []) ctx name ty =
  op ctx "df.source" [] [ ty ] ~attrs:(("name", Attr.str name) :: attrs)

let sink ?(attrs = []) ctx name v =
  op ctx "df.sink" [ v ] [] ~attrs:(("name", Attr.str name) :: attrs)

let graph ?(attrs = []) ctx name body =
  op ctx "df.graph" [] [] ~regions:[ simple_region body ]
    ~attrs:(("name", Attr.str name) :: attrs)

(* Barrier producing a token once all inputs are available. *)
let barrier ctx inputs = op ctx "df.barrier" inputs [ Types.Token ]

let verify_task (o : Ir.op) =
  match Ir.attr_sym "kernel" o with
  | Some _ -> Dialect.ok
  | None -> Dialect.err "df.task: missing @kernel symbol"

let register () =
  Dialect.register "df.graph" ~doc:"Workflow graph container."
    (Dialect.all [ Dialect.expect_regions 1; Dialect.expect_attr "name" ]);
  Dialect.register "df.task" ~doc:"Workflow task bound to a kernel symbol."
    verify_task;
  Dialect.register "df.source" ~doc:"External data source."
    (Dialect.all [ Dialect.expect_operands 0; Dialect.expect_results 1;
                   Dialect.expect_attr "name" ]);
  Dialect.register "df.sink" ~doc:"Workflow output."
    (Dialect.all [ Dialect.expect_operands 1; Dialect.expect_results 0;
                   Dialect.expect_attr "name" ]);
  Dialect.register "df.barrier" ~doc:"Synchronization token."
    (Dialect.expect_results 1)
