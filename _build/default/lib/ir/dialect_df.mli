(** [df] dialect: dataflow orchestration (the HyperLoom workflow layer).

    A [df.graph] region holds [df.task] ops; each task names its kernel
    function, consumes data values produced by other tasks and carries the
    data-characteristics annotations that drive compilation and
    scheduling. *)

open Ir

(** A task bound to kernel symbol [kernel]. *)
val task :
  ?attrs:(string * Attr.t) list ->
  ctx ->
  kernel:string ->
  value list ->
  Types.t list ->
  op

(** External data entering the workflow (sensor stream, archive). *)
val source : ?attrs:(string * Attr.t) list -> ctx -> string -> Types.t -> op

(** Named workflow output. *)
val sink : ?attrs:(string * Attr.t) list -> ctx -> string -> value -> op

(** Graph container holding the orchestration ops in its region. *)
val graph : ?attrs:(string * Attr.t) list -> ctx -> string -> op list -> op

(** Token produced once all inputs are available. *)
val barrier : ctx -> value list -> op

val register : unit -> unit
