(* `scf` dialect: structured control flow (for / if / while-free subset).

   `scf.for` carries lower/upper/step operands, iteration arguments and a
   single-block body whose block arguments are [induction-var; iter-args...].
   The body terminates with `scf.yield`. *)

open Ir

let yield ctx vs = op ctx "scf.yield" vs []

(* [for_ ctx lo hi step ~iter_args body] where [body ctx iv args] returns the
   body ops and the values to yield. *)
let for_ ?(iter_args = []) ?(attrs = []) ctx lo hi step body =
  let iv = fresh_value ctx Types.index in
  let bargs = List.map (fun (v : value) -> fresh_value ctx v.vty) iter_args in
  let body_ops, yielded = body ctx iv bargs in
  let body_ops = body_ops @ [ yield ctx yielded ] in
  op ctx "scf.for"
    ([ lo; hi; step ] @ iter_args)
    (List.map (fun (v : value) -> v.vty) iter_args)
    ~regions:[ [ block ~args:(iv :: bargs) body_ops ] ]
    ~attrs

let if_ ?(ret_types = []) ctx cond then_body else_body =
  let then_ops, then_vals = then_body ctx in
  let else_ops, else_vals = else_body ctx in
  op ctx "scf.if" [ cond ] ret_types
    ~regions:
      [
        [ block (then_ops @ [ yield ctx then_vals ]) ];
        [ block (else_ops @ [ yield ctx else_vals ]) ];
      ]

(* Parallel loop: like scf.for but iterations are independent; the compiler
   uses this to emit threaded variants. *)
let parallel ?(attrs = []) ctx lo hi step body =
  let iv = fresh_value ctx Types.index in
  let body_ops = body ctx iv in
  op ctx "scf.parallel" [ lo; hi; step ] []
    ~regions:[ [ block ~args:[ iv ] (body_ops @ [ yield ctx [] ]) ] ]
    ~attrs

let verify_for (o : Ir.op) =
  let n_ops = List.length o.operands in
  if n_ops < 3 then Dialect.err "scf.for: needs lo/hi/step"
  else
    let n_iter = n_ops - 3 in
    if List.length o.results <> n_iter then
      Dialect.err "scf.for: results must match iter_args"
    else
      match o.regions with
      | [ [ b ] ] ->
          if List.length b.bargs <> n_iter + 1 then
            Dialect.err "scf.for: body needs %d block args" (n_iter + 1)
          else (
            match List.rev b.body with
            | last :: _ when String.equal last.name "scf.yield" ->
                if List.length last.operands = n_iter then Dialect.ok
                else Dialect.err "scf.for: yield arity mismatch"
            | _ -> Dialect.err "scf.for: body must end in scf.yield")
      | _ -> Dialect.err "scf.for: expected one single-block region"

let verify_if (o : Ir.op) =
  match (o.operands, o.regions) with
  | [ _ ], [ [ _ ]; [ _ ] ] -> Dialect.ok
  | [ _ ], [ [ _ ] ] -> Dialect.ok
  | _ -> Dialect.err "scf.if: one condition and one or two single-block regions"

let register () =
  Dialect.register "scf.for" ~doc:"Counted loop with iteration arguments."
    verify_for;
  Dialect.register "scf.parallel" ~doc:"Parallel counted loop."
    (Dialect.all [ Dialect.expect_regions 1 ]);
  Dialect.register "scf.if" ~doc:"Conditional with optional results." verify_if;
  Dialect.register "scf.yield" ~traits:[ Dialect.Terminator ]
    ~doc:"Region terminator yielding values." (Dialect.all [ Dialect.expect_results 0 ])
