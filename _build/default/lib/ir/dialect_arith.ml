(* `arith` dialect: scalar arithmetic, comparisons and casts. *)

open Ir

let const_i ?(ty = Types.i64) ctx (i : int) =
  op ctx "arith.constant" [] [ ty ] ~attrs:[ ("value", Attr.int i) ]

let const_f ?(ty = Types.f64) ctx (f : float) =
  op ctx "arith.constant" [] [ ty ] ~attrs:[ ("value", Attr.float f) ]

let const_index ctx i = const_i ~ty:Types.index ctx i

let binary ctx name a b = op ctx name [ a; b ] [ a.vty ]

let addi ctx a b = binary ctx "arith.addi" a b
let subi ctx a b = binary ctx "arith.subi" a b
let muli ctx a b = binary ctx "arith.muli" a b
let divi ctx a b = binary ctx "arith.divi" a b
let remi ctx a b = binary ctx "arith.remi" a b
let addf ctx a b = binary ctx "arith.addf" a b
let subf ctx a b = binary ctx "arith.subf" a b
let mulf ctx a b = binary ctx "arith.mulf" a b
let divf ctx a b = binary ctx "arith.divf" a b
let maxf ctx a b = binary ctx "arith.maxf" a b
let minf ctx a b = binary ctx "arith.minf" a b
let andi ctx a b = binary ctx "arith.andi" a b
let ori ctx a b = binary ctx "arith.ori" a b
let xori ctx a b = binary ctx "arith.xori" a b
let shli ctx a b = binary ctx "arith.shli" a b
let shri ctx a b = binary ctx "arith.shri" a b

type cmp_pred = Eq | Ne | Lt | Le | Gt | Ge

let cmp_pred_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let cmp_pred_of_name = function
  | "eq" -> Some Eq | "ne" -> Some Ne | "lt" -> Some Lt
  | "le" -> Some Le | "gt" -> Some Gt | "ge" -> Some Ge | _ -> None

let cmpi ctx pred a b =
  op ctx "arith.cmpi" [ a; b ] [ Types.i1 ]
    ~attrs:[ ("predicate", Attr.str (cmp_pred_name pred)) ]

let cmpf ctx pred a b =
  op ctx "arith.cmpf" [ a; b ] [ Types.i1 ]
    ~attrs:[ ("predicate", Attr.str (cmp_pred_name pred)) ]

let select ctx c a b = op ctx "arith.select" [ c; a; b ] [ a.vty ]
let cast ctx v ty = op ctx "arith.cast" [ v ] [ ty ]
let negf ctx a = op ctx "arith.negf" [ a ] [ a.vty ]
let sqrtf ctx a = op ctx "arith.sqrtf" [ a ] [ a.vty ]
let expf ctx a = op ctx "arith.expf" [ a ] [ a.vty ]

(* Value of a constant op, if any. *)
let const_value (o : Ir.op) =
  if String.equal o.name "arith.constant" then Ir.attr "value" o else None

let int_binops =
  [ "arith.addi"; "arith.subi"; "arith.muli"; "arith.divi"; "arith.remi";
    "arith.andi"; "arith.ori"; "arith.xori"; "arith.shli"; "arith.shri" ]

let float_binops =
  [ "arith.addf"; "arith.subf"; "arith.mulf"; "arith.divf"; "arith.maxf";
    "arith.minf" ]

let verify_binary op =
  Dialect.all
    [ Dialect.expect_operands 2; Dialect.expect_results 1;
      Dialect.same_type_operands ]
    op

let verify_int_binary op =
  match verify_binary op with
  | Error _ as e -> e
  | Ok () ->
      if Types.is_int_scalar (Dialect.operand_type 0 op) then Dialect.ok
      else Dialect.err "%s: operands must be integer scalars" op.Ir.name

let verify_float_binary op =
  match verify_binary op with
  | Error _ as e -> e
  | Ok () ->
      if Types.is_float_scalar (Dialect.operand_type 0 op) then Dialect.ok
      else Dialect.err "%s: operands must be float scalars" op.Ir.name

let register () =
  Dialect.register "arith.constant" ~traits:[ Dialect.Pure ]
    ~doc:"Materialize a compile-time scalar constant."
    (Dialect.all [ Dialect.expect_operands 0; Dialect.expect_results 1;
                   Dialect.expect_attr "value" ]);
  List.iter
    (fun n ->
      Dialect.register n ~traits:[ Dialect.Pure ] ~doc:"Integer binary op."
        verify_int_binary)
    int_binops;
  List.iter
    (fun n ->
      Dialect.register n ~traits:[ Dialect.Pure ] ~doc:"Float binary op."
        verify_float_binary)
    float_binops;
  List.iter
    (fun n ->
      Dialect.register n ~traits:[ Dialect.Pure ] ~doc:"Comparison."
        (Dialect.all
           [ Dialect.expect_operands 2; Dialect.expect_results 1;
             Dialect.expect_attr "predicate"; Dialect.same_type_operands ]))
    [ "arith.cmpi"; "arith.cmpf" ];
  Dialect.register "arith.select" ~traits:[ Dialect.Pure ] ~doc:"Ternary select."
    (Dialect.all [ Dialect.expect_operands 3; Dialect.expect_results 1 ]);
  List.iter
    (fun n ->
      Dialect.register n ~traits:[ Dialect.Pure ] ~doc:"Unary float op."
        (Dialect.all [ Dialect.expect_operands 1; Dialect.expect_results 1 ]))
    [ "arith.cast"; "arith.negf"; "arith.sqrtf"; "arith.expf" ]
