(* One-stop registration of every built-in dialect. *)

let registered = ref false

let register_all () =
  if not !registered then begin
    registered := true;
    Dialect_arith.register ();
    Dialect_scf.register ();
    Dialect_memref.register ();
    Dialect_tensor.register ();
    Dialect_df.register ();
    Dialect_hw.register ();
    Dialect_sec.register ();
    Dialect_func.register ()
  end
