(** Recursive-descent parser for the textual IR emitted by {!Printer}. *)

exception Parse_error of string

(** Parse a whole module.  Fresh ids above every parsed value are reserved
    in [ctx].
    @raise Parse_error on malformed input. *)
val parse_module : Ir.ctx -> string -> Ir.modul

(** Parse a single [func @name(...) -> (...) { ... }] definition. *)
val parse_func_str : Ir.ctx -> string -> Ir.func
