(* `hw` dialect: hardware variants.

   `hw.kernel` wraps a region of tensor/loop ops that the HLS flow turns into
   an accelerator; its attributes record the estimates (area, latency,
   initiation interval) the DSE and runtime need.  `hw.offload` is the
   call-site form referring to an outlined kernel function. *)

open Ir

let kernel ?(attrs = []) ctx name inputs out_types body =
  op ctx "hw.kernel" inputs out_types
    ~regions:[ simple_region body ]
    ~attrs:(("sym", Attr.sym name) :: attrs)

let offload ?(attrs = []) ctx ~kernel inputs out_types =
  op ctx "hw.offload" inputs out_types
    ~attrs:(("kernel", Attr.sym kernel) :: attrs)

let stream_read ctx s =
  match s.vty with
  | Types.Stream t -> op ctx "hw.stream_read" [ s ] [ t ]
  | _ -> invalid_arg "hw.stream_read: operand must be a stream"

let stream_write ctx s v = op ctx "hw.stream_write" [ s; v ] []

(* Partial reconfiguration request: load bitstream [sym] into a role slot. *)
let reconfig ctx sym =
  op ctx "hw.reconfig" [] [ Types.Token ] ~attrs:[ ("bitstream", Attr.sym sym) ]

let yield ctx vs = op ctx "hw.yield" vs []

let register () =
  Dialect.register "hw.kernel" ~doc:"Outlined hardware kernel."
    (Dialect.all [ Dialect.expect_regions 1; Dialect.expect_attr "sym" ]);
  Dialect.register "hw.offload" ~doc:"Invoke a hardware kernel."
    (fun o ->
      match Ir.attr_sym "kernel" o with
      | Some _ -> Dialect.ok
      | None -> Dialect.err "hw.offload: missing @kernel symbol");
  Dialect.register "hw.stream_read" ~doc:"Pop one element from a stream."
    (Dialect.all [ Dialect.expect_operands 1; Dialect.expect_results 1 ]);
  Dialect.register "hw.stream_write" ~doc:"Push one element into a stream."
    (Dialect.all [ Dialect.expect_operands 2; Dialect.expect_results 0 ]);
  Dialect.register "hw.reconfig" ~doc:"Partial reconfiguration."
    (Dialect.all [ Dialect.expect_attr "bitstream"; Dialect.expect_results 1 ]);
  Dialect.register "hw.yield" ~traits:[ Dialect.Terminator ]
    ~doc:"Kernel region terminator." Dialect.no_verify
