(** [tensor] dialect: the data-centric abstraction of the EVEREST DSLs.

    Value-semantics tensor operations from the tensor-expression DSL.  The
    compiler either lowers them to scf/memref loop nests (software
    variants) or outlines chains of them into [hw.kernel] ops (hardware
    variants). *)

open Ir

(** Broadcast a scalar into a tensor of the given type. *)
val fill : ctx -> value -> Types.t -> op

(** Pointwise op; [kind] in add/sub/mul/div/max/min (binary) or
    relu/sigmoid/tanh/exp/neg/sqrt (unary). *)
val elementwise : ctx -> string -> value list -> op

val add : ctx -> value -> value -> op
val sub : ctx -> value -> value -> op
val mul : ctx -> value -> value -> op
val relu : ctx -> value -> op
val sigmoid : ctx -> value -> op
val tanh_ : ctx -> value -> op

(** Scalar-tensor multiply. *)
val scale : ctx -> value -> value -> op

(** @raise Invalid_argument unless operands are compatible rank-2 tensors. *)
val matmul : ctx -> value -> value -> op

val transpose : ctx -> value -> op
val reshape : ctx -> value -> int list -> op

(** Full reduction to a scalar; [kind] in add/mul/max/min. *)
val reduce : ctx -> string -> value -> op

(** Einsum-style contraction with an explicit result type. *)
val contract : ctx -> string -> value list -> Types.t -> op

val ew_kinds : string list
val unary_kinds : string list
val register : unit -> unit
