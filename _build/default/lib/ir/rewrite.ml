(* Greedy pattern-rewrite driver.

   A pattern inspects one op (with access to the defining ops of its
   operands) and either declines or produces replacement ops plus a value
   substitution.  The driver applies patterns to a fixpoint, innermost
   regions first, mirroring MLIR's canonicalization driver. *)

type produced = {
  new_ops : Ir.op list;  (* spliced in place of the matched op *)
  subst : (Ir.value * Ir.value) list;  (* old result -> new value *)
}

type pattern = {
  pname : string;
  benefit : int;
  matcher : Ir.ctx -> defs:(int -> Ir.op option) -> Ir.op -> produced option;
}

let pattern ?(benefit = 1) pname matcher = { pname; benefit; matcher }

(* Replace the op by nothing (all results must be dead or substituted). *)
let erase = { new_ops = []; subst = [] }

let replace_with ops subst = { new_ops = ops; subst }

(* One value replaces the single result. *)
let fold_to (op : Ir.op) v new_ops =
  match op.results with
  | [ r ] -> Some { new_ops; subst = [ (r, v) ] }
  | _ -> None

type stats = { mutable applications : (string * int) list }

let bump stats name =
  let n = try List.assoc name stats.applications with Not_found -> 0 in
  stats.applications <- (name, n + 1) :: List.remove_assoc name stats.applications

(* Apply patterns over an op list until fixpoint (bounded). *)
let apply_patterns ?(max_iterations = 20) ctx (patterns : pattern list) ops =
  let patterns =
    List.sort (fun a b -> compare b.benefit a.benefit) patterns
  in
  let stats = { applications = [] } in
  let rec rewrite_list defs ops =
    (* defs: map vid -> defining op for operand inspection *)
    let changed = ref false in
    let rec go defs acc = function
      | [] -> List.rev acc
      | (o : Ir.op) :: rest ->
          (* innermost first: rewrite nested regions *)
          let o =
            if o.regions = [] then o
            else
              let regions' =
                List.map
                  (List.map (fun (b : Ir.block) ->
                       { b with Ir.body = rewrite_list defs b.body }))
                  o.regions
              in
              if regions' <> o.regions then (changed := true;
                                             { o with regions = regions' })
              else o
          in
          let lookup_def vid = List.assoc_opt vid defs in
          let rec try_pats = function
            | [] -> None
            | p :: ps -> (
                match p.matcher ctx ~defs:lookup_def o with
                | Some r -> bump stats p.pname; Some r
                | None -> try_pats ps)
          in
          (match try_pats patterns with
          | Some { new_ops; subst } ->
              changed := true;
              let subst' = List.map (fun ((a : Ir.value), b) -> (a.vid, b)) subst in
              let defs =
                List.fold_left
                  (fun defs (op : Ir.op) ->
                    List.fold_left
                      (fun defs (r : Ir.value) -> (r.vid, op) :: defs)
                      defs op.results)
                  defs new_ops
              in
              let rest = Ir.substitute subst' rest in
              let acc =
                List.rev_append new_ops acc
              in
              go defs acc rest
          | None ->
              let defs =
                List.fold_left
                  (fun defs (r : Ir.value) -> (r.vid, o) :: defs)
                  defs o.results
              in
              go defs (o :: acc) rest)
    in
    let result = go defs [] ops in
    if !changed then result else ops
  in
  let rec fix i ops =
    if i >= max_iterations then ops
    else
      let ops' = rewrite_list [] ops in
      if ops' == ops || ops' = ops then ops else fix (i + 1) ops'
  in
  (fix 0 ops, stats)

let apply_to_func ?max_iterations ctx patterns (f : Ir.func) =
  let body, stats = apply_patterns ?max_iterations ctx patterns f.Ir.fbody in
  ({ f with Ir.fbody = body }, stats)

let apply_to_module ?max_iterations ctx patterns (m : Ir.modul) =
  let funcs =
    List.map (fun f -> fst (apply_to_func ?max_iterations ctx patterns f)) m.Ir.funcs
  in
  { m with Ir.funcs }
