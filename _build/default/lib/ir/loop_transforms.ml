(* Loop unrolling and function inlining.

   Both are enablers for the HLS flow: unrolling widens the inner loop body
   (more parallel operations per initiation) and inlining removes call
   boundaries so whole kernels become one synthesizable region.  Semantics
   preservation is checked against the interpreter in the test suite. *)

open Ir

let const_int_of ~defs (v : value) =
  match defs v.vid with
  | Some o -> (
      match Dialect_arith.const_value o with
      | Some (Attr.Int i) -> Some i
      | _ -> None)
  | None -> None

(* Trip count of a constant-bound loop. *)
let trip_count ~lo ~hi ~step =
  if step <= 0 then None
  else Some (max 0 ((hi - lo + step - 1) / step))

(* ---- full unrolling ---------------------------------------------------------- *)

(* Substitutions for loop results accumulated during a rewrite walk and
   applied at the function level afterwards. *)
let pending_subst : (int * value) list ref = ref []

(* Fully unroll constant-bound scf.for loops with trip count <= [limit].
   Body clones get the induction variable as a fresh constant; iteration
   arguments chain through the clones. *)
let rec full_unroll_ops ?(limit = 64) ctx (ops : op list) : op list =
  (* defs table for constant detection *)
  let defs : (int, op) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (o : op) ->
      List.iter (fun (r : value) -> Hashtbl.replace defs r.vid o) o.results)
    ops;
  let lookup vid = Hashtbl.find_opt defs vid in
  List.concat_map
    (fun (o : op) ->
      (* recurse into nested regions first *)
      let o =
        { o with
          regions =
            List.map
              (List.map (fun (b : block) ->
                   { b with body = full_unroll_ops ~limit ctx b.body }))
              o.regions }
      in
      if not (String.equal o.name "scf.for") then [ o ]
      else
        match (o.operands, o.regions) with
        | lo_v :: hi_v :: step_v :: iter_init, [ [ body_block ] ] -> (
            match
              ( const_int_of ~defs:lookup lo_v,
                const_int_of ~defs:lookup hi_v,
                const_int_of ~defs:lookup step_v )
            with
            | Some lo, Some hi, Some step -> (
                match trip_count ~lo ~hi ~step with
                | Some trips when trips <= limit ->
                    let iv = List.hd body_block.bargs in
                    let iter_formals = List.tl body_block.bargs in
                    (* split the terminator off the body *)
                    let body, yielded =
                      match List.rev body_block.body with
                      | last :: rest when String.equal last.name "scf.yield" ->
                          (List.rev rest, last.operands)
                      | _ -> (body_block.body, [])
                    in
                    let unrolled = ref [] in
                    let carried = ref iter_init in
                    for k = 0 to trips - 1 do
                      let c = Dialect_arith.const_index ctx (lo + (k * step)) in
                      unrolled := c :: !unrolled;
                      let subst =
                        (iv.vid, Ir.result c)
                        :: List.map2
                             (fun (f : value) a -> (f.vid, a))
                             iter_formals !carried
                      in
                      let clones, subst' = clone_ops ctx subst body in
                      unrolled := List.rev_append clones !unrolled;
                      carried :=
                        List.map
                          (fun (y : value) ->
                            match List.assoc_opt y.vid subst' with
                            | Some v -> v
                            | None -> y)
                          yielded
                    done;
                    (* forward loop results to the last carried values *)
                    let forwards =
                      List.map2
                        (fun (r : value) (v : value) ->
                          (* identity via arith.addi r = v + 0 would be noise;
                             emit a cast op instead *)
                          let c = Ir.op ctx "arith.cast" [ v ] [ r.vty ] in
                          (r, c))
                        o.results !carried
                    in
                    (* substitute loop results in... caller handles via returned
                       op list: we splice casts whose results replace o.results.
                       Simplest: emit casts and rely on [substitute]. *)
                    let cast_ops = List.map snd forwards in
                    let sub =
                      List.map
                        (fun ((r : value), (c : op)) -> (r.vid, Ir.result c))
                        forwards
                    in
                    (* tag: the substitution is applied by the caller through
                       [apply_full_unroll] below *)
                    pending_subst := sub @ !pending_subst;
                    List.rev !unrolled @ cast_ops
                | _ -> [ o ])
            | _ -> [ o ])
        | _ -> [ o ])
    ops

let full_unroll ?(limit = 64) ctx (f : func) : func =
  pending_subst := [];
  let body = full_unroll_ops ~limit ctx f.fbody in
  let body = substitute !pending_subst body in
  pending_subst := [];
  { f with fbody = body }

(* ---- partial unrolling --------------------------------------------------------- *)

(* Unroll a constant-bound loop by [factor] when the trip count divides
   evenly: the new loop advances by factor*step and the body is replicated
   with shifted induction values, chaining iteration arguments. *)
let rec unroll_by_ops ctx ~factor (ops : op list) : op list =
  let defs : (int, op) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (o : op) ->
      List.iter (fun (r : value) -> Hashtbl.replace defs r.vid o) o.results)
    ops;
  let lookup vid = Hashtbl.find_opt defs vid in
  List.concat_map
    (fun (o : op) ->
      let o =
        { o with
          regions =
            List.map
              (List.map (fun (b : block) ->
                   { b with body = unroll_by_ops ctx ~factor b.body }))
              o.regions }
      in
      if not (String.equal o.name "scf.for") || factor <= 1 then [ o ]
      else
        match (o.operands, o.regions) with
        | lo_v :: hi_v :: step_v :: iter_init, [ [ body_block ] ] -> (
            match
              ( const_int_of ~defs:lookup lo_v,
                const_int_of ~defs:lookup hi_v,
                const_int_of ~defs:lookup step_v )
            with
            | Some lo, Some hi, Some step
              when (match trip_count ~lo ~hi ~step with
                   | Some t -> t mod factor = 0 && t > 0
                   | None -> false) ->
                let iv = List.hd body_block.bargs in
                let iter_formals = List.tl body_block.bargs in
                let body, yielded =
                  match List.rev body_block.body with
                  | last :: rest when String.equal last.name "scf.yield" ->
                      (List.rev rest, last.operands)
                  | _ -> (body_block.body, [])
                in
                let new_step = Dialect_arith.const_index ctx (step * factor) in
                let loop =
                  Dialect_scf.for_ ctx ~iter_args:iter_init
                    ~attrs:o.attrs lo_v hi_v (Ir.result new_step)
                    (fun ctx iv' formals' ->
                      let acc = ref [] in
                      let carried = ref formals' in
                      for k = 0 to factor - 1 do
                        let off = Dialect_arith.const_index ctx (k * step) in
                        let shifted = Dialect_arith.addi ctx iv' (Ir.result off) in
                        acc := shifted :: off :: !acc;
                        let subst =
                          (iv.vid, Ir.result shifted)
                          :: List.map2
                               (fun (f : value) a -> (f.vid, a))
                               iter_formals !carried
                        in
                        let clones, subst' = clone_ops ctx subst body in
                        acc := List.rev_append clones !acc;
                        carried :=
                          List.map
                            (fun (y : value) ->
                              match List.assoc_opt y.vid subst' with
                              | Some v -> v
                              | None -> y)
                            yielded
                      done;
                      (List.rev !acc, !carried))
                in
                (* map old loop results onto the new loop's results *)
                let sub =
                  List.map2
                    (fun (r : value) (r' : value) -> (r.vid, r'))
                    o.results loop.results
                in
                pending_subst := sub @ !pending_subst;
                [ new_step; loop ]
            | _ -> [ o ])
        | _ -> [ o ])
    ops

let unroll_by ctx ~factor (f : func) : func =
  pending_subst := [];
  let body = unroll_by_ops ctx ~factor f.fbody in
  let body = substitute !pending_subst body in
  pending_subst := [];
  { f with fbody = body }

(* ---- inlining -------------------------------------------------------------------- *)

(* Inline every func.call whose callee exists in [m] and is small enough. *)
let inline_module ?(max_ops = 1000) ctx (m : modul) : modul =
  let rec inline_ops (ops : op list) : op list =
    let subst = ref [] in
    let out =
      List.concat_map
        (fun (o : op) ->
          let o =
            { o with
              regions =
                List.map
                  (List.map (fun (b : block) -> { b with body = inline_ops b.body }))
                  o.regions }
          in
          if not (String.equal o.name "func.call") then [ o ]
          else
            match Option.bind (Ir.attr_sym "callee" o) (Ir.find_func m) with
            | Some callee when Ir.count_ops callee.fbody <= max_ops ->
                let arg_subst =
                  List.map2
                    (fun (formal : value) actual -> (formal.vid, actual))
                    callee.fargs o.operands
                in
                let clones, subst' = clone_ops ctx arg_subst callee.fbody in
                (* the cloned return yields the call results *)
                let body, returned =
                  match List.rev clones with
                  | last :: rest when String.equal last.name "func.return" ->
                      (List.rev rest, last.operands)
                  | _ -> (clones, [])
                in
                ignore subst';
                List.iter2
                  (fun (r : value) (v : value) -> subst := (r.vid, v) :: !subst)
                  o.results returned;
                body
            | _ -> [ o ])
        ops
    in
    substitute !subst out
  in
  { m with
    funcs = List.map (fun f -> { f with fbody = inline_ops f.fbody }) m.funcs }

let inline_pass = Pass.make "inline" (fun ctx m -> inline_module ctx m)
