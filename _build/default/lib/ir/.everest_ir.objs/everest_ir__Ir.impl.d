lib/ir/ir.ml: Attr List Loc Option String Types
