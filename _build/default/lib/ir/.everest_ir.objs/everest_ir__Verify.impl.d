lib/ir/verify.ml: Dialect Fmt Int Ir List Set String
