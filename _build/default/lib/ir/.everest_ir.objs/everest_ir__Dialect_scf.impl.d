lib/ir/dialect_scf.ml: Dialect Ir List String Types
