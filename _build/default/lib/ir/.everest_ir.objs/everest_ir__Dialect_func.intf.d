lib/ir/dialect_func.mli: Ir Types
