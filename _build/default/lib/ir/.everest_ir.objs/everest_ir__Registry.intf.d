lib/ir/registry.mli:
