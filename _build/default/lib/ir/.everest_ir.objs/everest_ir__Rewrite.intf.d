lib/ir/rewrite.mli: Ir
