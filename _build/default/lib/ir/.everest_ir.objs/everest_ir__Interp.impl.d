lib/ir/interp.ml: Array Attr Dialect_arith Float Fmt Hashtbl Ir List Option String Types
