lib/ir/verify.mli: Format Ir
