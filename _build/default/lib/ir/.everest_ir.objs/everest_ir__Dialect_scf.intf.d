lib/ir/dialect_scf.mli: Attr Ir Types
