lib/ir/dialect.ml: Fmt Hashtbl Ir List Types
