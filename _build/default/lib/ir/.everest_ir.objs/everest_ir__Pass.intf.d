lib/ir/pass.mli: Format Ir Verify
