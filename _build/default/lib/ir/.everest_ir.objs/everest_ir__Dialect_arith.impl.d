lib/ir/dialect_arith.ml: Attr Dialect Ir List String Types
