lib/ir/attr.mli: Format Types
