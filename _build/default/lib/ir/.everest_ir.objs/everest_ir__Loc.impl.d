lib/ir/loc.ml: Fmt
