lib/ir/dialect_df.ml: Attr Dialect Ir Types
