lib/ir/types.ml: Fmt List Printf String
