lib/ir/interp.mli: Ir Types
