lib/ir/printer.mli: Attr Format Ir
