lib/ir/printer.ml: Attr Fmt Ir List String Types
