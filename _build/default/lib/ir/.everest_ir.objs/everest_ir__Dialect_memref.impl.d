lib/ir/dialect_memref.ml: Dialect Ir List Types
