lib/ir/registry.ml: Dialect_arith Dialect_df Dialect_func Dialect_hw Dialect_memref Dialect_scf Dialect_sec Dialect_tensor
