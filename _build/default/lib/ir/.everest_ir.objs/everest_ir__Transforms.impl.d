lib/ir/transforms.ml: Attr Dialect Dialect_arith Float Int Ir List Option Pass Rewrite Set String Types
