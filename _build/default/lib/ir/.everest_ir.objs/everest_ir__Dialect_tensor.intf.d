lib/ir/dialect_tensor.mli: Ir Types
