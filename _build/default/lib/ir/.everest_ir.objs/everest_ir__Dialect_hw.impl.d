lib/ir/dialect_hw.ml: Attr Dialect Ir Types
