lib/ir/dialect_sec.mli: Ir
