lib/ir/dialect_hw.mli: Attr Ir Types
