lib/ir/parser.ml: Attr Buffer Fmt Ir List Loc String Types
