lib/ir/transforms.mli: Pass Rewrite
