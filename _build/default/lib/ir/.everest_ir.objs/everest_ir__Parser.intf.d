lib/ir/parser.mli: Ir
