lib/ir/dialect_arith.mli: Attr Ir Types
