lib/ir/dialect_memref.mli: Ir Types
