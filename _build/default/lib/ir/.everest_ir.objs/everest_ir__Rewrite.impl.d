lib/ir/rewrite.ml: Ir List
