lib/ir/attr.ml: Buffer Float Fmt List Option String Types
