lib/ir/dialect.mli: Format Ir Types
