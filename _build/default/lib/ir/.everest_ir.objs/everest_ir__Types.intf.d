lib/ir/types.mli: Format
