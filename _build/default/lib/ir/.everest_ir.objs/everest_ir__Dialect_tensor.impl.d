lib/ir/dialect_tensor.ml: Attr Dialect Ir List Types
