lib/ir/ir.mli: Attr Loc Types
