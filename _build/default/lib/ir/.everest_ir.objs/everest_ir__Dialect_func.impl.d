lib/ir/dialect_func.ml: Attr Dialect Ir
