lib/ir/pass.ml: Fmt Ir List Sys Verify
