lib/ir/loop_transforms.mli: Ir Pass
