lib/ir/dialect_sec.ml: Attr Dialect Ir List Option Types
