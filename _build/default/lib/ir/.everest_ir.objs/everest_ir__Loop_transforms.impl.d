lib/ir/loop_transforms.ml: Attr Dialect_arith Dialect_scf Hashtbl Ir List Option Pass String
