lib/ir/dialect_df.mli: Attr Ir Types
