(* Reference interpreter for the IR.

   Executes arith/scf/memref/tensor/func/sec ops over a small runtime value
   domain.  Used by the test suite to check that compiler transformations
   preserve semantics, and by the platform simulator to obtain ground-truth
   results for software variants.  The interpreter also keeps an operation
   profile (scalar ops, memory accesses) that the cost estimators are
   validated against. *)

type rt =
  | RInt of int
  | RFloat of float
  | RBuf of buf  (* tensors and memrefs share a dense float buffer *)
  | RToken

and buf = { shape : int list; data : float array; space : Types.mem_space }

exception Runtime_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type profile = {
  mutable scalar_ops : int;
  mutable loads : int;
  mutable stores : int;
  mutable tensor_elems : int;  (* elements produced by tensor ops *)
  mutable calls : int;
  mutable crypto_bytes : int;
}

let new_profile () =
  { scalar_ops = 0; loads = 0; stores = 0; tensor_elems = 0; calls = 0;
    crypto_bytes = 0 }

type env = {
  ctx : Ir.ctx;
  modul : Ir.modul option;
  bindings : (int, rt) Hashtbl.t;
  profile : profile;
  mutable steps : int;
  max_steps : int;
}

let make_env ?(max_steps = 100_000_000) ?modul ctx =
  { ctx; modul; bindings = Hashtbl.create 64; profile = new_profile ();
    steps = 0; max_steps }

let bind env (v : Ir.value) rt = Hashtbl.replace env.bindings v.vid rt

let value env (v : Ir.value) =
  match Hashtbl.find_opt env.bindings v.vid with
  | Some rt -> rt
  | None -> fail "unbound value %%%d" v.vid

let as_int = function
  | RInt i -> i
  | RFloat f -> int_of_float f
  | _ -> fail "expected integer"

let as_float = function
  | RFloat f -> f
  | RInt i -> float_of_int i
  | _ -> fail "expected float"

let as_buf = function RBuf b -> b | _ -> fail "expected tensor/memref"

let num_elems shape = List.fold_left ( * ) 1 shape

let buf ?(space = Types.Host) shape data = RBuf { shape; data; space }
let zeros ?(space = Types.Host) shape =
  buf ~space shape (Array.make (num_elems shape) 0.0)

let tensor_of_array shape a = buf shape (Array.copy a)

(* Row-major linearization. *)
let linear_index shape idxs =
  let rec go shape idxs acc =
    match (shape, idxs) with
    | [], [] -> acc
    | d :: ds, i :: is ->
        if i < 0 || i >= d then fail "index %d out of bounds (dim %d)" i d
        else go ds is ((acc * d) + i)
    | _ -> fail "rank mismatch in indexing"
  in
  go shape idxs 0

let ew_fun2 = function
  | "add" -> ( +. )
  | "sub" -> ( -. )
  | "mul" -> ( *. )
  | "div" -> ( /. )
  | "max" -> Float.max
  | "min" -> Float.min
  | k -> fail "unknown binary elementwise kind %S" k

let ew_fun1 = function
  | "relu" -> fun x -> Float.max 0.0 x
  | "sigmoid" -> fun x -> 1.0 /. (1.0 +. exp (-.x))
  | "tanh" -> Float.tanh
  | "exp" -> exp
  | "neg" -> fun x -> -.x
  | "sqrt" -> sqrt
  | k -> fail "unknown unary elementwise kind %S" k

(* Einsum-style contraction: spec "ij,jk->ik" with one or two operands. *)
let einsum spec (inputs : buf list) : buf =
  let lhs, rhs =
    match String.index_opt spec '>' with
    | Some i when i > 0 && spec.[i - 1] = '-' ->
        (String.sub spec 0 (i - 1), String.sub spec i (String.length spec - i))
    | _ -> fail "bad contraction spec %S" spec
  in
  let rhs = String.sub rhs 1 (String.length rhs - 1) in
  let in_specs = String.split_on_char ',' lhs in
  if List.length in_specs <> List.length inputs then
    fail "contraction arity mismatch";
  (* label -> extent *)
  let extents = Hashtbl.create 8 in
  List.iter2
    (fun spec (b : buf) ->
      if String.length spec <> List.length b.shape then
        fail "contraction rank mismatch for %S" spec;
      List.iteri
        (fun i d ->
          let l = spec.[i] in
          match Hashtbl.find_opt extents l with
          | Some d' when d' <> d -> fail "inconsistent extent for label %c" l
          | _ -> Hashtbl.replace extents l d)
        b.shape)
    in_specs inputs;
  let out_labels = List.init (String.length rhs) (String.get rhs) in
  let all_labels =
    Hashtbl.fold (fun l _ acc -> l :: acc) extents []
    |> List.sort_uniq compare
  in
  let sum_labels = List.filter (fun l -> not (List.mem l out_labels)) all_labels in
  let out_shape = List.map (Hashtbl.find extents) out_labels in
  let out = Array.make (num_elems out_shape) 0.0 in
  (* iterate over full index space *)
  let loop_labels = out_labels @ sum_labels in
  let loop_extents = List.map (Hashtbl.find extents) loop_labels in
  let assign = Hashtbl.create 8 in
  let input_val spec (b : buf) =
    let idxs = List.init (String.length spec) (fun i -> Hashtbl.find assign spec.[i]) in
    b.data.(linear_index b.shape idxs)
  in
  let rec go labels extents =
    match (labels, extents) with
    | [], [] ->
        let prod =
          List.fold_left2
            (fun acc spec b -> acc *. input_val spec b)
            1.0 in_specs inputs
        in
        let out_idx =
          if out_labels = [] then 0
          else linear_index out_shape (List.map (Hashtbl.find assign) out_labels)
        in
        out.(out_idx) <- out.(out_idx) +. prod
    | l :: ls, e :: es ->
        for i = 0 to e - 1 do
          Hashtbl.replace assign l i;
          go ls es
        done
    | _ -> assert false
  in
  go loop_labels loop_extents;
  { shape = out_shape; data = out; space = Types.Host }

let step env =
  env.steps <- env.steps + 1;
  if env.steps > env.max_steps then fail "interpreter step budget exceeded"

let rec eval_ops env (ops : Ir.op list) =
  List.iter (eval_op env) ops

and eval_block env (b : Ir.block) args =
  List.iter2 (fun v a -> bind env v a) b.bargs args;
  eval_ops env b.body

(* Evaluate the single-block region's body and return values yielded by the
   trailing terminator (scf.yield / hw.yield / func.return). *)
and eval_region_yield env (r : Ir.region) args =
  match r with
  | [ b ] -> (
      List.iter2 (fun v a -> bind env v a) b.bargs args;
      let rec go = function
        | [] -> []
        | [ (last : Ir.op) ]
          when List.mem last.name [ "scf.yield"; "hw.yield"; "func.return" ] ->
            List.map (value env) last.operands
        | o :: rest -> eval_op env o; go rest
      in
      go b.body)
  | _ -> fail "expected single-block region"

and eval_op env (o : Ir.op) =
  step env;
  let p = env.profile in
  let bind1 rt = bind env (Ir.result o) rt in
  match o.name with
  | "arith.constant" -> (
      match Ir.attr "value" o with
      | Some (Attr.Int i) ->
          if Types.is_float_scalar (Ir.result o).vty then bind1 (RFloat (float_of_int i))
          else bind1 (RInt i)
      | Some (Attr.Float f) -> bind1 (RFloat f)
      | _ -> fail "arith.constant: bad value")
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divi" | "arith.remi"
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.shli" | "arith.shri" ->
      p.scalar_ops <- p.scalar_ops + 1;
      let a = as_int (value env (List.nth o.operands 0)) in
      let b = as_int (value env (List.nth o.operands 1)) in
      let r =
        match o.name with
        | "arith.addi" -> a + b
        | "arith.subi" -> a - b
        | "arith.muli" -> a * b
        | "arith.divi" -> if b = 0 then fail "division by zero" else a / b
        | "arith.remi" -> if b = 0 then fail "division by zero" else a mod b
        | "arith.andi" -> a land b
        | "arith.ori" -> a lor b
        | "arith.xori" -> a lxor b
        | "arith.shli" -> a lsl b
        | _ -> a lsr b
      in
      bind1 (RInt r)
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maxf"
  | "arith.minf" ->
      p.scalar_ops <- p.scalar_ops + 1;
      let a = as_float (value env (List.nth o.operands 0)) in
      let b = as_float (value env (List.nth o.operands 1)) in
      let r =
        match o.name with
        | "arith.addf" -> a +. b
        | "arith.subf" -> a -. b
        | "arith.mulf" -> a *. b
        | "arith.divf" -> a /. b
        | "arith.maxf" -> Float.max a b
        | _ -> Float.min a b
      in
      bind1 (RFloat r)
  | "arith.negf" -> bind1 (RFloat (-.as_float (value env (List.hd o.operands))))
  | "arith.sqrtf" -> bind1 (RFloat (sqrt (as_float (value env (List.hd o.operands)))))
  | "arith.expf" -> bind1 (RFloat (exp (as_float (value env (List.hd o.operands)))))
  | "arith.cmpi" | "arith.cmpf" ->
      p.scalar_ops <- p.scalar_ops + 1;
      let a = value env (List.nth o.operands 0) in
      let b = value env (List.nth o.operands 1) in
      let c =
        match o.name with
        | "arith.cmpi" -> compare (as_int a) (as_int b)
        | _ -> compare (as_float a) (as_float b)
      in
      let pred =
        match Option.bind (Ir.attr_str "predicate" o) Dialect_arith.cmp_pred_of_name with
        | Some p -> p
        | None -> fail "cmp: bad predicate"
      in
      let r =
        match pred with
        | Dialect_arith.Eq -> c = 0 | Ne -> c <> 0 | Lt -> c < 0
        | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0
      in
      bind1 (RInt (if r then 1 else 0))
  | "arith.select" ->
      let c = as_int (value env (List.nth o.operands 0)) in
      bind1 (value env (List.nth o.operands (if c <> 0 then 1 else 2)))
  | "arith.cast" -> (
      let v = value env (List.hd o.operands) in
      match (Ir.result o).vty with
      | t when Types.is_float_scalar t -> bind1 (RFloat (as_float v))
      | t when Types.is_int_scalar t -> bind1 (RInt (as_int v))
      | _ -> bind1 v)
  | "scf.for" -> (
      match (o.operands, o.regions) with
      | lo :: hi :: stp :: iter_init, [ region ] ->
          let lo = as_int (value env lo) in
          let hi = as_int (value env hi) in
          let stp = as_int (value env stp) in
          if stp <= 0 then fail "scf.for: step must be positive";
          let init = List.map (value env) iter_init in
          let rec loop i acc =
            if i >= hi then acc
            else
              let yielded = eval_region_yield env region (RInt i :: acc) in
              loop (i + stp) yielded
          in
          let final = loop lo init in
          List.iter2 (fun r v -> bind env r v) o.results final
      | _ -> fail "scf.for: malformed")
  | "scf.parallel" -> (
      match (o.operands, o.regions) with
      | [ lo; hi; stp ], [ region ] ->
          let lo = as_int (value env lo) in
          let hi = as_int (value env hi) in
          let stp = as_int (value env stp) in
          if stp <= 0 then fail "scf.parallel: step must be positive";
          let i = ref lo in
          while !i < hi do
            ignore (eval_region_yield env region [ RInt !i ]);
            i := !i + stp
          done
      | _ -> fail "scf.parallel: malformed")
  | "scf.if" -> (
      let c = as_int (value env (List.hd o.operands)) in
      match o.regions with
      | [ then_r; else_r ] ->
          let vals = eval_region_yield env (if c <> 0 then then_r else else_r) [] in
          List.iter2 (fun r v -> bind env r v) o.results vals
      | [ then_r ] -> if c <> 0 then ignore (eval_region_yield env then_r [])
      | _ -> fail "scf.if: malformed")
  | "scf.yield" | "hw.yield" | "func.return" ->
      (* handled by eval_region_yield; reaching here means mid-block *)
      fail "%s outside region tail" o.name
  | "memref.alloc" -> (
      match (Ir.result o).vty with
      | Types.Memref { shape; space; _ } ->
          let dyn = ref (List.map (fun v -> as_int (value env v)) o.operands) in
          let shape =
            List.map
              (function
                | Types.Static d -> d
                | Types.Dyn -> (
                    match !dyn with
                    | d :: rest -> dyn := rest; d
                    | [] -> fail "memref.alloc: missing dynamic extent"))
              shape
          in
          bind1 (zeros ~space shape)
      | _ -> fail "memref.alloc: bad result type")
  | "memref.dealloc" -> ()
  | "memref.load" ->
      p.loads <- p.loads + 1;
      let b = as_buf (value env (List.hd o.operands)) in
      let idxs = List.map (fun v -> as_int (value env v)) (List.tl o.operands) in
      let x = b.data.(linear_index b.shape idxs) in
      if Types.is_int_scalar (Ir.result o).vty then bind1 (RInt (int_of_float x))
      else bind1 (RFloat x)
  | "memref.store" ->
      p.stores <- p.stores + 1;
      let v = as_float (value env (List.nth o.operands 0)) in
      let b = as_buf (value env (List.nth o.operands 1)) in
      let idxs =
        List.map (fun v -> as_int (value env v)) (List.tl (List.tl o.operands))
      in
      b.data.(linear_index b.shape idxs) <- v
  | "memref.copy" ->
      let src = as_buf (value env (List.nth o.operands 0)) in
      let dst = as_buf (value env (List.nth o.operands 1)) in
      if Array.length src.data <> Array.length dst.data then
        fail "memref.copy: size mismatch";
      Array.blit src.data 0 dst.data 0 (Array.length src.data);
      p.loads <- p.loads + Array.length src.data;
      p.stores <- p.stores + Array.length src.data
  | "memref.transfer" -> (
      let b = as_buf (value env (List.hd o.operands)) in
      match (Ir.result o).vty with
      | Types.Memref { space; _ } ->
          bind1 (RBuf { b with data = Array.copy b.data; space })
      | _ -> fail "memref.transfer: bad result type")
  | "tensor.fill" -> (
      let s = as_float (value env (List.hd o.operands)) in
      match (Ir.result o).vty with
      | Types.Tensor _ as t ->
          let shape = Types.static_shape_exn t in
          p.tensor_elems <- p.tensor_elems + num_elems shape;
          bind1 (buf shape (Array.make (num_elems shape) s))
      | _ -> fail "tensor.fill: bad result type")
  | "tensor.elementwise" -> (
      let kind = Option.value ~default:"" (Ir.attr_str "kind" o) in
      match o.operands with
      | [ a ] ->
          let a = as_buf (value env a) in
          let f = ew_fun1 kind in
          p.tensor_elems <- p.tensor_elems + Array.length a.data;
          bind1 (buf a.shape (Array.map f a.data))
      | [ a; b ] ->
          let a = as_buf (value env a) in
          let b = as_buf (value env b) in
          if a.shape <> b.shape then fail "tensor.elementwise: shape mismatch";
          let f = ew_fun2 kind in
          p.tensor_elems <- p.tensor_elems + Array.length a.data;
          bind1 (buf a.shape (Array.map2 f a.data b.data))
      | _ -> fail "tensor.elementwise: arity")
  | "tensor.scale" ->
      let s = as_float (value env (List.nth o.operands 0)) in
      let a = as_buf (value env (List.nth o.operands 1)) in
      p.tensor_elems <- p.tensor_elems + Array.length a.data;
      bind1 (buf a.shape (Array.map (fun x -> s *. x) a.data))
  | "tensor.matmul" -> (
      let a = as_buf (value env (List.nth o.operands 0)) in
      let b = as_buf (value env (List.nth o.operands 1)) in
      match (a.shape, b.shape) with
      | [ m; k ], [ k'; n ] when k = k' ->
          let out = Array.make (m * n) 0.0 in
          for i = 0 to m - 1 do
            for j = 0 to n - 1 do
              let acc = ref 0.0 in
              for l = 0 to k - 1 do
                acc := !acc +. (a.data.((i * k) + l) *. b.data.((l * n) + j))
              done;
              out.((i * n) + j) <- !acc
            done
          done;
          p.tensor_elems <- p.tensor_elems + (m * n);
          p.scalar_ops <- p.scalar_ops + (2 * m * n * k);
          bind1 (buf [ m; n ] out)
      | _ -> fail "tensor.matmul: shape mismatch")
  | "tensor.transpose" -> (
      let a = as_buf (value env (List.hd o.operands)) in
      match a.shape with
      | [ m; n ] ->
          let out = Array.make (m * n) 0.0 in
          for i = 0 to m - 1 do
            for j = 0 to n - 1 do
              out.((j * m) + i) <- a.data.((i * n) + j)
            done
          done;
          p.tensor_elems <- p.tensor_elems + (m * n);
          bind1 (buf [ n; m ] out)
      | _ -> fail "tensor.transpose: rank-2 required")
  | "tensor.reshape" -> (
      let a = as_buf (value env (List.hd o.operands)) in
      match (Ir.result o).vty with
      | Types.Tensor _ as t ->
          let shape = Types.static_shape_exn t in
          if num_elems shape <> Array.length a.data then
            fail "tensor.reshape: element count mismatch";
          bind1 (buf shape (Array.copy a.data))
      | _ -> fail "tensor.reshape: bad result type")
  | "tensor.reduce" ->
      let a = as_buf (value env (List.hd o.operands)) in
      let kind = Option.value ~default:"add" (Ir.attr_str "kind" o) in
      p.scalar_ops <- p.scalar_ops + Array.length a.data;
      let r =
        match kind with
        | "add" -> Array.fold_left ( +. ) 0.0 a.data
        | "mul" -> Array.fold_left ( *. ) 1.0 a.data
        | "max" -> Array.fold_left Float.max neg_infinity a.data
        | "min" -> Array.fold_left Float.min infinity a.data
        | k -> fail "tensor.reduce: unknown kind %S" k
      in
      bind1 (RFloat r)
  | "tensor.contract" ->
      let spec =
        match Ir.attr_str "spec" o with
        | Some s -> s
        | None -> fail "tensor.contract: missing spec"
      in
      let inputs = List.map (fun v -> as_buf (value env v)) o.operands in
      let out = einsum spec inputs in
      p.tensor_elems <- p.tensor_elems + Array.length out.data;
      bind1 (RBuf out)
  | "func.call" -> (
      let callee =
        match Ir.attr_sym "callee" o with
        | Some c -> c
        | None -> fail "func.call: missing callee"
      in
      match env.modul with
      | None -> fail "func.call: no module in scope"
      | Some m -> (
          match Ir.find_func m callee with
          | None -> fail "func.call: @%s not found" callee
          | Some f ->
              p.calls <- p.calls + 1;
              let args = List.map (value env) o.operands in
              let rets = call_func env f args in
              List.iter2 (fun r v -> bind env r v) o.results rets))
  | "sec.classify" | "sec.taint" | "sec.check" | "sec.monitor" ->
      bind1 (value env (List.hd o.operands))
  | "sec.encrypt" | "sec.decrypt" -> (
      (* Semantically a keyed involution on the buffer: enough for the
         compiler tests; real ciphers live in everest_security. *)
      let v = value env (List.nth o.operands 0) in
      let key = value env (List.nth o.operands 1) in
      let k = match key with RInt i -> float_of_int i | RFloat f -> f | _ -> 1.0 in
      match v with
      | RBuf b ->
          p.crypto_bytes <- p.crypto_bytes + (8 * Array.length b.data);
          let f = if String.equal o.name "sec.encrypt" then (fun x -> (x *. 2.0) +. k)
                  else fun x -> (x -. k) /. 2.0 in
          bind1 (RBuf { b with data = Array.map f b.data })
      | RFloat f ->
          p.crypto_bytes <- p.crypto_bytes + 8;
          bind1 (RFloat (if String.equal o.name "sec.encrypt" then (f *. 2.0) +. k
                         else (f -. k) /. 2.0))
      | other -> bind1 other)
  | "sec.mac" ->
      let v = value env (List.hd o.operands) in
      let h = match v with
        | RBuf b -> Array.fold_left (fun acc x -> acc +. x) 0.0 b.data
        | RFloat f -> f
        | RInt i -> float_of_int i
        | RToken -> 0.0
      in
      bind1 (buf [ 32 ] (Array.make 32 h))
  | "df.barrier" | "hw.reconfig" -> bind1 RToken
  | name -> fail "interpreter: unsupported op %S" name

and call_func env (f : Ir.func) args =
  if List.length args <> List.length f.Ir.fargs then
    fail "call @%s: arity mismatch" f.Ir.fname;
  (* fresh frame sharing the profile and module *)
  let frame =
    { env with bindings = Hashtbl.create 64 }
  in
  List.iter2 (fun v a -> bind frame v a) f.Ir.fargs args;
  let rec go = function
    | [] -> []
    | [ (last : Ir.op) ] when String.equal last.name "func.return" ->
        List.map (value frame) last.operands
    | o :: rest -> eval_op frame o; go rest
  in
  go f.Ir.fbody

(* Run function [name] of module [m] on [args]. *)
let run_func ?max_steps ctx m name args =
  match Ir.find_func m name with
  | None -> fail "function @%s not found" name
  | Some f ->
      let env = make_env ?max_steps ~modul:m ctx in
      let rets = call_func env f args in
      (rets, env.profile)

let rt_equal ?(eps = 1e-9) a b =
  match (a, b) with
  | RInt x, RInt y -> x = y
  | RFloat x, RFloat y -> Float.abs (x -. y) <= eps *. (1.0 +. Float.abs x)
  | RBuf x, RBuf y ->
      x.shape = y.shape
      && Array.for_all2
           (fun a b -> Float.abs (a -. b) <= eps *. (1.0 +. Float.abs a))
           x.data y.data
  | RToken, RToken -> true
  | _ -> false
