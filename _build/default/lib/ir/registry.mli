(** One-stop registration of every built-in dialect.

    Call once before verifying or interpreting IR; repeated calls are
    no-ops. *)

val register_all : unit -> unit
