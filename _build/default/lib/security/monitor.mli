(** Runtime anomaly monitors and the auto-protection policy.

    "Dedicated hardware monitors will detect anomalies with respect to the
    expected data behaviors (timing patterns, access patterns, typical
    sizes and ranges), activating proper dynamic adaptation in the form of
    auto-protection" (paper §III-B).

    Each monitor learns a baseline during training and flags deviations;
    the policy maps fired monitors to protection actions. *)

type verdict = Normal | Anomalous of string

(** {2 Running statistics (Welford)} *)

type stats = { mutable n : int; mutable mean : float; mutable m2 : float }

val stats : unit -> stats
val observe : stats -> float -> unit
val variance : stats -> float
val stddev : stats -> float

(** {2 Timing monitor} — z-score against the trained distribution. *)

type timing_monitor

val timing : ?threshold_sigma:float -> unit -> timing_monitor
val timing_train : timing_monitor -> float -> unit
val timing_finalize : timing_monitor -> unit

(** Before finalization, samples train instead of checking. *)
val timing_check : timing_monitor -> float -> verdict

(** {2 Value-range monitor} — trained min/max with relative slack. *)

type range_monitor

val range : ?margin:float -> unit -> range_monitor
val range_train : range_monitor -> float -> unit
val range_finalize : range_monitor -> unit
val range_check : range_monitor -> float -> verdict

(** {2 Access-pattern monitor} — flags bursts of never-seen strides. *)

type access_monitor

val access : ?burst_threshold:int -> unit -> access_monitor
val access_train : access_monitor -> int -> unit
val access_finalize : access_monitor -> unit
val access_check : access_monitor -> int -> verdict

(** {2 Size monitor} — flags messages far above the typical size. *)

type size_monitor

val size : ?factor:float -> unit -> size_monitor
val size_train : size_monitor -> int -> unit
val size_finalize : size_monitor -> unit
val size_check : size_monitor -> int -> verdict

(** {2 Auto-protection policy} *)

type action =
  | Raise_alert
  | Enable_encryption
  | Quarantine_source
  | Switch_variant of string  (** Fall back to a hardened code variant. *)
  | Throttle of float

type event = { monitor : string; reason : string; severity : int }

val classify_event : string -> string -> event

(** Actions for an event, escalating with severity. *)
val policy : event -> action list

val pp_action : Format.formatter -> action -> unit
