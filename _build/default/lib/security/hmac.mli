(** HMAC-SHA256 (RFC 2104), the authentication primitive behind the
    [sec.mac] operation. *)

val block_size : int
val hmac_sha256 : key:Bytes.t -> Bytes.t -> Bytes.t
val hmac_hex : key:string -> string -> string

(** Constant-time tag verification. *)
val verify : key:Bytes.t -> msg:Bytes.t -> tag:Bytes.t -> bool
