(* Static information-flow tracking over the IR.

   Values carry confidentiality levels (the sec dialect lattice); this
   analysis propagates levels through a function body and reports flows
   where data of a higher level reaches a sink whose clearance is lower
   (df.sink, memref.store to a lower-level buffer, or an explicit
   sec.check).  [sec.encrypt] declassifies: ciphertext is Public. *)

open Everest_ir

type level = Dialect_sec.level

type flow_violation = {
  op_name : string;
  source_level : level;
  sink_level : level;
  detail : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "%s: %s data reaches %s sink (%s)" v.op_name
    (Dialect_sec.level_name v.source_level)
    (Dialect_sec.level_name v.sink_level)
    v.detail

let join (a : level) (b : level) = if Dialect_sec.level_leq a b then b else a

(* Level of a value: max over sources flowing into it. *)
let analyze_func ?(arg_levels = []) (f : Ir.func) : flow_violation list =
  let levels : (int, level) Hashtbl.t = Hashtbl.create 64 in
  let level_of (v : Ir.value) =
    Option.value ~default:Dialect_sec.Public (Hashtbl.find_opt levels v.Ir.vid)
  in
  List.iteri
    (fun i (v : Ir.value) ->
      match List.nth_opt arg_levels i with
      | Some l -> Hashtbl.replace levels v.Ir.vid l
      | None -> ())
    f.Ir.fargs;
  let violations = ref [] in
  let sink_clearance (o : Ir.op) =
    match Ir.attr_str "everest.security" o with
    | Some s -> Option.value ~default:Dialect_sec.Public (Dialect_sec.level_of_name s)
    | None -> Dialect_sec.Public
  in
  let rec walk ops =
    List.iter
      (fun (o : Ir.op) ->
        let in_level =
          List.fold_left (fun acc v -> join acc (level_of v)) Dialect_sec.Public
            o.Ir.operands
        in
        (match o.Ir.name with
        | "sec.classify" -> (
            match
              Option.bind (Ir.attr_str "level" o) Dialect_sec.level_of_name
            with
            | Some l ->
                List.iter
                  (fun (r : Ir.value) -> Hashtbl.replace levels r.Ir.vid (join l in_level))
                  o.Ir.results
            | None -> ())
        | "sec.encrypt" | "sec.mac" ->
            (* ciphertext / tags are public *)
            List.iter
              (fun (r : Ir.value) ->
                Hashtbl.replace levels r.Ir.vid Dialect_sec.Public)
              o.Ir.results
        | "sec.decrypt" ->
            List.iter
              (fun (r : Ir.value) ->
                Hashtbl.replace levels r.Ir.vid Dialect_sec.Confidential)
              o.Ir.results
        | "df.sink" ->
            let clearance = sink_clearance o in
            if not (Dialect_sec.level_leq in_level clearance) then
              violations :=
                { op_name = o.Ir.name; source_level = in_level;
                  sink_level = clearance;
                  detail =
                    Option.value ~default:"?" (Ir.attr_str "name" o) }
                :: !violations
        | "memref.store" ->
            let dst = List.nth o.Ir.operands 1 in
            let clearance = level_of dst in
            let data_level = level_of (List.hd o.Ir.operands) in
            if not (Dialect_sec.level_leq data_level (join clearance Dialect_sec.Internal))
               && clearance = Dialect_sec.Public
            then
              violations :=
                { op_name = o.Ir.name; source_level = data_level;
                  sink_level = clearance; detail = "store to public buffer" }
                :: !violations;
            List.iter
              (fun (r : Ir.value) -> Hashtbl.replace levels r.Ir.vid in_level)
              o.Ir.results
        | _ ->
            List.iter
              (fun (r : Ir.value) -> Hashtbl.replace levels r.Ir.vid in_level)
              o.Ir.results);
        List.iter
          (fun region ->
            List.iter
              (fun (b : Ir.block) ->
                (* block args inherit the op input level *)
                List.iter
                  (fun (v : Ir.value) -> Hashtbl.replace levels v.Ir.vid in_level)
                  b.Ir.bargs;
                walk b.Ir.body)
              region)
          o.Ir.regions)
      ops
  in
  walk f.Ir.fbody;
  List.rev !violations

let analyze_module ?arg_levels (m : Ir.modul) =
  List.concat_map
    (fun f -> List.map (fun v -> (f.Ir.fname, v)) (analyze_func ?arg_levels f))
    m.Ir.funcs
