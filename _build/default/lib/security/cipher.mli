(** Authenticated encryption: AES-128-CTR with encrypt-then-HMAC.

    The software reference of the cryptographic routine library (§III-B);
    hardware variants of the same routines are modeled by the HLS
    estimator. *)

type keys

(** Derive encryption and MAC keys from a master secret. *)
val derive_keys : string -> keys

type sealed = { nonce : Bytes.t; ct : Bytes.t; tag : Bytes.t }

(** Encrypt-then-MAC with a fresh nonce. *)
val seal : keys -> Bytes.t -> sealed

type open_error = Bad_tag

(** Verify then decrypt. *)
val open_ : keys -> sealed -> (Bytes.t, open_error) result

(** {2 Cost model} — cycles per byte used by compiler/runtime decisions. *)

val sw_cycles_per_byte : float
val hw_cycles_per_byte : float
val encryption_time_s : bytes:int -> accelerated:bool -> clock_hz:float -> float
