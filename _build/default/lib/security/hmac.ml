(* HMAC-SHA256 (RFC 2104), the authentication primitive of the sec.mac op. *)

let block_size = 64

let hmac_sha256 ~(key : Bytes.t) (msg : Bytes.t) : Bytes.t =
  let key =
    if Bytes.length key > block_size then Sha256.digest_bytes key else key
  in
  let k0 = Bytes.make block_size '\000' in
  Bytes.blit key 0 k0 0 (Bytes.length key);
  let xor_pad pad =
    Bytes.init block_size (fun i ->
        Char.chr (Char.code (Bytes.get k0 i) lxor pad))
  in
  let ipad = xor_pad 0x36 and opad = xor_pad 0x5c in
  let inner = Sha256.digest_bytes (Bytes.cat ipad msg) in
  Sha256.digest_bytes (Bytes.cat opad inner)

let hmac_hex ~key msg =
  Aes.to_hex (hmac_sha256 ~key:(Bytes.of_string key) (Bytes.of_string msg))

let verify ~key ~msg ~(tag : Bytes.t) =
  let expect = hmac_sha256 ~key msg in
  (* constant-time comparison *)
  Bytes.length tag = Bytes.length expect
  &&
  let acc = ref 0 in
  Bytes.iteri
    (fun i c -> acc := !acc lor (Char.code c lxor Char.code (Bytes.get expect i)))
    tag;
  !acc = 0
