(** SHA-256 (FIPS 180-4), used for integrity/authentication of data moving
    between EVEREST nodes.  Verified against the standard test vectors. *)

val digest_bytes : Bytes.t -> Bytes.t
val digest_string : string -> Bytes.t
val hex_of_bytes : Bytes.t -> string

(** Hex digest of a string. *)
val digest_hex : string -> string
