(* Runtime anomaly monitors and the auto-protection policy.

   "Dedicated hardware monitors will detect anomalies with respect to the
   expected data behaviors (timing patterns, access patterns, typical sizes
   and ranges), activating proper dynamic adaptation in the form of
   auto-protection" (paper §III-B).

   Each monitor learns a baseline during a training phase and then flags
   observations that deviate.  The policy maps fired monitors to protection
   actions the runtime executes. *)

type verdict = Normal | Anomalous of string

(* ---- Welford running statistics -------------------------------------------- *)

type stats = { mutable n : int; mutable mean : float; mutable m2 : float }

let stats () = { n = 0; mean = 0.0; m2 = 0.0 }

let observe s x =
  s.n <- s.n + 1;
  let d = x -. s.mean in
  s.mean <- s.mean +. (d /. float_of_int s.n);
  s.m2 <- s.m2 +. (d *. (x -. s.mean))

let variance s = if s.n < 2 then 0.0 else s.m2 /. float_of_int (s.n - 1)
let stddev s = sqrt (variance s)

(* ---- timing monitor ---------------------------------------------------------- *)

type timing_monitor = {
  t_stats : stats;
  t_threshold_sigma : float;
  mutable t_trained : bool;
}

let timing ?(threshold_sigma = 4.0) () =
  { t_stats = stats (); t_threshold_sigma = threshold_sigma; t_trained = false }

let timing_train m sample = observe m.t_stats sample

let timing_finalize m = m.t_trained <- true

let timing_check m sample =
  if not m.t_trained then (timing_train m sample; Normal)
  else
    let sd = stddev m.t_stats in
    let sd = if sd <= 0.0 then Float.max 1e-9 (0.05 *. Float.abs m.t_stats.mean) else sd in
    let z = Float.abs (sample -. m.t_stats.mean) /. sd in
    if z > m.t_threshold_sigma then
      Anomalous (Printf.sprintf "timing z=%.1f (mean %.3g, sd %.3g)" z m.t_stats.mean sd)
    else Normal

(* ---- value-range monitor ------------------------------------------------------ *)

type range_monitor = {
  mutable lo : float;
  mutable hi : float;
  margin : float;  (* relative slack added around the trained range *)
  mutable r_trained : bool;
}

let range ?(margin = 0.10) () =
  { lo = infinity; hi = neg_infinity; margin; r_trained = false }

let range_train m x =
  if x < m.lo then m.lo <- x;
  if x > m.hi then m.hi <- x

let range_finalize m = m.r_trained <- true

let range_check m x =
  if not m.r_trained then (range_train m x; Normal)
  else
    let span = Float.max 1e-12 (m.hi -. m.lo) in
    let lo = m.lo -. (m.margin *. span) and hi = m.hi +. (m.margin *. span) in
    if x < lo || x > hi then
      Anomalous (Printf.sprintf "value %.3g outside [%.3g, %.3g]" x lo hi)
    else Normal

(* ---- access-pattern monitor ----------------------------------------------------- *)

(* Learns the distribution of address strides; flags bursts of strides never
   seen in training (e.g. a scanning attack or buffer overflow sweep). *)
type access_monitor = {
  known_strides : (int, int) Hashtbl.t;
  burst_threshold : int;
  mutable last_addr : int option;
  mutable novel_run : int;
  mutable a_trained : bool;
}

let access ?(burst_threshold = 8) () =
  { known_strides = Hashtbl.create 16; burst_threshold; last_addr = None;
    novel_run = 0; a_trained = false }

let access_observe m addr =
  let stride = match m.last_addr with Some a -> addr - a | None -> 0 in
  m.last_addr <- Some addr;
  stride

let access_train m addr =
  let s = access_observe m addr in
  Hashtbl.replace m.known_strides s
    (1 + Option.value ~default:0 (Hashtbl.find_opt m.known_strides s))

let access_finalize m =
  m.a_trained <- true;
  m.last_addr <- None

let access_check m addr =
  if not m.a_trained then (access_train m addr; Normal)
  else begin
    let s = access_observe m addr in
    if Hashtbl.mem m.known_strides s then begin
      m.novel_run <- 0;
      Normal
    end
    else begin
      m.novel_run <- m.novel_run + 1;
      if m.novel_run >= m.burst_threshold then
        Anomalous (Printf.sprintf "burst of %d novel strides (last %d)" m.novel_run s)
      else Normal
    end
  end

(* ---- size monitor ----------------------------------------------------------------- *)

type size_monitor = { s_stats : stats; factor : float; mutable s_trained : bool }

let size ?(factor = 3.0) () = { s_stats = stats (); factor; s_trained = false }
let size_train m b = observe m.s_stats (float_of_int b)
let size_finalize m = m.s_trained <- true

let size_check m b =
  if not m.s_trained then (size_train m b; Normal)
  else
    let x = float_of_int b in
    if x > m.s_stats.mean *. m.factor && x > m.s_stats.mean +. 1.0 then
      Anomalous (Printf.sprintf "size %d >> typical %.0f" b m.s_stats.mean)
    else Normal

(* ---- auto-protection policy --------------------------------------------------------- *)

type action =
  | Raise_alert
  | Enable_encryption
  | Quarantine_source  (* stop accepting data from the stream *)
  | Switch_variant of string  (* fall back to a hardened code variant *)
  | Throttle of float  (* admission rate limit *)

type event = { monitor : string; reason : string; severity : int }

let classify_event (monitor : string) reason =
  let severity =
    match monitor with
    | "access" -> 3  (* pattern scanning: likely an attack *)
    | "timing" -> 2  (* possible side-channel probe or contention *)
    | "range" -> 2
    | _ -> 1
  in
  { monitor; reason; severity }

let policy (e : event) : action list =
  match e.severity with
  | s when s >= 3 -> [ Raise_alert; Quarantine_source; Switch_variant "hardened" ]
  | 2 -> [ Raise_alert; Enable_encryption ]
  | _ -> [ Raise_alert; Throttle 0.5 ]

let pp_action ppf = function
  | Raise_alert -> Fmt.string ppf "alert"
  | Enable_encryption -> Fmt.string ppf "enable-encryption"
  | Quarantine_source -> Fmt.string ppf "quarantine"
  | Switch_variant v -> Fmt.pf ppf "switch-variant<%s>" v
  | Throttle f -> Fmt.pf ppf "throttle<%.2f>" f
