(* AES-128 block cipher (FIPS-197).

   The EVEREST library of "optimized accelerators for memory and near-memory
   encryption" needs a real cipher underneath: this is a straightforward
   table-based software implementation whose correctness is checked against
   the FIPS-197 known-answer vectors in the test suite.  The HLS flow models
   its accelerated counterpart. *)

let sbox =
  [| 0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b;
     0xfe; 0xd7; 0xab; 0x76; 0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0;
     0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0; 0xb7; 0xfd; 0x93; 0x26;
     0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
     0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2;
     0xeb; 0x27; 0xb2; 0x75; 0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0;
     0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84; 0x53; 0xd1; 0x00; 0xed;
     0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
     0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f;
     0x50; 0x3c; 0x9f; 0xa8; 0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5;
     0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2; 0xcd; 0x0c; 0x13; 0xec;
     0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
     0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14;
     0xde; 0x5e; 0x0b; 0xdb; 0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c;
     0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79; 0xe7; 0xc8; 0x37; 0x6d;
     0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
     0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f;
     0x4b; 0xbd; 0x8b; 0x8a; 0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e;
     0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e; 0xe1; 0xf8; 0x98; 0x11;
     0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
     0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f;
     0xb0; 0x54; 0xbb; 0x16 |]

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2 land 0xff

(* GF(2^8) multiplication. *)
let gmul a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      go (xtime a) (b lsr 1) (if b land 1 = 1 then acc lxor a else acc)
  in
  go a b 0

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

(* Key expansion: 16-byte key -> 11 round keys of 16 bytes each. *)
let expand_key (key : Bytes.t) =
  if Bytes.length key <> 16 then invalid_arg "aes: key must be 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code (Bytes.get key (4 * i)) lsl 24)
      lor (Char.code (Bytes.get key ((4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get key ((4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get key ((4 * i) + 3))
  done;
  for i = 4 to 43 do
    let temp = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then
        let rot = ((temp lsl 8) lor (temp lsr 24)) land 0xffffffff in
        let sub =
          (sbox.((rot lsr 24) land 0xff) lsl 24)
          lor (sbox.((rot lsr 16) land 0xff) lsl 16)
          lor (sbox.((rot lsr 8) land 0xff) lsl 8)
          lor sbox.(rot land 0xff)
        in
        sub lxor (rcon.((i / 4) - 1) lsl 24)
      else temp
    in
    w.(i) <- w.(i - 4) lxor temp
  done;
  w

let add_round_key state w round =
  for c = 0 to 3 do
    let word = w.((round * 4) + c) in
    state.((4 * c) + 0) <- state.((4 * c) + 0) lxor ((word lsr 24) land 0xff);
    state.((4 * c) + 1) <- state.((4 * c) + 1) lxor ((word lsr 16) land 0xff);
    state.((4 * c) + 2) <- state.((4 * c) + 2) lxor ((word lsr 8) land 0xff);
    state.((4 * c) + 3) <- state.((4 * c) + 3) lxor (word land 0xff)
  done

(* state layout: state.(4*col + row) *)
let sub_bytes state = Array.iteri (fun i v -> state.(i) <- sbox.(v)) state
let inv_sub_bytes state = Array.iteri (fun i v -> state.(i) <- inv_sbox.(v)) state

let shift_rows state =
  for r = 1 to 3 do
    let row = Array.init 4 (fun c -> state.((4 * c) + r)) in
    for c = 0 to 3 do
      state.((4 * c) + r) <- row.((c + r) mod 4)
    done
  done

let inv_shift_rows state =
  for r = 1 to 3 do
    let row = Array.init 4 (fun c -> state.((4 * c) + r)) in
    for c = 0 to 3 do
      state.((4 * c) + r) <- row.(((c - r) + 4) mod 4)
    done
  done

let mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) in
    let a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    state.((4 * c) + 1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    state.((4 * c) + 2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    state.((4 * c) + 3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) in
    let a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    state.((4 * c) + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    state.((4 * c) + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    state.((4 * c) + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

type key = int array  (* expanded key schedule *)

let key_of_bytes = expand_key
let key_of_string s = expand_key (Bytes.of_string s)

let encrypt_block (w : key) (input : Bytes.t) : Bytes.t =
  if Bytes.length input <> 16 then invalid_arg "aes: block must be 16 bytes";
  let state = Array.init 16 (fun i -> Char.code (Bytes.get input i)) in
  add_round_key state w 0;
  for round = 1 to 9 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state w round
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state w 10;
  Bytes.init 16 (fun i -> Char.chr state.(i))

let decrypt_block (w : key) (input : Bytes.t) : Bytes.t =
  if Bytes.length input <> 16 then invalid_arg "aes: block must be 16 bytes";
  let state = Array.init 16 (fun i -> Char.code (Bytes.get input i)) in
  add_round_key state w 10;
  for round = 9 downto 1 do
    inv_shift_rows state;
    inv_sub_bytes state;
    add_round_key state w round;
    inv_mix_columns state
  done;
  inv_shift_rows state;
  inv_sub_bytes state;
  add_round_key state w 0;
  Bytes.init 16 (fun i -> Char.chr state.(i))

(* CTR mode: stream cipher usable for arbitrary-length buffers; encryption
   and decryption are the same operation. *)
let ctr_transform (w : key) ~(nonce : Bytes.t) (data : Bytes.t) : Bytes.t =
  if Bytes.length nonce <> 8 then invalid_arg "aes-ctr: nonce must be 8 bytes";
  let out = Bytes.copy data in
  let n = Bytes.length data in
  let counter_block i =
    let b = Bytes.make 16 '\000' in
    Bytes.blit nonce 0 b 0 8;
    let c = ref i in
    for k = 15 downto 8 do
      Bytes.set b k (Char.chr (!c land 0xff));
      c := !c lsr 8
    done;
    b
  in
  let nblocks = (n + 15) / 16 in
  for i = 0 to nblocks - 1 do
    let ks = encrypt_block w (counter_block i) in
    let base = i * 16 in
    for j = 0 to min 15 (n - base - 1) do
      Bytes.set out (base + j)
        (Char.chr
           (Char.code (Bytes.get data (base + j))
           lxor Char.code (Bytes.get ks j)))
    done
  done;
  out

let to_hex (b : Bytes.t) =
  String.concat ""
    (List.init (Bytes.length b) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let of_hex (s : string) =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
