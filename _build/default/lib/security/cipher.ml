(* Authenticated encryption: AES-128-CTR with encrypt-then-HMAC.

   This is the software reference of the "library of cryptographic functions
   to ensure data integrity, confidentiality and authentication" (paper
   §III-B); hardware variants of the same routines are modeled by the HLS
   estimator. *)

type keys = { enc : Aes.key; mac : Bytes.t }

let derive_keys (master : string) : keys =
  let h = Sha256.digest_string master in
  let enc_bytes = Bytes.sub h 0 16 in
  let mac_key = Sha256.digest_bytes (Bytes.cat h (Bytes.of_string "mac")) in
  { enc = Aes.key_of_bytes enc_bytes; mac = mac_key }

type sealed = { nonce : Bytes.t; ct : Bytes.t; tag : Bytes.t }

let nonce_counter = ref 0

let fresh_nonce () =
  incr nonce_counter;
  let b = Bytes.make 8 '\000' in
  let c = ref !nonce_counter in
  for i = 7 downto 0 do
    Bytes.set b i (Char.chr (!c land 0xff));
    c := !c lsr 8
  done;
  b

let seal (k : keys) (plaintext : Bytes.t) : sealed =
  let nonce = fresh_nonce () in
  let ct = Aes.ctr_transform k.enc ~nonce plaintext in
  let tag = Hmac.hmac_sha256 ~key:k.mac (Bytes.cat nonce ct) in
  { nonce; ct; tag }

type open_error = Bad_tag

let open_ (k : keys) (s : sealed) : (Bytes.t, open_error) result =
  if Hmac.verify ~key:k.mac ~msg:(Bytes.cat s.nonce s.ct) ~tag:s.tag then
    Ok (Aes.ctr_transform k.enc ~nonce:s.nonce s.ct)
  else Error Bad_tag

(* Cost model used by the compiler/runtime when deciding whether to encrypt
   on a boundary: cycles per byte for SW and for the HLS-accelerated
   pipeline (AES rounds unrolled, II=1 on 16-byte blocks). *)
let sw_cycles_per_byte = 22.0
let hw_cycles_per_byte = 0.75

let encryption_time_s ~bytes ~accelerated ~clock_hz =
  let cpb = if accelerated then hw_cycles_per_byte else sw_cycles_per_byte in
  float_of_int bytes *. cpb /. clock_hz
