(** AES-128 block cipher (FIPS-197) and CTR mode.

    The software reference under the EVEREST "library of optimized
    accelerators for memory and near-memory encryption"; correctness is
    checked against the FIPS-197 / SP800-38A known-answer vectors in the
    test suite.  The HLS flow models its accelerated counterpart. *)

(** Expanded key schedule. *)
type key

(** @raise Invalid_argument unless the key is 16 bytes. *)
val key_of_bytes : Bytes.t -> key

val key_of_string : string -> key

(** @raise Invalid_argument unless the block is 16 bytes. *)
val encrypt_block : key -> Bytes.t -> Bytes.t

val decrypt_block : key -> Bytes.t -> Bytes.t

(** CTR keystream transform over arbitrary-length data: encryption and
    decryption are the same operation.
    @raise Invalid_argument unless the nonce is 8 bytes. *)
val ctr_transform : key -> nonce:Bytes.t -> Bytes.t -> Bytes.t

(** GF(2^8) multiplication (exposed for tests). *)
val gmul : int -> int -> int

val to_hex : Bytes.t -> string
val of_hex : string -> Bytes.t
