lib/security/aes.ml: Array Bytes Char List Printf String
