lib/security/aes.mli: Bytes
