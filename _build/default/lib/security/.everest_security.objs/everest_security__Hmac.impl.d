lib/security/hmac.ml: Aes Bytes Char Sha256
