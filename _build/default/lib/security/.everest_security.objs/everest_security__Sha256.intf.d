lib/security/sha256.mli: Bytes
