lib/security/ift.ml: Dialect_sec Everest_ir Fmt Hashtbl Ir List Option
