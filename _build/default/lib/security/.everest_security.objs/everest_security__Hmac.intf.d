lib/security/hmac.mli: Bytes
