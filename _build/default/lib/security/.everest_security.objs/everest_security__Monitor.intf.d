lib/security/monitor.mli: Format
