lib/security/cipher.ml: Aes Bytes Char Hmac Sha256
