lib/security/sha256.ml: Aes Array Bytes Char
