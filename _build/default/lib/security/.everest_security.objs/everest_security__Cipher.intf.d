lib/security/cipher.mli: Bytes
