lib/security/ift.mli: Everest_ir Format
