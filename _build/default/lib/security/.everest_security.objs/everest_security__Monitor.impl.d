lib/security/monitor.ml: Float Fmt Hashtbl Option Printf
