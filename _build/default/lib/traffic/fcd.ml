(* Floating car data: vehicles traverse routes through the simulated city
   and report (link, speed) roughly every 5 seconds — the Sygic-style data
   feed of §VI-C. *)

open Everest_ml

type ping = {
  vehicle : int;
  time_s : float;
  link : int;
  speed_ms : float;
}

(* Generate pings for [n_vehicles] random O/D trips departing uniformly over
   [periods] hours. *)
let generate ?(seed = 31) ?(report_every_s = 5.0) (st : Simulator.state)
    ~n_vehicles : ping list =
  let rng = Rng.create seed in
  let net = st.Simulator.net in
  let pings = ref [] in
  for v = 0 to n_vehicles - 1 do
    let src = Rng.int rng net.Roadnet.n_nodes in
    let dst = Rng.int rng net.Roadnet.n_nodes in
    if src <> dst then begin
      let depart_hour = Rng.int rng st.Simulator.periods in
      let depart = float_of_int depart_hour *. 3600.0 in
      let cost (l : Roadnet.link) =
        Simulator.travel_time st ~period:depart_hour ~link:l.Roadnet.link_id
      in
      match Routing.shortest net ~cost ~src ~dst with
      | None -> ()
      | Some p ->
          let t = ref depart in
          List.iter
            (fun lid ->
              let period = int_of_float (!t /. 3600.0) mod st.Simulator.periods in
              let true_speed = Simulator.speed st ~period ~link:lid in
              let dt = (Roadnet.link net lid).Roadnet.length_m /. true_speed in
              (* emit pings along the link *)
              let k = max 1 (int_of_float (dt /. report_every_s)) in
              for i = 0 to k - 1 do
                let noisy =
                  Float.max 0.5 (true_speed +. Rng.gaussian ~sigma:1.0 rng)
                in
                pings :=
                  { vehicle = v;
                    time_s = !t +. (float_of_int i *. report_every_s);
                    link = lid; speed_ms = noisy }
                  :: !pings
              done;
              t := !t +. dt)
            p.Routing.links
    end
  done;
  List.rev !pings

let count = List.length

let bytes_per_ping = 24  (* id + timestamp + position + speed *)

let total_bytes pings = bytes_per_ping * count pings
