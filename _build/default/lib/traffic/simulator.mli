(** Mesoscopic traffic simulator (§VI-C: "combining both macro and
    microscopic approaches").

    Per period (hour), demand routes on current travel times, link volumes
    accumulate, and BPR volume-delay updates speeds; a few successive-
    averages iterations approximate user equilibrium.  The output — per-
    link per-period speeds — is the "traffic model" consumed by prediction
    and routing. *)

type state = {
  net : Roadnet.t;
  periods : int;
  speeds : float array array;  (** Period -> link -> speed (m/s). *)
  volumes : float array array;  (** Period -> link -> volume (vph). *)
}

val free_flow_state : Roadnet.t -> periods:int -> state

(** All-or-nothing assignment of one period's demand at given speeds. *)
val assign_period : Roadnet.t -> Od.t -> hour:int -> speeds:float array -> float array

(** Run [periods] hours with [relaxations] equilibrium iterations each. *)
val run : ?relaxations:int -> Roadnet.t -> Od.t -> periods:int -> state

val speed : state -> period:int -> link:int -> float
val travel_time : state -> period:int -> link:int -> float
val mean_network_speed : state -> period:int -> float

(** Fraction of links below half their free speed. *)
val congested_fraction : state -> period:int -> float
