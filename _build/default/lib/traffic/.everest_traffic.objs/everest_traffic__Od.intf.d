lib/traffic/od.mli:
