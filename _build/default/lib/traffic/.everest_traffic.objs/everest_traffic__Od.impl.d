lib/traffic/od.ml: Array Everest_ml Rng
