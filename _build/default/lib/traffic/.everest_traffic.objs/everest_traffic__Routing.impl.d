lib/traffic/routing.ml: Array List Roadnet
