lib/traffic/predictor.mli: Roadnet Simulator
