lib/traffic/ptdr.ml: Array Everest_ml Hashtbl List Metrics Option Profiles Rng Roadnet Routing
