lib/traffic/simulator.ml: Array List Od Roadnet Routing
