lib/traffic/profiles.mli: Everest_ml Fcd Roadnet Simulator
