lib/traffic/simulator.mli: Od Roadnet
