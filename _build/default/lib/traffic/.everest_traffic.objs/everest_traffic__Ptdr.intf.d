lib/traffic/ptdr.mli: Everest_ml Profiles Roadnet Routing
