lib/traffic/fcd.ml: Everest_ml Float List Rng Roadnet Routing Simulator
