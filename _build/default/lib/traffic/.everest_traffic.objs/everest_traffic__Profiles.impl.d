lib/traffic/profiles.ml: Array Everest_ml Fcd Float List Rng Roadnet Simulator
