lib/traffic/roadnet.ml: Array List
