lib/traffic/predictor.ml: Array Dataset Everest_ml Float List Metrics Mlp Roadnet Simulator
