lib/traffic/fcd.mli: Simulator
