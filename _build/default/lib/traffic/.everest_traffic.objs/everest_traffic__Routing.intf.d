lib/traffic/routing.mli: Roadnet
