lib/traffic/roadnet.mli:
