(** Probabilistic time-dependent routing (paper refs [37][41]): Monte-Carlo
    sampling of link speeds from the learned profiles yields a travel-time
    distribution per route, from which reliability percentiles and
    risk-averse route choice follow.  This is the kernel EVEREST
    accelerates server-side for millions of navigation clients. *)

type distribution = {
  samples : float array;  (** Travel times (s). *)
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> distribution

(** One Monte-Carlo rollout of a route departing at [depart]; returns the
    trip duration. *)
val rollout :
  Everest_ml.Rng.t -> Roadnet.t -> Profiles.t -> int list -> depart:float -> float

val monte_carlo :
  ?seed:int ->
  Roadnet.t ->
  Profiles.t ->
  Routing.path ->
  depart:float ->
  n_samples:int ->
  distribution

(** Among candidate routes, the one with the best [quantile] travel time. *)
val reliable_route :
  ?seed:int ->
  ?n_samples:int ->
  ?quantile:float ->
  Roadnet.t ->
  Profiles.t ->
  Routing.path list ->
  depart:float ->
  (Routing.path * float) option

(** (samples, mean, 95% CI half-width) per requested sample count. *)
val convergence :
  ?seed:int ->
  Roadnet.t ->
  Profiles.t ->
  Routing.path ->
  depart:float ->
  sample_counts:int list ->
  (int * float * float) list

(** Up to [k] alternative routes by iterative link penalization. *)
val alternatives :
  ?k:int -> Roadnet.t -> Profiles.t -> src:int -> dst:int -> period:int ->
  Routing.path list

val flops_per_sample : Routing.path -> int
