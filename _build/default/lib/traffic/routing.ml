(* Shortest-path routing: static Dijkstra and time-dependent Dijkstra over
   per-period link costs. *)

type path = { nodes : int list; links : int list; cost : float }

module Pq = struct
  (* simple binary heap of (cost, node) *)
  type t = { mutable a : (float * int) array; mutable n : int }

  let create () = { a = Array.make 64 (0.0, 0); n = 0 }

  let push q x =
    if q.n = Array.length q.a then begin
      let b = Array.make (2 * q.n) (0.0, 0) in
      Array.blit q.a 0 b 0 q.n;
      q.a <- b
    end;
    q.a.(q.n) <- x;
    q.n <- q.n + 1;
    let i = ref (q.n - 1) in
    while !i > 0 && fst q.a.((!i - 1) / 2) > fst q.a.(!i) do
      let p = (!i - 1) / 2 in
      let t = q.a.(p) in
      q.a.(p) <- q.a.(!i);
      q.a.(!i) <- t;
      i := p
    done

  let pop q =
    if q.n = 0 then None
    else begin
      let top = q.a.(0) in
      q.n <- q.n - 1;
      q.a.(0) <- q.a.(q.n);
      let i = ref 0 in
      let break = ref false in
      while not !break do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < q.n && fst q.a.(l) < fst q.a.(!m) then m := l;
        if r < q.n && fst q.a.(r) < fst q.a.(!m) then m := r;
        if !m = !i then break := true
        else begin
          let t = q.a.(!m) in
          q.a.(!m) <- q.a.(!i);
          q.a.(!i) <- t;
          i := !m
        end
      done;
      Some top
    end
end

(* Dijkstra with a per-link cost function; returns None if unreachable. *)
let shortest (g : Roadnet.t) ~cost ~src ~dst : path option =
  let dist = Array.make g.Roadnet.n_nodes infinity in
  let pred = Array.make g.Roadnet.n_nodes (-1) in
  (* pred link id *)
  let q = Pq.create () in
  dist.(src) <- 0.0;
  Pq.push q (0.0, src);
  let finished = ref false in
  while not !finished do
    match Pq.pop q with
    | None -> finished := true
    | Some (d, u) ->
        if u = dst then finished := true
        else if d <= dist.(u) then
          List.iter
            (fun lid ->
              let l = Roadnet.link g lid in
              let c = cost l in
              if dist.(u) +. c < dist.(l.Roadnet.dst) then begin
                dist.(l.Roadnet.dst) <- dist.(u) +. c;
                pred.(l.Roadnet.dst) <- lid;
                Pq.push q (dist.(l.Roadnet.dst), l.Roadnet.dst)
              end)
            g.Roadnet.out_links.(u)
  done;
  if dist.(dst) = infinity then None
  else begin
    let rec walk n acc_nodes acc_links =
      if n = src then (src :: acc_nodes, acc_links)
      else
        let lid = pred.(n) in
        let l = Roadnet.link g lid in
        walk l.Roadnet.src (n :: acc_nodes) (lid :: acc_links)
    in
    let nodes, links = walk dst [] [] in
    Some { nodes; links; cost = dist.(dst) }
  end

let free_flow (g : Roadnet.t) ~src ~dst =
  shortest g ~cost:Roadnet.free_flow_time ~src ~dst

(* Time-dependent shortest path: [period_of t] maps departure time to a
   period index; [cost period l] gives the link traversal time. *)
let time_dependent (g : Roadnet.t) ~period_of ~cost ~src ~dst ~depart :
    path option =
  let dist = Array.make g.Roadnet.n_nodes infinity in
  let pred = Array.make g.Roadnet.n_nodes (-1) in
  let q = Pq.create () in
  dist.(src) <- depart;
  Pq.push q (depart, src);
  let finished = ref false in
  while not !finished do
    match Pq.pop q with
    | None -> finished := true
    | Some (d, u) ->
        if u = dst then finished := true
        else if d <= dist.(u) then
          List.iter
            (fun lid ->
              let l = Roadnet.link g lid in
              let c = cost (period_of dist.(u)) l in
              if dist.(u) +. c < dist.(l.Roadnet.dst) then begin
                dist.(l.Roadnet.dst) <- dist.(u) +. c;
                pred.(l.Roadnet.dst) <- lid;
                Pq.push q (dist.(l.Roadnet.dst), l.Roadnet.dst)
              end)
            g.Roadnet.out_links.(u)
  done;
  if dist.(dst) = infinity then None
  else begin
    let rec walk n acc_nodes acc_links =
      if n = src then (src :: acc_nodes, acc_links)
      else
        let lid = pred.(n) in
        let l = Roadnet.link g lid in
        walk l.Roadnet.src (n :: acc_nodes) (lid :: acc_links)
    in
    let nodes, links = walk dst [] [] in
    Some { nodes; links; cost = dist.(dst) -. depart }
  end
