(** Floating car data: vehicles traverse routes through the simulated city
    and report (link, speed) roughly every 5 seconds — the navigation-
    device data feed of §VI-C. *)

type ping = { vehicle : int; time_s : float; link : int; speed_ms : float }

(** Pings for [n_vehicles] random O/D trips departing uniformly over the
    simulated periods; speeds carry measurement noise. *)
val generate :
  ?seed:int -> ?report_every_s:float -> Simulator.state -> n_vehicles:int -> ping list

val count : ping list -> int
val bytes_per_ping : int
val total_bytes : ping list -> int
