(** The traffic prediction model of §VI-C: an MLP learning per-link
    next-period speeds from calendar features, link characteristics and the
    current speed; baselines are free-flow speed and persistence. *)

type t

(** Feature vector for one (link, period) with the previous-period speed. *)
val features :
  Roadnet.t -> link:int -> period:int -> prev_speed:float -> float array

(** (inputs, targets) over [from_period, to_period): predict period p+1
    from period p. *)
val samples :
  Simulator.state -> from_period:int -> to_period:int ->
  float array array * float array array

(** Train on the first [train_periods] of the simulated state. *)
val train : ?epochs:int -> Simulator.state -> train_periods:int -> t

val predict : t -> Roadnet.t -> link:int -> period:int -> prev_speed:float -> float

type eval = { model_rmse : float; persistence_rmse : float; freeflow_rmse : float }

(** Next-period prediction error over the held-out window. *)
val evaluate : t -> Simulator.state -> from_period:int -> to_period:int -> eval
