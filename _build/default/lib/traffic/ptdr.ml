(* Probabilistic time-dependent routing (paper refs [37][41]): Monte Carlo
   sampling of link speeds from the learned profiles yields a travel-time
   *distribution* for a route, from which departure-time advice and
   reliability percentiles follow.  This is the kernel EVEREST accelerates
   server-side for millions of navigation clients. *)

open Everest_ml

type distribution = {
  samples : float array;  (* travel times in seconds *)
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize samples =
  {
    samples;
    mean = Metrics.mean samples;
    p50 = Metrics.percentile samples 0.50;
    p90 = Metrics.percentile samples 0.90;
    p99 = Metrics.percentile samples 0.99;
  }

(* One Monte Carlo rollout of the route departing at [depart]. *)
let rollout rng (net : Roadnet.t) (prof : Profiles.t) (links : int list)
    ~depart =
  List.fold_left
    (fun t lid ->
      let period = int_of_float (t /. 3600.0) in
      let sp = Profiles.sample_speed rng prof ~link:lid ~period in
      t +. ((Roadnet.link net lid).Roadnet.length_m /. sp))
    depart links
  |> fun arrive -> arrive -. depart

let monte_carlo ?(seed = 51) (net : Roadnet.t) (prof : Profiles.t)
    (route : Routing.path) ~depart ~n_samples : distribution =
  let rng = Rng.create seed in
  let samples =
    Array.init n_samples (fun _ ->
        rollout rng net prof route.Routing.links ~depart)
  in
  summarize samples

(* Route choice under reliability: among candidate routes, pick the one with
   the best [quantile] travel time (risk-averse routing). *)
let reliable_route ?(seed = 52) ?(n_samples = 200) ?(quantile = 0.9)
    (net : Roadnet.t) (prof : Profiles.t) (routes : Routing.path list) ~depart
    =
  let scored =
    List.map
      (fun r ->
        let d = monte_carlo ~seed net prof r ~depart ~n_samples in
        (r, Metrics.percentile d.samples quantile))
      routes
  in
  List.fold_left
    (fun best (r, q) ->
      match best with
      | Some (_, bq) when bq <= q -> best
      | _ -> Some (r, q))
    None scored

(* Convergence study: half-width of the mean's 95% CI versus sample count. *)
let convergence ?(seed = 53) (net : Roadnet.t) (prof : Profiles.t)
    (route : Routing.path) ~depart ~sample_counts =
  List.map
    (fun n ->
      let d = monte_carlo ~seed net prof route ~depart ~n_samples:n in
      let sd = Metrics.stddev d.samples in
      (n, d.mean, 1.96 *. sd /. sqrt (float_of_int n)))
    sample_counts

(* Alternative routes: k shortest-ish by penalizing used links. *)
let alternatives ?(k = 3) (net : Roadnet.t) (prof : Profiles.t) ~src ~dst
    ~period =
  let penalties : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let cost (l : Roadnet.link) =
    let base =
      l.Roadnet.length_m /. Profiles.mean_speed prof ~link:l.Roadnet.link_id ~period
    in
    base *. Option.value ~default:1.0 (Hashtbl.find_opt penalties l.Roadnet.link_id)
  in
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      match Routing.shortest net ~cost ~src ~dst with
      | None -> List.rev acc
      | Some p ->
          List.iter
            (fun lid ->
              Hashtbl.replace penalties lid
                (1.5 *. Option.value ~default:1.0 (Hashtbl.find_opt penalties lid)))
            p.Routing.links;
          (* drop duplicates *)
          if List.exists (fun (q : Routing.path) -> q.Routing.links = p.Routing.links) acc
          then go (n - 1) acc
          else go (n - 1) (p :: acc)
  in
  go k []

(* flops per Monte Carlo sample: one div+add per link *)
let flops_per_sample (route : Routing.path) = 10 * List.length route.Routing.links
