(** Speed profiles: per-link per-period speed distributions learned from
    floating-car data.  These drive both traffic prediction and the
    probabilistic routing (PTDR). *)

type t

(** Empty profile store falling back to free-flow speeds. *)
val create : Roadnet.t -> periods:int -> t

val observe : t -> link:int -> period:int -> float -> unit

(** Learn from a batch of FCD pings. *)
val learn : Roadnet.t -> periods:int -> Fcd.ping list -> t

(** Mean speed; falls back to free-flow below 3 observations. *)
val mean_speed : t -> link:int -> period:int -> float

val speed_std : t -> link:int -> period:int -> float

(** Fraction of link-period cells with enough observations. *)
val coverage : t -> float

(** Draw a plausible speed for the link at the period. *)
val sample_speed : Everest_ml.Rng.t -> t -> link:int -> period:int -> float

(** RMSE of the learned means versus a simulator ground truth (covered
    cells only). *)
val prediction_rmse : t -> Simulator.state -> float
