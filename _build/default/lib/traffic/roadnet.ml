(* Road networks for the intelligent-transportation use case (§VI-C).

   Directed graphs with link capacities and free-flow speeds; a grid-city
   generator produces deterministic synthetic cities of any size (the paper
   operates on cities like Vienna with thousands of vehicles daily). *)

type link = {
  link_id : int;
  src : int;
  dst : int;
  length_m : float;
  lanes : int;
  free_speed_ms : float;
  capacity_vph : float;  (* vehicles per hour *)
}

type t = {
  n_nodes : int;
  links : link array;
  out_links : int list array;  (* node -> link ids *)
}

let create ~n_nodes (links : link list) =
  let links = Array.of_list links in
  Array.iteri
    (fun i l ->
      if l.link_id <> i then invalid_arg "roadnet: link ids must be consecutive";
      if l.src < 0 || l.src >= n_nodes || l.dst < 0 || l.dst >= n_nodes then
        invalid_arg "roadnet: node out of range")
    links;
  let out_links = Array.make n_nodes [] in
  Array.iter (fun l -> out_links.(l.src) <- l.link_id :: out_links.(l.src)) links;
  Array.iteri (fun i ls -> out_links.(i) <- List.rev ls) out_links;
  { n_nodes; links; out_links }

let link g id = g.links.(id)
let n_links g = Array.length g.links

let free_flow_time l = l.length_m /. l.free_speed_ms

(* Grid city: [rows] x [cols] intersections, bidirectional streets, a faster
   "arterial" ring. *)
let grid_city ?(rows = 8) ?(cols = 8) ?(block_m = 400.0) () =
  let node r c = (r * cols) + c in
  let links = ref [] in
  let next = ref 0 in
  let add src dst ~arterial =
    let l =
      { link_id = !next; src; dst; length_m = block_m;
        lanes = (if arterial then 2 else 1);
        free_speed_ms = (if arterial then 16.7 else 11.1);  (* 60 / 40 km/h *)
        capacity_vph = (if arterial then 1600.0 else 800.0) }
    in
    incr next;
    links := l :: !links
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let arterial_row = r = 0 || r = rows - 1 in
      let arterial_col = c = 0 || c = cols - 1 in
      if c + 1 < cols then begin
        add (node r c) (node r (c + 1)) ~arterial:arterial_row;
        add (node r (c + 1)) (node r c) ~arterial:arterial_row
      end;
      if r + 1 < rows then begin
        add (node r c) (node (r + 1) c) ~arterial:arterial_col;
        add (node (r + 1) c) (node r c) ~arterial:arterial_col
      end
    done
  done;
  create ~n_nodes:(rows * cols) (List.rev !links)

(* BPR volume-delay: travel time rises with the volume/capacity ratio. *)
let bpr_time (l : link) ~volume_vph =
  let vc = volume_vph /. (l.capacity_vph *. float_of_int l.lanes) in
  free_flow_time l *. (1.0 +. (0.15 *. (vc ** 4.0)))

let bpr_speed (l : link) ~volume_vph =
  l.length_m /. bpr_time l ~volume_vph
