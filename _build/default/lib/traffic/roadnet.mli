(** Road networks for the intelligent-transportation use case (§VI-C).

    Directed graphs with link capacities and free-flow speeds; a grid-city
    generator produces deterministic synthetic cities of any size. *)

type link = {
  link_id : int;
  src : int;
  dst : int;
  length_m : float;
  lanes : int;
  free_speed_ms : float;
  capacity_vph : float;  (** Vehicles per hour per lane. *)
}

type t = {
  n_nodes : int;
  links : link array;
  out_links : int list array;  (** Node -> outgoing link ids. *)
}

(** @raise Invalid_argument unless link ids are consecutive and endpoints
    in range. *)
val create : n_nodes:int -> link list -> t

val link : t -> int -> link
val n_links : t -> int
val free_flow_time : link -> float

(** [rows] x [cols] intersections, bidirectional streets, a faster arterial
    ring. *)
val grid_city : ?rows:int -> ?cols:int -> ?block_m:float -> unit -> t

(** BPR volume-delay: travel time rising with the volume/capacity ratio. *)
val bpr_time : link -> volume_vph:float -> float

val bpr_speed : link -> volume_vph:float -> float
