(* Speed profiles: per-link per-period speed distributions learned from
   floating-car data.  These drive both the traffic prediction model and the
   probabilistic routing (PTDR). *)

open Everest_ml

type cell = { mutable n : int; mutable mean : float; mutable m2 : float }

type t = {
  periods : int;
  n_links : int;
  cells : cell array;  (* link * periods + period *)
  fallback : float array;  (* free speed per link *)
}

let create (net : Roadnet.t) ~periods =
  {
    periods;
    n_links = Roadnet.n_links net;
    cells =
      Array.init (Roadnet.n_links net * periods) (fun _ ->
          { n = 0; mean = 0.0; m2 = 0.0 });
    fallback = Array.map (fun l -> l.Roadnet.free_speed_ms) net.Roadnet.links;
  }

let cell t ~link ~period = t.cells.((link * t.periods) + (period mod t.periods))

let observe t ~link ~period speed =
  let c = cell t ~link ~period in
  c.n <- c.n + 1;
  let d = speed -. c.mean in
  c.mean <- c.mean +. (d /. float_of_int c.n);
  c.m2 <- c.m2 +. (d *. (speed -. c.mean))

let learn net ~periods (pings : Fcd.ping list) =
  let t = create net ~periods in
  List.iter
    (fun (p : Fcd.ping) ->
      let period = int_of_float (p.Fcd.time_s /. 3600.0) mod periods in
      observe t ~link:p.Fcd.link ~period p.Fcd.speed_ms)
    pings;
  t

let mean_speed t ~link ~period =
  let c = cell t ~link ~period in
  if c.n >= 3 then c.mean else t.fallback.(link)

let speed_std t ~link ~period =
  let c = cell t ~link ~period in
  if c.n >= 3 then sqrt (c.m2 /. float_of_int (c.n - 1)) else 1.0

let coverage t =
  let covered =
    Array.fold_left (fun acc c -> if c.n >= 3 then acc + 1 else acc) 0 t.cells
  in
  float_of_int covered /. float_of_int (Array.length t.cells)

(* Draw a plausible speed for the link at the period. *)
let sample_speed rng t ~link ~period =
  let mu = mean_speed t ~link ~period in
  let sigma = Float.max 0.3 (speed_std t ~link ~period) in
  Float.max 0.5 (Rng.gaussian ~mu ~sigma rng)

(* Prediction error versus a simulator ground truth. *)
let prediction_rmse t (st : Simulator.state) =
  let errs = ref [] in
  for link = 0 to t.n_links - 1 do
    for period = 0 to t.periods - 1 do
      let c = cell t ~link ~period in
      if c.n >= 3 then
        errs :=
          (mean_speed t ~link ~period -. Simulator.speed st ~period ~link)
          :: !errs
    done
  done;
  match !errs with
  | [] -> infinity
  | es ->
      let arr = Array.of_list es in
      sqrt
        (Array.fold_left (fun acc e -> acc +. (e *. e)) 0.0 arr
        /. float_of_int (Array.length arr))
