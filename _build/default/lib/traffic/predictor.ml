(* The traffic prediction model of §VI-C: "traffic prediction model which
   learns from the training data set".

   An MLP learns per-link next-period speeds from calendar features, link
   characteristics and the current speed; trained on the first day of
   learned profiles, evaluated on a held-out day.  The baselines are
   free-flow speed and same-period persistence. *)

open Everest_ml

type t = {
  net : Mlp.t;
  norm : Dataset.norm;
  y_mean : float;
  y_std : float;
  periods : int;
}

let features (net : Roadnet.t) ~link ~period ~prev_speed =
  let l = Roadnet.link net link in
  let hod = float_of_int (period mod 24) in
  [| sin (2.0 *. Float.pi *. hod /. 24.0);
     cos (2.0 *. Float.pi *. hod /. 24.0);
     l.Roadnet.free_speed_ms;
     l.Roadnet.capacity_vph /. 1000.0;
     prev_speed |]

(* Training pairs from a simulator state over [periods]: predict speed at
   period p+1 from the state at p. *)
let samples (st : Simulator.state) ~from_period ~to_period =
  let net = st.Simulator.net in
  let xs = ref [] and ys = ref [] in
  for p = from_period to to_period - 1 do
    for link = 0 to Roadnet.n_links net - 1 do
      let prev = Simulator.speed st ~period:p ~link in
      xs := features net ~link ~period:(p + 1) ~prev_speed:prev :: !xs;
      ys := [| Simulator.speed st ~period:(p + 1) ~link |] :: !ys
    done
  done;
  (Array.of_list (List.rev !xs), Array.of_list (List.rev !ys))

let train ?(epochs = 60) (st : Simulator.state) ~train_periods : t =
  let xs, ys = samples st ~from_period:0 ~to_period:train_periods in
  let norm = Dataset.fit_norm xs in
  let flat = Array.map (fun y -> y.(0)) ys in
  let y_mean = Metrics.mean flat in
  let y_std = Float.max 1e-9 (Metrics.stddev flat) in
  let xs_n = Array.map (Dataset.normalize norm) xs in
  let ys_n = Array.map (fun y -> [| (y.(0) -. y_mean) /. y_std |]) ys in
  let net =
    Mlp.create ~seed:13 ~layers:[ Array.length xs.(0); 12; 1 ]
      ~activation:Mlp.Tanh ()
  in
  ignore (Mlp.fit ~epochs ~lr:0.01 ~batch_size:64 net xs_n ys_n);
  { net; norm; y_mean; y_std; periods = st.Simulator.periods }

let predict (m : t) (net : Roadnet.t) ~link ~period ~prev_speed =
  let x = Dataset.normalize m.norm (features net ~link ~period ~prev_speed) in
  Float.max 0.5 (((Mlp.predict m.net x).(0) *. m.y_std) +. m.y_mean)

type eval = { model_rmse : float; persistence_rmse : float; freeflow_rmse : float }

(* Evaluate next-period prediction over [from_period, to_period). *)
let evaluate (m : t) (st : Simulator.state) ~from_period ~to_period : eval =
  let net = st.Simulator.net in
  let pred = ref [] and persist = ref [] and free = ref [] and truth = ref [] in
  for p = from_period to to_period - 1 do
    for link = 0 to Roadnet.n_links net - 1 do
      let prev = Simulator.speed st ~period:p ~link in
      let actual = Simulator.speed st ~period:(p + 1) ~link in
      pred := predict m net ~link ~period:(p + 1) ~prev_speed:prev :: !pred;
      persist := prev :: !persist;
      free := (Roadnet.link net link).Roadnet.free_speed_ms :: !free;
      truth := actual :: !truth
    done
  done;
  let arr l = Array.of_list (List.rev !l) in
  let t = arr truth in
  {
    model_rmse = Metrics.rmse (arr pred) t;
    persistence_rmse = Metrics.rmse (arr persist) t;
    freeflow_rmse = Metrics.rmse (arr free) t;
  }
