(* Mesoscopic traffic simulator (§VI-C: "combining both macro and
   microscopic approaches").

   Time is divided into periods (e.g. one hour); within each period, demand
   from the O/D matrix is routed on current travel times, link volumes are
   accumulated, and BPR volume-delay updates speeds.  A few fixed-point
   iterations per period approximate user equilibrium.  The output — per-
   link per-period speeds — is the "traffic model" consumed by prediction
   and routing. *)

type state = {
  net : Roadnet.t;
  periods : int;
  speeds : float array array;  (* period -> link -> speed m/s *)
  volumes : float array array;  (* period -> link -> vph *)
}

let free_flow_state net ~periods =
  {
    net;
    periods;
    speeds =
      Array.init periods (fun _ ->
          Array.map (fun l -> l.Roadnet.free_speed_ms) net.Roadnet.links);
    volumes = Array.init periods (fun _ -> Array.make (Roadnet.n_links net) 0.0);
  }

(* Assign demand for one period given previous speeds; returns volumes. *)
let assign_period (net : Roadnet.t) (od : Od.t) ~hour ~(speeds : float array) =
  let volumes = Array.make (Roadnet.n_links net) 0.0 in
  let cost (l : Roadnet.link) = l.Roadnet.length_m /. speeds.(l.Roadnet.link_id) in
  for o = 0 to od.Od.n_zones - 1 do
    for d = 0 to od.Od.n_zones - 1 do
      if o <> d then begin
        let trips = Od.demand od ~from_zone:o ~to_zone:d ~hour in
        if trips > 0.5 then
          match Routing.shortest net ~cost ~src:o ~dst:d with
          | Some p ->
              List.iter
                (fun lid -> volumes.(lid) <- volumes.(lid) +. trips)
                p.Routing.links
          | None -> ()
      end
    done
  done;
  volumes

(* Run [periods] hours with [relaxations] equilibrium iterations each. *)
let run ?(relaxations = 3) (net : Roadnet.t) (od : Od.t) ~periods : state =
  let st = free_flow_state net ~periods in
  for p = 0 to periods - 1 do
    (* warm-start from previous period's speeds *)
    let speeds =
      if p = 0 then Array.map (fun l -> l.Roadnet.free_speed_ms) net.Roadnet.links
      else Array.copy st.speeds.(p - 1)
    in
    let volumes = ref (Array.make (Roadnet.n_links net) 0.0) in
    for it = 0 to relaxations - 1 do
      let v = assign_period net od ~hour:p ~speeds in
      (* method of successive averages *)
      let w = 1.0 /. float_of_int (it + 1) in
      Array.iteri
        (fun i vi -> !volumes.(i) <- ((1.0 -. w) *. !volumes.(i)) +. (w *. vi))
        v;
      Array.iteri
        (fun i l ->
          speeds.(i) <- Roadnet.bpr_speed l ~volume_vph:!volumes.(i))
        net.Roadnet.links
    done;
    st.speeds.(p) <- speeds;
    st.volumes.(p) <- !volumes
  done;
  st

let speed st ~period ~link = st.speeds.(period mod st.periods).(link)

let travel_time st ~period ~link =
  let l = Roadnet.link st.net link in
  l.Roadnet.length_m /. speed st ~period ~link

let mean_network_speed st ~period =
  let s = st.speeds.(period mod st.periods) in
  Array.fold_left ( +. ) 0.0 s /. float_of_int (Array.length s)

(* congestion: ratio of links below half their free speed *)
let congested_fraction st ~period =
  let s = st.speeds.(period mod st.periods) in
  let n = Array.length s in
  let k = ref 0 in
  Array.iteri
    (fun i sp ->
      if sp < 0.5 *. (Roadnet.link st.net i).Roadnet.free_speed_ms then incr k)
    s;
  float_of_int !k /. float_of_int n
