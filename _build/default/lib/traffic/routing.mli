(** Shortest-path routing: static Dijkstra and time-dependent Dijkstra over
    per-period link costs. *)

type path = { nodes : int list; links : int list; cost : float }

(** Dijkstra with a per-link cost; [None] when unreachable. *)
val shortest :
  Roadnet.t -> cost:(Roadnet.link -> float) -> src:int -> dst:int -> path option

(** Shortest path on free-flow times. *)
val free_flow : Roadnet.t -> src:int -> dst:int -> path option

(** Time-dependent Dijkstra: [period_of t] maps a clock time to a period
    index; [cost period l] gives the traversal time.  The returned cost is
    the trip duration from [depart]. *)
val time_dependent :
  Roadnet.t ->
  period_of:(float -> int) ->
  cost:(int -> Roadnet.link -> float) ->
  src:int ->
  dst:int ->
  depart:float ->
  path option
