(* Origin-destination demand: gravity-model generation with diurnal demand
   profiles (the provisioned O/D matrix of §VI-C). *)

open Everest_ml

type t = {
  n_zones : int;
  trips : float array;  (* row-major: trips per hour from i to j at peak *)
}

let peak_factor hour =
  (* morning and evening commuting peaks *)
  let h = float_of_int (hour mod 24) in
  let bump center width =
    exp (-.((h -. center) ** 2.0) /. (2.0 *. width *. width))
  in
  0.15 +. (1.0 *. bump 8.0 1.5) +. (0.9 *. bump 17.5 2.0)

(* Gravity model: attraction falls with grid distance between zones. *)
let gravity ?(seed = 13) ~n_zones ~total_trips_per_hour ~cols () =
  let rng = Rng.create seed in
  let weights = Array.init n_zones (fun _ -> 0.5 +. Rng.float rng) in
  let pos i = (i / cols, i mod cols) in
  let raw = Array.make (n_zones * n_zones) 0.0 in
  let total = ref 0.0 in
  for i = 0 to n_zones - 1 do
    for j = 0 to n_zones - 1 do
      if i <> j then begin
        let ri, ci = pos i and rj, cj = pos j in
        let d =
          1.0 +. sqrt (float_of_int (((ri - rj) * (ri - rj)) + ((ci - cj) * (ci - cj))))
        in
        let v = weights.(i) *. weights.(j) /. (d ** 1.5) in
        raw.((i * n_zones) + j) <- v;
        total := !total +. v
      end
    done
  done;
  let scale = total_trips_per_hour /. !total in
  { n_zones; trips = Array.map (fun v -> v *. scale) raw }

let demand (od : t) ~from_zone ~to_zone ~hour =
  od.trips.((from_zone * od.n_zones) + to_zone) *. peak_factor hour

let total_demand (od : t) ~hour =
  Array.fold_left ( +. ) 0.0 od.trips *. peak_factor hour
