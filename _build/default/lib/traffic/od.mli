(** Origin-destination demand: gravity-model generation with diurnal
    commuting peaks (the provisioned O/D matrix of §VI-C). *)

type t = {
  n_zones : int;
  trips : float array;  (** Row-major trips/hour from i to j at peak. *)
}

(** Diurnal demand multiplier with morning and evening peaks. *)
val peak_factor : int -> float

(** Gravity model: attraction falls with grid distance between zones.
    [cols] gives the zone grid width for the distance metric. *)
val gravity :
  ?seed:int -> n_zones:int -> total_trips_per_hour:float -> cols:int -> unit -> t

val demand : t -> from_zone:int -> to_zone:int -> hour:int -> float
val total_demand : t -> hour:int -> float
