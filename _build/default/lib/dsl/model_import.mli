(** Import of ML models from a textual exchange format.

    The paper commits the toolchain to "standard exchange formats used in
    machine learning (e.g., NNEF or ONNX)"; this is an NNEF-flavoured
    textual subset describing feed-forward graphs:

    {v
    # day-ahead power model
    input    features 1x16
    dense    l1 16x32 relu
    dense    l2 32x8  tanh
    dense    out 8x1  linear
    scale    0.001
    v}

    Each [dense NAME RxC ACT] multiplies the running value by a weight
    input named NAME (shape RxC) and applies the activation.  The result is
    an ordinary {!Tensor_expr.expr} over (data, weights) that compiles like
    any other DSL kernel. *)

exception Import_error of string

type layer =
  | L_input of string * int * int
  | L_dense of string * int * int * string
  | L_scale of float
  | L_activation of string

(** Parse the textual form (comments with [#], blank lines ignored).
    @raise Import_error on malformed input. *)
val parse_layers : string -> layer list

(** Build the model expression.
    @raise Import_error on shape mismatches or missing input. *)
val to_expr : layer list -> Tensor_expr.expr

(** [parse_layers] followed by [to_expr]. *)
val import : string -> Tensor_expr.expr

(** Layer widths (input then per-dense outputs), for
    {!Dataflow.Ai_model}. *)
val layer_sizes : layer list -> int list

(** Weight inputs (name, shape) the runtime must bind. *)
val weights : layer list -> (string * int list) list
