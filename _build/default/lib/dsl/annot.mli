(** Data-characteristics and requirement annotations.

    The "extra characteristics of the algorithms and data" the EVEREST DSLs
    attach to kernels and data (paper §III-A), so that compilation and
    runtime selection become data-driven.  Annotations encode to IR
    attributes and back. *)

type access_pattern = Sequential | Strided of int | Random | Streaming

type t =
  | Access of access_pattern
  | Size_hint of int  (** Expected size in bytes. *)
  | Element_range of float * float  (** Expected value range; drives monitors. *)
  | Locality of string  (** Where the data naturally lives, e.g. ["edge:lyon"];
                            ["node:<name>"] pins a task to a platform node. *)
  | Security of Everest_ir.Dialect_sec.level
  | Integrity_required
  | Latency_bound_ms of float
  | Throughput_hint of float  (** Items per second. *)
  | Reuse_factor of int  (** How often each element is touched. *)
  | Batch of int
  | Ramp_sensitive  (** Use case A: output quality degrades on ramps. *)

val access_name : access_pattern -> string
val access_of_name : string -> access_pattern option

(** One IR attribute per annotation, keyed ["everest.*"]. *)
val to_attr : t -> string * Everest_ir.Attr.t

val to_attrs : t list -> (string * Everest_ir.Attr.t) list
val of_attr : string * Everest_ir.Attr.t -> t option
val of_attrs : (string * Everest_ir.Attr.t) list -> t list

(** Highest security level among the annotations (default [Public]). *)
val security_level : t list -> Everest_ir.Dialect_sec.level

val access : t list -> access_pattern option
val latency_bound : t list -> float option
val pp : Format.formatter -> t -> unit
