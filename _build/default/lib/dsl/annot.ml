(* Data-characteristics and requirement annotations.

   These are the "extra characteristics of the algorithms and data" the
   EVEREST DSLs attach to kernels and data so that compilation and runtime
   selection become data-driven (paper §III-A). *)

open Everest_ir

type access_pattern = Sequential | Strided of int | Random | Streaming

type t =
  | Access of access_pattern
  | Size_hint of int  (* expected bytes *)
  | Element_range of float * float  (* expected value range, drives monitors *)
  | Locality of string  (* where the data naturally lives, e.g. "edge:paris" *)
  | Security of Dialect_sec.level
  | Integrity_required
  | Latency_bound_ms of float
  | Throughput_hint of float  (* items per second *)
  | Reuse_factor of int  (* how often each element is touched *)
  | Batch of int
  | Ramp_sensitive  (* use case A: output quality degrades on ramps *)

let access_name = function
  | Sequential -> "sequential"
  | Strided s -> Printf.sprintf "strided<%d>" s
  | Random -> "random"
  | Streaming -> "streaming"

let access_of_name s =
  if String.equal s "sequential" then Some Sequential
  else if String.equal s "random" then Some Random
  else if String.equal s "streaming" then Some Streaming
  else
    try Scanf.sscanf s "strided<%d>" (fun k -> Some (Strided k))
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> None

(* Attribute encoding: one IR attribute per annotation. *)
let to_attr = function
  | Access p -> ("everest.access", Attr.str (access_name p))
  | Size_hint b -> ("everest.size_hint", Attr.int b)
  | Element_range (lo, hi) ->
      ("everest.range", Attr.list [ Attr.float lo; Attr.float hi ])
  | Locality l -> ("everest.locality", Attr.str l)
  | Security lvl -> ("everest.security", Attr.str (Dialect_sec.level_name lvl))
  | Integrity_required -> ("everest.integrity", Attr.bool true)
  | Latency_bound_ms ms -> ("everest.latency_ms", Attr.float ms)
  | Throughput_hint t -> ("everest.throughput", Attr.float t)
  | Reuse_factor r -> ("everest.reuse", Attr.int r)
  | Batch b -> ("everest.batch", Attr.int b)
  | Ramp_sensitive -> ("everest.ramp_sensitive", Attr.bool true)

let to_attrs anns = List.map to_attr anns

let of_attr (key, (v : Attr.t)) =
  match (key, v) with
  | "everest.access", Attr.Str s ->
      Option.map (fun p -> Access p) (access_of_name s)
  | "everest.size_hint", Attr.Int b -> Some (Size_hint b)
  | "everest.range", Attr.List [ a; b ] -> (
      match (Attr.as_float a, Attr.as_float b) with
      | Some lo, Some hi -> Some (Element_range (lo, hi))
      | _ -> None)
  | "everest.locality", Attr.Str l -> Some (Locality l)
  | "everest.security", Attr.Str s ->
      Option.map (fun l -> Security l) (Dialect_sec.level_of_name s)
  | "everest.integrity", Attr.Bool true -> Some Integrity_required
  | "everest.latency_ms", v ->
      Option.map (fun f -> Latency_bound_ms f) (Attr.as_float v)
  | "everest.throughput", v ->
      Option.map (fun f -> Throughput_hint f) (Attr.as_float v)
  | "everest.reuse", Attr.Int r -> Some (Reuse_factor r)
  | "everest.batch", Attr.Int b -> Some (Batch b)
  | "everest.ramp_sensitive", Attr.Bool true -> Some Ramp_sensitive
  | _ -> None

let of_attrs attrs = List.filter_map of_attr attrs

let security_level anns =
  List.fold_left
    (fun acc a ->
      match a with
      | Security l ->
          if Dialect_sec.level_leq acc l then l else acc
      | _ -> acc)
    Dialect_sec.Public anns

let access anns =
  List.find_map (function Access p -> Some p | _ -> None) anns

let latency_bound anns =
  List.find_map (function Latency_bound_ms f -> Some f | _ -> None) anns

let pp ppf a =
  let k, v = to_attr a in
  Fmt.pf ppf "%s=%a" k Attr.pp v
