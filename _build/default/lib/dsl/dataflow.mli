(** Workflow/dataflow eDSL (the HyperLoom-facing layer).

    An application is an end-to-end pipeline of tasks of various granularity
    (paper §III-A): sources feed kernels, kernels feed sinks.  Kernels are
    tensor expressions, opaque external nodes (C/C++ tasks with cost
    estimates), or AI model invocations.  Nodes carry the annotations that
    drive compilation. *)

type kernel =
  | Tensor_kernel of Tensor_expr.expr
  | External of { lang : string; est_flops : int; est_bytes : int }
  | Ai_model of { layers : int list; activation : string }

type node = {
  nid : int;
  nname : string;
  kernel : kernel option;  (** [None] for pure sources. *)
  deps : node list;
  annots : Annot.t list;
  out_bytes : int;
}

(** A graph under construction.  Fields are exposed for the compiler; use
    the builders below to mutate. *)
type graph = {
  gname : string;
  mutable rev_nodes : node list;
  mutable next_id : int;
  mutable sinks : (string * node) list;
}

val create : string -> graph

(** [source g name ~bytes] adds an external data source producing [bytes]. *)
val source : ?annots:Annot.t list -> graph -> string -> bytes:int -> node

(** [task g name kernel ~deps] adds a computation consuming [deps].
    [out_bytes] defaults to an estimate from the kernel.
    @raise Invalid_argument when a dependency belongs to another graph. *)
val task :
  ?annots:Annot.t list ->
  ?out_bytes:int ->
  graph ->
  string ->
  kernel ->
  deps:node list ->
  node

(** Mark [node] as a named workflow output. *)
val sink : graph -> string -> node -> unit

(** Nodes in topological (construction) order. *)
val nodes : graph -> node list

val sinks : graph -> (string * node) list
val size : graph -> int
val find : graph -> string -> node option
val kernel_flops : kernel option -> int
val node_flops : node -> int
val in_bytes : node -> int

(** Check name uniqueness, dependency ordering and sink membership. *)
val validate : graph -> (unit, string list) result

(** Longest dependency chain under a per-node cost function. *)
val critical_path : graph -> (node -> float) -> float

val total_flops : graph -> int
val total_bytes : graph -> int
val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> graph -> unit
