lib/dsl/dataflow.mli: Annot Format Tensor_expr
