lib/dsl/particles.mli:
