lib/dsl/model_import.mli: Tensor_expr
