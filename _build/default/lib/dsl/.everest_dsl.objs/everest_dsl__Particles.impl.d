lib/dsl/particles.ml: Array Everest_ml Float List String
