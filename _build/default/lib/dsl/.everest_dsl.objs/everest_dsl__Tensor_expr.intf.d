lib/dsl/tensor_expr.mli: Format
