lib/dsl/lower.mli: Annot Dataflow Everest_ir Tensor_expr
