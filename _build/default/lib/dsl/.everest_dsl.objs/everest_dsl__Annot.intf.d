lib/dsl/annot.mli: Everest_ir Format
