lib/dsl/dataflow.ml: Annot Float Fmt Hashtbl List Printf String Tensor_expr
