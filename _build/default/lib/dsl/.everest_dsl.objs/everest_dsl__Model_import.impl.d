lib/dsl/model_import.ml: List Printf String Tensor_expr
