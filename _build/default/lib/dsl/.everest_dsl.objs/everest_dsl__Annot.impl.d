lib/dsl/annot.ml: Attr Dialect_sec Everest_ir Fmt List Option Printf Scanf String
