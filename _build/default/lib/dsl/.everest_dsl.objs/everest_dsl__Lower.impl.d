lib/dsl/lower.ml: Annot Array Attr Dataflow Dialect_arith Dialect_df Dialect_func Dialect_tensor Everest_ir Hashtbl Interp Ir List Tensor_expr Types
