lib/dsl/tensor_expr.ml: Array Dump Everest_ir Float Fmt Hashtbl List Stdlib String
