(* Lowering from the eDSLs into the unified IR (the compiler front-end of
   Fig. 1: "unifies the orchestration and the kernel specifications into a
   single MLIR"). *)

open Everest_ir

let tensor_type shape =
  if shape = [] then Types.f64 else Types.tensor Types.F64 shape

(* Lower a tensor expression to a function over its free inputs.
   Returns the function; input order follows [Tensor_expr.inputs]. *)
let lower_expr ?(fname = "kernel") ?(annots = []) ctx (e : Tensor_expr.expr) =
  let ins = Tensor_expr.inputs e in
  let args =
    List.map (fun (_, shape) -> Ir.fresh_value ctx (tensor_type shape)) ins
  in
  let env = List.combine (List.map fst ins) args in
  let acc = ref [] in
  let emit op = acc := op :: !acc; Ir.result op in
  let rec go (e : Tensor_expr.expr) : Ir.value =
    match e.Tensor_expr.node with
    | Input n -> List.assoc n env
    | Const v ->
        if e.shape = [] then emit (Dialect_arith.const_f ctx v)
        else
          let s = emit (Dialect_arith.const_f ctx v) in
          emit (Dialect_tensor.fill ctx s (tensor_type e.shape))
    | Binop (op, a, b) ->
        let va = go a and vb = go b in
        if e.shape = [] then
          emit
            ((match op with
             | Tensor_expr.Add -> Dialect_arith.addf
             | Sub -> Dialect_arith.subf
             | Mul -> Dialect_arith.mulf
             | Div -> Dialect_arith.divf
             | Max -> Dialect_arith.maxf
             | Min -> Dialect_arith.minf)
               ctx va vb)
        else
          let kind =
            match op with
            | Tensor_expr.Add -> "add" | Sub -> "sub" | Mul -> "mul"
            | Div -> "div" | Max -> "max" | Min -> "min"
          in
          emit (Dialect_tensor.elementwise ctx kind [ va; vb ])
    | Unop (op, a) ->
        let va = go a in
        let kind =
          match op with
          | Tensor_expr.Relu -> "relu" | Sigmoid -> "sigmoid" | Tanh -> "tanh"
          | Exp -> "exp" | Neg -> "neg" | Sqrt -> "sqrt"
        in
        if e.shape = [] then (
          match op with
          | Tensor_expr.Exp -> emit (Dialect_arith.expf ctx va)
          | Neg -> emit (Dialect_arith.negf ctx va)
          | Sqrt -> emit (Dialect_arith.sqrtf ctx va)
          | _ ->
              (* scalar sigmoid/tanh/relu: route through a 1-element tensor *)
              let one = emit (Dialect_tensor.fill ctx va (Types.tensor Types.F64 [ 1 ])) in
              let r = emit (Dialect_tensor.elementwise ctx kind [ one ]) in
              emit (Dialect_tensor.reduce ctx "add" r))
        else emit (Dialect_tensor.elementwise ctx kind [ va ])
    | Scale (k, a) ->
        let va = go a in
        let s = emit (Dialect_arith.const_f ctx k) in
        if e.shape = [] then emit (Dialect_arith.mulf ctx s va)
        else emit (Dialect_tensor.scale ctx s va)
    | Matmul (a, b) ->
        let va = go a and vb = go b in
        emit (Dialect_tensor.matmul ctx va vb)
    | Transpose a -> emit (Dialect_tensor.transpose ctx (go a))
    | Reshape a -> emit (Dialect_tensor.reshape ctx (go a) e.shape)
    | Reduce (r, a) ->
        let kind =
          match r with
          | Tensor_expr.Sum -> "add" | Prod -> "mul" | Rmax -> "max" | Rmin -> "min"
        in
        emit (Dialect_tensor.reduce ctx kind (go a))
    | Contract (spec, es) ->
        let vs = List.map go es in
        emit (Dialect_tensor.contract ctx spec vs (tensor_type e.shape))
  in
  let result = go e in
  let ret = Dialect_func.return ctx [ result ] in
  let body = List.rev (ret :: !acc) in
  Ir.func ~attrs:(Annot.to_attrs annots) fname args
    [ tensor_type (Tensor_expr.shape e) ]
    body

(* Evaluate a lowered kernel function through the IR interpreter. *)
let run_lowered ctx (f : Ir.func) (args : Tensor_expr.tensor list) =
  let m = Ir.modul "tmp" [ f ] in
  let rt_args =
    List.map2
      (fun (v : Ir.value) (t : Tensor_expr.tensor) ->
        if Types.is_scalar v.Ir.vty then Interp.RFloat t.Tensor_expr.data.(0)
        else Interp.tensor_of_array t.Tensor_expr.dims t.Tensor_expr.data)
      f.Ir.fargs args
  in
  let rets, profile = Interp.run_func ctx m f.Ir.fname rt_args in
  ( (match rets with
    | [ Interp.RFloat v ] -> Tensor_expr.tensor_scalar v
    | [ Interp.RBuf b ] ->
        Tensor_expr.tensor b.Interp.shape b.Interp.data
    | _ -> invalid_arg "run_lowered: unexpected result"),
    profile )

(* Lower a workflow graph to a module: one function per tensor kernel plus a
   [main] orchestration function holding the df.graph. *)
let lower_graph ctx (g : Dataflow.graph) : Ir.modul =
  let kernel_funcs = ref [] in
  let kernel_name (n : Dataflow.node) = "k_" ^ n.Dataflow.nname in
  List.iter
    (fun (n : Dataflow.node) ->
      match n.Dataflow.kernel with
      | Some (Dataflow.Tensor_kernel e) ->
          let f =
            lower_expr ~fname:(kernel_name n) ~annots:n.Dataflow.annots ctx e
          in
          kernel_funcs := f :: !kernel_funcs
      | _ -> ())
    (Dataflow.nodes g);
  (* orchestration body *)
  let produced : (int, Ir.value) Hashtbl.t = Hashtbl.create 16 in
  let data_ty (_n : Dataflow.node) = Types.tensor_dyn Types.I8 [ Types.Dyn ] in
  let ops =
    List.concat_map
      (fun (n : Dataflow.node) ->
        let attrs =
          ("out_bytes", Attr.int n.Dataflow.out_bytes)
          :: Annot.to_attrs n.Dataflow.annots
        in
        match n.Dataflow.kernel with
        | None ->
            let o = Dialect_df.source ~attrs ctx n.Dataflow.nname (data_ty n) in
            Hashtbl.replace produced n.Dataflow.nid (Ir.result o);
            [ o ]
        | Some k ->
            let inputs =
              List.map (fun (d : Dataflow.node) -> Hashtbl.find produced d.Dataflow.nid)
                n.Dataflow.deps
            in
            let attrs =
              match k with
              | Dataflow.Tensor_kernel _ -> attrs
              | Dataflow.External { lang; est_flops; est_bytes } ->
                  ("external", Attr.str lang)
                  :: ("est_flops", Attr.int est_flops)
                  :: ("est_bytes", Attr.int est_bytes)
                  :: attrs
              | Dataflow.Ai_model { layers; activation } ->
                  ("ai_layers", Attr.ints layers)
                  :: ("ai_activation", Attr.str activation)
                  :: attrs
            in
            let o =
              Dialect_df.task ~attrs ctx ~kernel:(kernel_name n) inputs
                [ data_ty n ]
            in
            Hashtbl.replace produced n.Dataflow.nid (Ir.result o);
            [ o ])
      (Dataflow.nodes g)
  in
  let sink_ops =
    List.map
      (fun (name, (n : Dataflow.node)) ->
        Dialect_df.sink ctx name (Hashtbl.find produced n.Dataflow.nid))
      (Dataflow.sinks g)
  in
  let graph_op = Dialect_df.graph ctx g.Dataflow.gname (ops @ sink_ops) in
  let ret = Dialect_func.return ctx [] in
  let main = Ir.func "main" [] [] [ graph_op; ret ] in
  Ir.modul g.Dataflow.gname (List.rev !kernel_funcs @ [ main ])
