(* Workflow/dataflow eDSL (the HyperLoom-facing layer).

   An application is an end-to-end pipeline of tasks of various granularity
   (paper §III-A): sources feed kernels, kernels feed sinks.  Kernels are
   either tensor expressions written in the DSL, opaque external nodes
   (C/C++ tasks with cost estimates), or AI model invocations.  Nodes are
   annotated with the data characteristics that drive compilation. *)

type kernel =
  | Tensor_kernel of Tensor_expr.expr
  | External of { lang : string; est_flops : int; est_bytes : int }
  | Ai_model of { layers : int list; activation : string }

type node = {
  nid : int;
  nname : string;
  kernel : kernel option;  (* None for pure sources *)
  deps : node list;
  annots : Annot.t list;
  out_bytes : int;
}

type graph = {
  gname : string;
  mutable rev_nodes : node list;
  mutable next_id : int;
  mutable sinks : (string * node) list;
}

let create gname = { gname; rev_nodes = []; next_id = 0; sinks = [] }

let add g node =
  g.rev_nodes <- node :: g.rev_nodes;
  g.next_id <- g.next_id + 1;
  node

let source ?(annots = []) g name ~bytes =
  add g
    { nid = g.next_id; nname = name; kernel = None; deps = []; annots;
      out_bytes = bytes }

let default_out_bytes kernel deps =
  match kernel with
  | Tensor_kernel e -> 8 * Tensor_expr.num_elems (Tensor_expr.shape e)
  | External { est_bytes; _ } -> est_bytes
  | Ai_model { layers; _ } -> (
      match List.rev layers with [] -> 8 | last :: _ -> 8 * last * 1)
  |> fun b -> if b = 0 then List.fold_left (fun a n -> a + n.out_bytes) 8 deps else b

let task ?(annots = []) ?out_bytes g name kernel ~deps =
  List.iter
    (fun d ->
      if d.nid >= g.next_id then invalid_arg "task: dependency from another graph")
    deps;
  let out_bytes =
    match out_bytes with Some b -> b | None -> default_out_bytes kernel deps
  in
  add g
    { nid = g.next_id; nname = name; kernel = Some kernel; deps; annots; out_bytes }

let sink g name node = g.sinks <- (name, node) :: g.sinks

(* Nodes in topological (construction) order. *)
let nodes g = List.rev g.rev_nodes
let sinks g = List.rev g.sinks
let size g = List.length g.rev_nodes

let find g name = List.find_opt (fun n -> String.equal n.nname name) (nodes g)

let kernel_flops = function
  | None -> 0
  | Some (Tensor_kernel e) -> Tensor_expr.flops e
  | Some (External { est_flops; _ }) -> est_flops
  | Some (Ai_model { layers; _ }) ->
      let rec pairs = function
        | a :: (b :: _ as rest) -> (2 * a * b) + pairs rest
        | _ -> 0
      in
      pairs layers

let node_flops n = kernel_flops n.kernel

let in_bytes n = List.fold_left (fun acc d -> acc + d.out_bytes) 0 n.deps

(* Validation: names unique, deps precede, sinks registered on graph nodes. *)
let validate g =
  let errs = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n.nname then
        errs := Printf.sprintf "duplicate node name %S" n.nname :: !errs;
      Hashtbl.replace seen n.nname ();
      List.iter
        (fun d ->
          if d.nid >= n.nid then
            errs := Printf.sprintf "node %S: dependency order violated" n.nname :: !errs)
        n.deps)
    (nodes g);
  List.iter
    (fun (_, n) ->
      if not (List.exists (fun m -> m.nid = n.nid) (nodes g)) then
        errs := Printf.sprintf "sink references foreign node %S" n.nname :: !errs)
    g.sinks;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

(* Critical path length under a per-node cost function. *)
let critical_path g cost =
  let memo = Hashtbl.create 16 in
  let rec cp n =
    match Hashtbl.find_opt memo n.nid with
    | Some c -> c
    | None ->
        let c =
          cost n +. List.fold_left (fun m d -> Float.max m (cp d)) 0.0 n.deps
        in
        Hashtbl.replace memo n.nid c;
        c
  in
  List.fold_left (fun m n -> Float.max m (cp n)) 0.0 (nodes g)

let total_flops g =
  List.fold_left (fun acc n -> acc + node_flops n) 0 (nodes g)

let total_bytes g =
  List.fold_left (fun acc n -> acc + n.out_bytes) 0 (nodes g)

let pp_node ppf n =
  Fmt.pf ppf "%s(#%d, %d deps, %dB)" n.nname n.nid (List.length n.deps)
    n.out_bytes

let pp ppf g =
  Fmt.pf ppf "graph %s: %a" g.gname Fmt.(list ~sep:(any " -> ") pp_node) (nodes g)
