(* Import of ML models from a textual exchange format.

   The paper commits the toolchain to "standard exchange formats used in
   machine learning (e.g., NNEF or ONNX)".  This module implements an
   NNEF-flavoured textual subset describing feed-forward graphs, parsed
   into tensor-expression kernels the compiler treats like any other DSL
   kernel:

     # day-ahead power model
     input    features 1x16
     dense    l1 16x32 relu
     dense    l2 32x8  tanh
     dense    out 8x1  linear
     scale    0.001

   Each [dense NAME RxC ACT] multiplies the running value by a weight
   input named NAME (shape RxC) and applies the activation. *)

exception Import_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Import_error s)) fmt

type layer =
  | L_input of string * int * int
  | L_dense of string * int * int * string
  | L_scale of float
  | L_activation of string

let parse_shape s =
  match String.split_on_char 'x' s with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some r, Some c when r > 0 && c > 0 -> (r, c)
      | _ -> fail "bad shape %S" s)
  | _ -> fail "bad shape %S (expected RxC)" s

let activations = [ "relu"; "sigmoid"; "tanh"; "linear" ]

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> None
  | [ "input"; name; shape ] ->
      let r, c = parse_shape shape in
      Some (L_input (name, r, c))
  | [ "dense"; name; shape; act ] ->
      if not (List.mem act activations) then
        fail "line %d: unknown activation %S" lineno act;
      let r, c = parse_shape shape in
      Some (L_dense (name, r, c, act))
  | [ "scale"; k ] -> (
      match float_of_string_opt k with
      | Some f -> Some (L_scale f)
      | None -> fail "line %d: bad scale %S" lineno k)
  | [ "activation"; act ] ->
      if not (List.mem act activations) then
        fail "line %d: unknown activation %S" lineno act;
      Some (L_activation act)
  | w :: _ -> fail "line %d: unknown directive %S" lineno w

let parse_layers (src : string) : layer list =
  String.split_on_char '\n' src
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (i, l) -> parse_line i l)

let apply_activation e = function
  | "relu" -> Tensor_expr.relu e
  | "sigmoid" -> Tensor_expr.sigmoid e
  | "tanh" -> Tensor_expr.tanh_ e
  | "linear" -> e
  | a -> fail "unknown activation %S" a

(* Build the tensor expression of the whole model.  Weights become named
   inputs so the compiler sees an ordinary kernel over (data, weights). *)
let to_expr (layers : layer list) : Tensor_expr.expr =
  match layers with
  | L_input (name, r, c) :: rest ->
      let start = Tensor_expr.input name [ r; c ] in
      List.fold_left
        (fun acc l ->
          match l with
          | L_input _ -> fail "only one input supported"
          | L_dense (wname, wr, wc, act) -> (
              match Tensor_expr.shape acc with
              | [ _; k ] when k = wr ->
                  let w = Tensor_expr.input wname [ wr; wc ] in
                  apply_activation (Tensor_expr.matmul acc w) act
              | s ->
                  fail "dense %s: expects inner dim %d, got %s" wname wr
                    (String.concat "x" (List.map string_of_int s)))
          | L_scale k -> Tensor_expr.scale k acc
          | L_activation act -> apply_activation acc act)
        start rest
  | _ -> fail "model must start with an input declaration"

let import (src : string) : Tensor_expr.expr = to_expr (parse_layers src)

(* Hidden-layer sizes for a Dataflow.Ai_model description. *)
let layer_sizes (layers : layer list) : int list =
  List.filter_map
    (function
      | L_input (_, _, c) -> Some c
      | L_dense (_, _, c, _) -> Some c
      | _ -> None)
    layers

(* Weight inputs (name, shape) the runtime must bind. *)
let weights (layers : layer list) =
  List.filter_map
    (function L_dense (n, r, c, _) -> Some (n, [ r; c ]) | _ -> None)
    layers
