(** Particle abstraction (the second EVEREST data-centric DSL, §III-B:
    "Tensors and particles are two examples of EVEREST data-centric
    programming abstractions").

    A particle system holds N particles with named float attributes.
    Kernels are per-particle maps or cutoff-limited pairwise interactions.
    The same system can be laid out as array-of-structures (AoS) or
    structure-of-arrays (SoA); the layout changes memory behaviour, not
    semantics — the software-variant axis the paper's middle-end explores. *)

type layout = Aos | Soa

type system = {
  n : int;
  attrs : string list;  (** Attribute order defines the AoS field order. *)
  layout : layout;
  data : float array;
}

val n_attrs : system -> int

(** @raise Invalid_argument on unknown attributes. *)
val attr_index : system -> string -> int

val create : ?layout:layout -> n:int -> string list -> system
val get : system -> int -> string -> float
val set : system -> int -> string -> float -> unit
val get_by_index : system -> int -> int -> float
val set_by_index : system -> int -> int -> float -> unit

(** Same logical contents in the other layout. *)
val with_layout : system -> layout -> system

val equal_contents : system -> system -> bool

(** {2 Kernels} *)

(** Per-particle map: [f] receives current values in [reads] order and
    returns new values in [writes] order. *)
val map_kernel :
  system -> reads:string list -> writes:string list ->
  (float list -> float list) -> unit

(** Cutoff-limited symmetric pairwise interaction on (x, y) accumulating
    into (fx, fy); returns the number of interacting pairs. *)
val pairwise_kernel :
  system -> cutoff:float -> (float -> float -> float -> float * float) -> int

(** {2 Layout cost model} *)

(** Bytes a map kernel drags through the memory system: AoS loads whole
    records, SoA streams only the touched fields. *)
val map_traffic_bytes : system -> reads:string list -> writes:string list -> int

val soa_speedup : system -> reads:string list -> writes:string list -> float

(** SoA when kernels touch a minority of fields, else AoS. *)
val recommend_layout :
  system -> reads:string list -> writes:string list -> layout

(** {2 Reference simulation} *)

(** One leapfrog step of a 2-D short-range force field; returns the number
    of interacting pairs. *)
val step :
  ?dt:float ->
  system ->
  cutoff:float ->
  force:(float -> float -> float -> float * float) ->
  int

val standard_attrs : string list

val random_system :
  ?seed:int -> ?layout:layout -> n:int -> box:float -> unit -> system
