(* Particle abstraction (the second EVEREST data-centric DSL, §III-B:
   "Tensors and particles are two examples of EVEREST data-centric
   programming abstractions").

   A particle system holds N particles with named float attributes
   (position, velocity, charge, ...).  Kernels are per-particle maps or
   cutoff-limited pairwise interactions.  The same system can be laid out
   as array-of-structures (AoS) or structure-of-arrays (SoA); the layout
   changes memory behaviour, not semantics — exactly the software-variant
   axis the paper's middle-end explores ("a software-only implementation
   could explore layouts of particles as array-of-structures or
   structure-of-arrays"). *)

type layout = Aos | Soa

type system = {
  n : int;
  attrs : string list;  (* attribute order defines AoS field order *)
  layout : layout;
  data : float array;  (* n * |attrs| floats *)
}

let n_attrs s = List.length s.attrs

let attr_index s name =
  let rec go i = function
    | [] -> invalid_arg ("particles: unknown attribute " ^ name)
    | a :: _ when String.equal a name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 s.attrs

let create ?(layout = Aos) ~n attrs =
  if n <= 0 then invalid_arg "particles: n must be positive";
  if attrs = [] then invalid_arg "particles: need at least one attribute";
  { n; attrs; layout; data = Array.make (n * List.length attrs) 0.0 }

let idx s p a =
  match s.layout with
  | Aos -> (p * n_attrs s) + a
  | Soa -> (a * s.n) + p

let get s p name = s.data.(idx s p (attr_index s name))
let set s p name v = s.data.(idx s p (attr_index s name)) <- v

let get_by_index s p a = s.data.(idx s p a)
let set_by_index s p a v = s.data.(idx s p a) <- v

(* Convert between layouts (same logical contents). *)
let with_layout s layout =
  if s.layout = layout then s
  else begin
    let out = { s with layout; data = Array.make (Array.length s.data) 0.0 } in
    for p = 0 to s.n - 1 do
      for a = 0 to n_attrs s - 1 do
        out.data.(idx out p a) <- s.data.(idx s p a)
      done
    done;
    out
  end

let equal_contents a b =
  a.n = b.n && a.attrs = b.attrs
  &&
  let ok = ref true in
  for p = 0 to a.n - 1 do
    for k = 0 to n_attrs a - 1 do
      if Float.abs (a.data.(idx a p k) -. b.data.(idx b p k)) > 1e-12 then
        ok := false
    done
  done;
  !ok

(* ---- kernels ------------------------------------------------------------------ *)

(* Per-particle map over a subset of attributes: [f] receives the current
   values (in [reads] order) and returns new values (in [writes] order). *)
let map_kernel s ~reads ~writes f =
  let ri = List.map (attr_index s) reads in
  let wi = List.map (attr_index s) writes in
  for p = 0 to s.n - 1 do
    let inputs = List.map (fun a -> s.data.(idx s p a)) ri in
    let outputs = f inputs in
    List.iter2 (fun a v -> s.data.(idx s p a) <- v) wi outputs
  done

(* Cutoff-limited pairwise interaction on positions (x, y): for every pair
   within [cutoff], [f dx dy dist2] returns the force magnitude pair added
   to (fx, fy) of the first particle (symmetrically subtracted from the
   second).  O(n^2) reference implementation. *)
let pairwise_kernel s ~cutoff f =
  let xi = attr_index s "x" and yi = attr_index s "y" in
  let fxi = attr_index s "fx" and fyi = attr_index s "fy" in
  let c2 = cutoff *. cutoff in
  let interactions = ref 0 in
  for p = 0 to s.n - 1 do
    for q = p + 1 to s.n - 1 do
      let dx = s.data.(idx s q xi) -. s.data.(idx s p xi) in
      let dy = s.data.(idx s q yi) -. s.data.(idx s p yi) in
      let d2 = (dx *. dx) +. (dy *. dy) in
      if d2 <= c2 && d2 > 0.0 then begin
        incr interactions;
        let gx, gy = f dx dy d2 in
        s.data.(idx s p fxi) <- s.data.(idx s p fxi) +. gx;
        s.data.(idx s p fyi) <- s.data.(idx s p fyi) +. gy;
        s.data.(idx s q fxi) <- s.data.(idx s q fxi) -. gx;
        s.data.(idx s q fyi) <- s.data.(idx s q fyi) -. gy
      end
    done
  done;
  !interactions

(* ---- cost model ---------------------------------------------------------------- *)

(* Bytes touched by a map kernel reading [reads] and writing [writes]
   attributes.  AoS drags whole records through the cache when only a few
   fields are touched; SoA streams exactly the used fields. *)
let map_traffic_bytes s ~reads ~writes =
  let line = 64 in
  let fields = List.length reads + List.length writes in
  match s.layout with
  | Soa -> 8 * s.n * fields
  | Aos ->
      (* each particle touch loads ceil(record/line) cache lines *)
      let record = 8 * n_attrs s in
      let lines = (record + line - 1) / line in
      s.n * lines * line

(* Relative speedup of SoA over AoS for a map kernel (memory-bound). *)
let soa_speedup s ~reads ~writes =
  let aos = map_traffic_bytes { s with layout = Aos } ~reads ~writes in
  let soa = map_traffic_bytes { s with layout = Soa } ~reads ~writes in
  float_of_int aos /. float_of_int soa

(* Recommend a layout: SoA when kernels touch a minority of fields. *)
let recommend_layout s ~reads ~writes =
  if soa_speedup s ~reads ~writes > 1.1 then Soa else Aos

(* ---- a small reference simulation ----------------------------------------------- *)

(* Leapfrog step of a 2-D short-range force field; used by tests and the
   bench as the particle workload. *)
let step ?(dt = 0.01) s ~cutoff ~force =
  (* zero forces *)
  map_kernel s ~reads:[] ~writes:[ "fx"; "fy" ] (fun _ -> [ 0.0; 0.0 ]);
  let inter = pairwise_kernel s ~cutoff force in
  map_kernel s ~reads:[ "x"; "y"; "vx"; "vy"; "fx"; "fy" ]
    ~writes:[ "x"; "y"; "vx"; "vy" ]
    (fun vals ->
      match vals with
      | [ x; y; vx; vy; fx; fy ] ->
          let vx = vx +. (dt *. fx) and vy = vy +. (dt *. fy) in
          [ x +. (dt *. vx); y +. (dt *. vy); vx; vy ]
      | _ -> assert false);
  inter

let standard_attrs = [ "x"; "y"; "vx"; "vy"; "fx"; "fy"; "charge"; "mass" ]

let random_system ?(seed = 5) ?(layout = Aos) ~n ~box () =
  let rng = Everest_ml.Rng.create seed in
  let s = create ~layout ~n standard_attrs in
  for p = 0 to n - 1 do
    set s p "x" (Everest_ml.Rng.uniform rng 0.0 box);
    set s p "y" (Everest_ml.Rng.uniform rng 0.0 box);
    set s p "vx" (Everest_ml.Rng.gaussian ~sigma:0.1 rng);
    set s p "vy" (Everest_ml.Rng.gaussian ~sigma:0.1 rng);
    set s p "charge" (if Everest_ml.Rng.float rng < 0.5 then -1.0 else 1.0);
    set s p "mass" 1.0
  done;
  s
