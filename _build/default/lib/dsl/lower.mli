(** Lowering from the eDSLs into the unified IR (the compiler front-end of
    Fig. 1: "unifies the orchestration and the kernel specifications into a
    single MLIR"). *)

(** IR type of a tensor shape ([[]] maps to scalar [f64]). *)
val tensor_type : int list -> Everest_ir.Types.t

(** [lower_expr ctx e] lowers a tensor expression to a function over its
    free inputs (argument order follows {!Tensor_expr.inputs}).  [annots]
    become function attributes. *)
val lower_expr :
  ?fname:string ->
  ?annots:Annot.t list ->
  Everest_ir.Ir.ctx ->
  Tensor_expr.expr ->
  Everest_ir.Ir.func

(** Evaluate a lowered kernel through the IR interpreter; returns the result
    tensor and the execution profile. *)
val run_lowered :
  Everest_ir.Ir.ctx ->
  Everest_ir.Ir.func ->
  Tensor_expr.tensor list ->
  Tensor_expr.tensor * Everest_ir.Interp.profile

(** Lower a workflow graph to a module: one function per tensor kernel plus
    a [main] orchestration function holding the [df.graph]. *)
val lower_graph : Everest_ir.Ir.ctx -> Dataflow.graph -> Everest_ir.Ir.modul
