(* vFPGA manager (paper [33]): virtualizes physical FPGA role slots into
   per-VM virtual FPGA contexts with isolation.

   A VM acquires a vFPGA bound to one physical device; kernel launches go
   through the manager, which enforces that a VM only ever drives its own
   contexts (the shell/role privilege separation of cloudFPGA). *)

open Everest_platform

type vctx = {
  vf_id : int;
  owner_vm : int;
  dev : Node.fpga_dev;
  node : Node.t;
  mutable launches : int;
  mutable released : bool;
}

type t = {
  mutable contexts : vctx list;
  mutable next_id : int;
  mutable denied : int;  (* isolation violations blocked *)
}

let create () = { contexts = []; next_id = 0; denied = 0 }

exception No_fpga of string
exception Isolation_violation of string

let allocate mgr ~(vm : Vm.t) =
  match vm.Vm.host.Node.fpgas with
  | [] -> raise (No_fpga (vm.Vm.host.Node.name ^ " has no FPGA"))
  | devs ->
      (* least-loaded device on the host *)
      let dev =
        List.fold_left
          (fun best d ->
            let load dd =
              List.length
                (List.filter
                   (fun c -> c.dev == dd && not c.released)
                   mgr.contexts)
            in
            if load d < load best then d else best)
          (List.hd devs) (List.tl devs)
      in
      let ctx =
        { vf_id = mgr.next_id; owner_vm = vm.Vm.vm_id; dev; node = vm.Vm.host;
          launches = 0; released = false }
      in
      mgr.next_id <- mgr.next_id + 1;
      mgr.contexts <- ctx :: mgr.contexts;
      ctx

let release _mgr ctx = ctx.released <- true

(* Launch a kernel on a vFPGA on behalf of [vm].  Isolation: the caller must
   own the context. *)
let launch mgr sim ~(vm : Vm.t) ~(ctx : vctx) ~bitstream
    ~(estimate : Everest_hls.Estimate.t) ~in_bytes ~out_bytes k =
  if ctx.released then raise (Isolation_violation "launch on released vFPGA");
  if ctx.owner_vm <> vm.Vm.vm_id then begin
    mgr.denied <- mgr.denied + 1;
    raise
      (Isolation_violation
         (Printf.sprintf "vm %d attempted launch on vFPGA of vm %d" vm.Vm.vm_id
            ctx.owner_vm))
  end;
  let link =
    match ctx.dev.Node.fspec.Spec.attach with
    | Spec.Bus_coherent -> Spec.opencapi
    | Spec.Network_attached -> Spec.eth100_tcp
  in
  Node.run_fpga sim ctx.node ctx.dev ~bitstream ~estimate ~host_link:link
    ~in_bytes ~out_bytes (fun () ->
      ctx.launches <- ctx.launches + 1;
      k ())

let active_contexts mgr =
  List.length (List.filter (fun c -> not c.released) mgr.contexts)
