lib/runtime/vfpga.mli: Desim Everest_hls Everest_platform Node Vm
