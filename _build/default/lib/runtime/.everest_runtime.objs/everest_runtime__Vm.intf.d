lib/runtime/vm.mli: Cluster Desim Everest_platform Node
