lib/runtime/vfpga.ml: Everest_hls Everest_platform List Node Printf Spec Vm
