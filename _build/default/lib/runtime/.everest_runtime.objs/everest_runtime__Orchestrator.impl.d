lib/runtime/orchestrator.ml: Cluster Desim Everest_autotune Everest_hls Everest_platform Goal Knowledge List Node Option Protection Selector String Tuner Vfpga Vm
