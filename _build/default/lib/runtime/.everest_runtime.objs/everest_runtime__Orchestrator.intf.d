lib/runtime/orchestrator.mli: Cluster Everest_autotune Everest_hls Everest_platform Goal Knowledge Node Protection Tuner Vfpga Vm
