lib/runtime/vm.ml: Cluster Everest_platform List Node Option Printf Spec
