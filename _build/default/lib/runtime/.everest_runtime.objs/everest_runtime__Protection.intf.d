lib/runtime/protection.mli: Everest_security Monitor
