lib/runtime/remoting.mli: Everest_platform
