lib/runtime/protection.ml: Cipher Everest_security List Monitor String
