lib/runtime/remoting.ml: Everest_platform
