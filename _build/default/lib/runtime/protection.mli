(** The data protection layer of the virtualized runtime (Fig. 2, item 1).

    Wraps the security monitors around named data streams; on anomalies it
    executes the auto-protection policy: quarantining sources, forcing
    encryption on a stream, or requesting a hardened variant from the
    adaptation layer. *)

open Everest_security

type stream_state = {
  sname : string;
  range_mon : Monitor.range_monitor;
  size_mon : Monitor.size_monitor;
  timing_mon : Monitor.timing_monitor;
  mutable quarantined : bool;
  mutable force_encryption : bool;
  mutable hardened_variant : string option;
  mutable alerts : Monitor.event list;
}

type t = {
  mutable streams : stream_state list;
  mutable total_alerts : int;
  mutable dropped_batches : int;
}

val create : unit -> t
val register : t -> string -> stream_state
val find : t -> string -> stream_state option

(** Feed known-good traffic into every monitor of the stream. *)
val train : stream_state -> values:float list -> bytes:int -> latency_s:float -> unit

val finalize : stream_state -> unit

(** Apply policy actions to the stream's state. *)
val apply_actions : t -> stream_state -> Monitor.action list -> unit

type admit_result = Accepted | Rejected of string

(** Admit one data batch: run every monitor; anomalies trigger the policy;
    quarantined streams reject. *)
val admit :
  t -> stream_state -> values:float list -> bytes:int -> latency_s:float -> admit_result

(** Extra transfer cost when encryption was forced on the stream. *)
val transfer_overhead_s :
  stream_state -> bytes:int -> accelerated:bool -> clock_hz:float -> float
