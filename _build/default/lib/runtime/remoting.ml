(* API remoting: guests reach accelerators through a paravirtual transport
   instead of direct device assignment ("API remoting techniques will
   improve data exchanges", paper §IV).

   Each remote call pays a fixed guest-host crossing cost; batching several
   calls amortizes it.  The model exposes the trade-off the runtime
   optimizes when it groups kernel invocations. *)

type transport = {
  per_call_s : float;  (* vmexit + marshalling *)
  per_kb_s : float;  (* shared-memory copy cost *)
  batch_limit : int;
}

let virtio_default = { per_call_s = 12e-6; per_kb_s = 0.08e-6; batch_limit = 64 }

let passthrough = { per_call_s = 1.5e-6; per_kb_s = 0.0; batch_limit = 1 }

(* Cost of issuing [calls] invocations carrying [bytes_per_call] each,
   batching up to [t.batch_limit] per crossing. *)
let cost t ~calls ~bytes_per_call =
  let crossings = (calls + t.batch_limit - 1) / t.batch_limit in
  (float_of_int crossings *. t.per_call_s)
  +. (float_of_int calls *. float_of_int bytes_per_call /. 1024.0 *. t.per_kb_s)

let amortization t ~calls ~bytes_per_call =
  let unbatched =
    float_of_int calls *. (t.per_call_s +. (float_of_int bytes_per_call /. 1024.0 *. t.per_kb_s))
  in
  let batched = cost t ~calls ~bytes_per_call in
  if batched = 0.0 then 1.0 else unbatched /. batched

(* Issue a remoted accelerator invocation inside the simulation. *)
let invoke sim t ~calls ~bytes_per_call k =
  Everest_platform.Desim.schedule sim (cost t ~calls ~bytes_per_call) k
