(** vFPGA manager (paper ref [33]): virtualizes physical FPGA role slots
    into per-VM virtual FPGA contexts with tenant isolation (the shell/role
    privilege separation of cloudFPGA). *)

open Everest_platform

type vctx = {
  vf_id : int;
  owner_vm : int;
  dev : Node.fpga_dev;
  node : Node.t;
  mutable launches : int;
  mutable released : bool;
}

type t = {
  mutable contexts : vctx list;
  mutable next_id : int;
  mutable denied : int;  (** Isolation violations blocked. *)
}

val create : unit -> t

exception No_fpga of string
exception Isolation_violation of string

(** Allocate a context on the least-loaded device of the VM's host.
    @raise No_fpga when the host has none. *)
val allocate : t -> vm:Vm.t -> vctx

val release : t -> vctx -> unit

(** Launch a kernel on a vFPGA on behalf of [vm]; the caller must own the
    context.
    @raise Isolation_violation on cross-tenant or released-context use. *)
val launch :
  t ->
  Desim.t ->
  vm:Vm.t ->
  ctx:vctx ->
  bitstream:string ->
  estimate:Everest_hls.Estimate.t ->
  in_bytes:int ->
  out_bytes:int ->
  (unit -> unit) ->
  unit

val active_contexts : t -> int
