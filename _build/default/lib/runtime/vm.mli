(** Virtual machines and the hypervisor layer (Fig. 2).

    VMs host application instances on a physical node; the hypervisor
    multiplexes cores, applies a virtualization overhead to guest compute,
    and exposes accelerators to guests through API remoting rather than raw
    device access. *)

open Everest_platform

type guest_isa = X86 | Arm | Riscv

type t = {
  vm_id : int;
  vm_name : string;
  vcpus : int;
  isa : guest_isa;
  host : Node.t;
  overhead : float;  (** Multiplicative slowdown on guest compute. *)
  mutable running : bool;
  mutable guest_tasks : int;
}

type hypervisor = {
  hnode : Node.t;
  mutable vms : t list;
  mutable next_id : int;
  default_overhead : float;
}

val hypervisor : ?default_overhead:float -> Node.t -> hypervisor
val vcpus_in_use : hypervisor -> int

exception Admission_failed of string

(** Admission control: vCPUs may not oversubscribe physical cores beyond
    2x.
    @raise Admission_failed when the limit would be exceeded. *)
val spawn :
  ?overhead:float option -> ?isa:guest_isa -> hypervisor -> name:string -> vcpus:int -> t

val stop : t -> unit

(** Guest compute: {!Node.run_cpu} paying the virtualization tax, capped at
    the VM's vCPUs.
    @raise Invalid_argument on stopped VMs. *)
val run_guest :
  Desim.t -> t -> flops:float -> bytes:float -> ?threads:int -> (unit -> unit) -> unit

(** Live migration: pay the memory copy, then continue with the moved VM. *)
val migrate :
  Desim.t -> Cluster.t -> t -> dst:Node.t -> mem_bytes:int -> (t -> unit) -> unit
