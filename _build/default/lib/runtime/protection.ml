(* The data protection layer of the virtualized runtime (Fig. 2, item 1).

   Wraps the security monitors around named data streams; on anomalies it
   executes the auto-protection policy: quarantining sources, forcing
   encryption on a stream, or requesting a hardened variant from the
   adaptation layer. *)

open Everest_security

type stream_state = {
  sname : string;
  range_mon : Monitor.range_monitor;
  size_mon : Monitor.size_monitor;
  timing_mon : Monitor.timing_monitor;
  mutable quarantined : bool;
  mutable force_encryption : bool;
  mutable hardened_variant : string option;
  mutable alerts : Monitor.event list;
}

type t = {
  mutable streams : stream_state list;
  mutable total_alerts : int;
  mutable dropped_batches : int;
}

let create () = { streams = []; total_alerts = 0; dropped_batches = 0 }

let register layer name =
  let s =
    { sname = name; range_mon = Monitor.range (); size_mon = Monitor.size ();
      timing_mon = Monitor.timing (); quarantined = false;
      force_encryption = false; hardened_variant = None; alerts = [] }
  in
  layer.streams <- s :: layer.streams;
  s

let find layer name =
  List.find_opt (fun s -> String.equal s.sname name) layer.streams

(* Training phase: feed known-good traffic. *)
let train (s : stream_state) ~values ~bytes ~latency_s =
  List.iter (Monitor.range_train s.range_mon) values;
  Monitor.size_train s.size_mon bytes;
  Monitor.timing_train s.timing_mon latency_s

let finalize (s : stream_state) =
  Monitor.range_finalize s.range_mon;
  Monitor.size_finalize s.size_mon;
  Monitor.timing_finalize s.timing_mon

let apply_actions layer s actions =
  List.iter
    (fun (a : Monitor.action) ->
      match a with
      | Monitor.Raise_alert -> ()
      | Monitor.Enable_encryption -> s.force_encryption <- true
      | Monitor.Quarantine_source -> s.quarantined <- true
      | Monitor.Switch_variant v -> s.hardened_variant <- Some v
      | Monitor.Throttle _ -> ())
    actions;
  ignore layer

type admit_result = Accepted | Rejected of string

(* Admit one data batch: run every monitor; anomalous batches trigger the
   policy and, if the stream becomes quarantined, rejection. *)
let admit layer (s : stream_state) ~values ~bytes ~latency_s : admit_result =
  if s.quarantined then begin
    layer.dropped_batches <- layer.dropped_batches + 1;
    Rejected "quarantined"
  end
  else begin
    let verdicts =
      List.map (fun v -> ("range", Monitor.range_check s.range_mon v)) values
      @ [ ("size", Monitor.size_check s.size_mon bytes);
          ("timing", Monitor.timing_check s.timing_mon latency_s) ]
    in
    let fired =
      List.filter_map
        (fun (m, v) ->
          match v with
          | Monitor.Anomalous reason -> Some (Monitor.classify_event m reason)
          | Monitor.Normal -> None)
        verdicts
    in
    List.iter
      (fun e ->
        layer.total_alerts <- layer.total_alerts + 1;
        s.alerts <- e :: s.alerts;
        apply_actions layer s (Monitor.policy e))
      fired;
    if s.quarantined then begin
      layer.dropped_batches <- layer.dropped_batches + 1;
      Rejected "quarantined by this batch"
    end
    else Accepted
  end

(* Extra cost the protection layer imposes on a transfer of [bytes] when
   encryption was forced on the stream. *)
let transfer_overhead_s (s : stream_state) ~bytes ~accelerated ~clock_hz =
  if s.force_encryption then
    Cipher.encryption_time_s ~bytes ~accelerated ~clock_hz
  else 0.0
