(* Virtual machines and the hypervisor layer (Fig. 2).

   VMs host application instances on a physical node; the hypervisor
   multiplexes cores, applies a virtualization overhead to guest compute,
   and exposes accelerators to guests through API remoting (below) rather
   than raw device access. *)

open Everest_platform

type guest_isa = X86 | Arm | Riscv

type t = {
  vm_id : int;
  vm_name : string;
  vcpus : int;
  isa : guest_isa;
  host : Node.t;
  overhead : float;  (* multiplicative slowdown on guest compute, e.g. 1.05 *)
  mutable running : bool;
  mutable guest_tasks : int;
}

type hypervisor = {
  hnode : Node.t;
  mutable vms : t list;
  mutable next_id : int;
  default_overhead : float;
}

let hypervisor ?(default_overhead = 1.05) node =
  { hnode = node; vms = []; next_id = 0; default_overhead }

let vcpus_in_use h =
  List.fold_left (fun acc vm -> if vm.running then acc + vm.vcpus else acc) 0 h.vms

exception Admission_failed of string

(* Admission control: vCPUs may not oversubscribe physical cores beyond 2x. *)
let spawn ?(overhead = None) ?(isa = X86) h ~name ~vcpus =
  let limit = 2 * h.hnode.Node.cpu.Spec.cores in
  if vcpus_in_use h + vcpus > limit then
    raise
      (Admission_failed
         (Printf.sprintf "vm %s: %d vCPUs exceed 2x oversubscription (%d in use, %d max)"
            name vcpus (vcpus_in_use h) limit));
  let vm =
    { vm_id = h.next_id; vm_name = name; vcpus; isa; host = h.hnode;
      overhead = Option.value ~default:h.default_overhead overhead;
      running = true; guest_tasks = 0 }
  in
  h.next_id <- h.next_id + 1;
  h.vms <- vm :: h.vms;
  vm

let stop vm = vm.running <- false

(* Guest compute: like Node.run_cpu but paying the virtualization tax and
   capped at the VM's vCPUs. *)
let run_guest sim (vm : t) ~flops ~bytes ?(threads = 1) k =
  if not vm.running then invalid_arg (vm.vm_name ^ ": stopped VM");
  let threads = max 1 (min threads vm.vcpus) in
  Node.run_cpu sim vm.host ~flops:(flops *. vm.overhead) ~bytes ~threads
    (fun () ->
      vm.guest_tasks <- vm.guest_tasks + 1;
      k ())

(* Live migration: move a VM to another node, paying for the memory copy. *)
let migrate sim cluster (vm : t) ~(dst : Node.t) ~mem_bytes k =
  Cluster.transfer cluster ~src:vm.host ~dst ~bytes:mem_bytes (fun () ->
      let vm' = { vm with host = dst } in
      ignore sim;
      k vm')
