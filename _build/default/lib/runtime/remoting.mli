(** API remoting: guests reach accelerators through a paravirtual transport
    instead of direct device assignment ("API remoting techniques will
    improve data exchanges", paper §IV).

    Each remote call pays a fixed guest-host crossing cost; batching
    amortizes it. *)

type transport = {
  per_call_s : float;  (** vmexit + marshalling. *)
  per_kb_s : float;  (** Shared-memory copy cost. *)
  batch_limit : int;
}

val virtio_default : transport
val passthrough : transport

(** Cost of [calls] invocations carrying [bytes_per_call] each, batched up
    to [batch_limit] per crossing. *)
val cost : transport -> calls:int -> bytes_per_call:int -> float

(** Unbatched-to-batched cost ratio. *)
val amortization : transport -> calls:int -> bytes_per_call:int -> float

(** Issue a remoted invocation inside the simulation. *)
val invoke :
  Everest_platform.Desim.t ->
  transport ->
  calls:int ->
  bytes_per_call:int ->
  (unit -> unit) ->
  unit
