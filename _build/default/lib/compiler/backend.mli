(** Back-end: emission of the selected variants.

    Software variants become SYCL-like C++ kernels ("the backend will
    generate software implementation relying on state-of-the-art
    programming models (e.g. SYCL)"); hardware variants reference the
    generated RTL; variant metadata is serialized for the runtime
    selector. *)

(** SYCL-like source of a software variant. *)
val emit_sycl :
  kernel:string -> Everest_dsl.Tensor_expr.expr -> Cost_model.sw_params -> string

(** Invocation stub plus the RTL sketch of a hardware variant.
    @raise Invalid_argument on software variants. *)
val emit_hw_stub : kernel:string -> Variants.variant -> string

(** Variant metadata as an IR attribute (a list of dictionaries). *)
val metadata : Variants.variant list -> Everest_ir.Attr.t
