(** Bufferization + tensor-to-loops lowering.

    Value-semantics tensor ops become [scf.for] loop nests over 1-D memrefs
    (row-major linearization).  This is the software-lowering leg of Fig. 1:
    the lowered inner loop bodies are exactly what the HLS flow consumes
    for the hardware leg; the test suite checks semantic equivalence
    against the tensor-level interpreter.

    Supported: fill, elementwise, scale, matmul, transpose, reshape,
    reduce.  [tensor.contract] stays at tensor level. *)

exception Unsupported of string

(** Memref counterpart of a tensor type (1-D, linearized). *)
val buf_type : Everest_ir.Types.t -> Everest_ir.Types.t

(** Lower a function: tensor arguments and results become memrefs.
    @raise Unsupported on dynamic shapes or unhandled tensor ops. *)
val lower_func : Everest_ir.Ir.ctx -> Everest_ir.Ir.func -> Everest_ir.Ir.func

val lower_module : Everest_ir.Ir.ctx -> Everest_ir.Ir.modul -> Everest_ir.Ir.modul

(** The lowering as a pipeline pass. *)
val pass : Everest_ir.Pass.t

(** Deepest [scf.for] body (ops plus induction variable): the candidate the
    HLS flow synthesizes. *)
val innermost_body :
  Everest_ir.Ir.func -> (Everest_ir.Ir.op list * Everest_ir.Ir.value) option
