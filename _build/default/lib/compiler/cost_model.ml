(* Analytical cost models for software variants (the "high-level
   architecture models" of the middle-end, Fig. 1).

   The models capture the first-order effects the paper's variant space is
   built on: tiling improves reuse for contraction-like kernels, SoA layout
   improves effective streaming bandwidth, threading scales compute but
   shares memory bandwidth. *)

open Everest_dsl

type layout = Aos | Soa

let layout_name = function Aos -> "aos" | Soa -> "soa"

type sw_params = { tile : int option; layout : layout; threads : int }

let variant_name (p : sw_params) =
  Printf.sprintf "sw-%s%s-t%d" (layout_name p.layout)
    (match p.tile with None -> "" | Some t -> Printf.sprintf "-tile%d" t)
    p.threads

(* Does the expression contain a contraction (matmul/einsum) that benefits
   from tiling? *)
let rec has_contraction (e : Tensor_expr.expr) =
  match e.Tensor_expr.node with
  | Tensor_expr.Matmul _ | Tensor_expr.Contract _ -> true
  | Tensor_expr.Input _ | Tensor_expr.Const _ -> false
  | Tensor_expr.Binop (_, a, b) -> has_contraction a || has_contraction b
  | Tensor_expr.Unop (_, a) | Tensor_expr.Scale (_, a) | Tensor_expr.Transpose a
  | Tensor_expr.Reshape a | Tensor_expr.Reduce (_, a) ->
      has_contraction a

(* Memory traffic in bytes for one evaluation under [params].

   Contraction kernels: naive traffic re-reads operands per output element;
   a tile of size T gives ~T-fold reuse, floored at compulsory traffic.
   Streaming kernels: compulsory traffic, scaled by layout efficiency. *)
let traffic_bytes (e : Tensor_expr.expr) (p : sw_params) =
  let compulsory = float_of_int (Tensor_expr.bytes_moved e) in
  if has_contraction e then begin
    let flops = float_of_int (Tensor_expr.flops e) in
    (* naive: ~one 8-byte operand read per multiply-add pair *)
    let naive = 4.0 *. flops in
    match p.tile with
    | None -> Float.max compulsory naive
    | Some t ->
        Float.max compulsory (naive /. float_of_int t)
  end
  else compulsory

(* Effective bandwidth multiplier of the layout: SoA streams unit-stride;
   AoS wastes bandwidth on interleaved fields for streaming kernels. *)
let layout_efficiency (e : Tensor_expr.expr) = function
  | Soa -> 1.0
  | Aos -> if has_contraction e then 0.95 else 0.6

let sw_time (cpu : Everest_platform.Spec.cpu) (e : Tensor_expr.expr)
    (p : sw_params) =
  let flops = float_of_int (Tensor_expr.flops e) in
  let threads = max 1 (min p.threads cpu.Everest_platform.Spec.cores) in
  let compute =
    flops
    /. (float_of_int threads
       *. cpu.Everest_platform.Spec.freq_ghz *. 1e9
       *. cpu.Everest_platform.Spec.flops_per_cycle)
  in
  (* untiled contractions also lose compute efficiency to stalls *)
  let compute =
    if has_contraction e && p.tile = None then compute *. 2.0 else compute
  in
  let bw =
    cpu.Everest_platform.Spec.mem_bw_gbs *. 1e9 *. layout_efficiency e p.layout
  in
  let memory = traffic_bytes e p /. bw in
  (* parallel threads share the memory system *)
  Float.max compute memory

let sw_energy (cpu : Everest_platform.Spec.cpu) (e : Tensor_expr.expr)
    (p : sw_params) =
  let t = sw_time cpu e p in
  let threads = max 1 (min p.threads cpu.Everest_platform.Spec.cores) in
  t
  *. (cpu.Everest_platform.Spec.idle_w
     +. (float_of_int threads *. cpu.Everest_platform.Spec.active_w_per_core))
