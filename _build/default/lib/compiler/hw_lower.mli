(** Construction of HLS-ready data-flow graphs from tensor expressions.

    For hardware variants the compiler extracts the per-element inner-loop
    body of the expression (loads, arithmetic, one store), replicates it
    [unroll] times and hands the DFG to the HLS flow — the "chain of tensor
    operations directly on the FPGA logic" of §III-B. *)

(** Scalar operations needed per output element. *)
val elem_ops : Everest_dsl.Tensor_expr.expr -> int

(** Inner-loop body DFG; [unroll] replicates with shifted affine offsets. *)
val dfg_of_expr : ?unroll:int -> Everest_dsl.Tensor_expr.expr -> Everest_hls.Cdfg.t

(** Pipelined trip count of the whole kernel at the given unroll factor. *)
val trips : Everest_dsl.Tensor_expr.expr -> unroll:int -> int
