(* Generation of hardware and software variants (Fig. 1, middle-end).

   Every kernel is expanded into a set of implementation candidates with
   estimated metrics; the DSE prunes them; survivors become the operating
   points the runtime selects among. *)

open Everest_dsl
open Everest_platform

type target = {
  cpu : Spec.cpu;
  fpga : Spec.fpga option;
  sw_tiles : int list;
  sw_threads : int list;
  hw_unrolls : int list;
}

let default_target =
  { cpu = Spec.power9; fpga = Some Spec.bus_fpga; sw_tiles = [ 16; 32; 64 ];
    sw_threads = [ 1; 2; 4; 8; 16 ]; hw_unrolls = [ 1; 4; 16; 64; 256 ] }

type impl =
  | Sw of Cost_model.sw_params
  | Hw of { unroll : int; design : Everest_hls.Hls.design }

type variant = {
  vname : string;
  impl : impl;
  time_s : float;
  energy_j : float;
  area_luts : int;  (* 0 for software *)
}

let in_out_bytes (e : Tensor_expr.expr) =
  let ins =
    List.fold_left
      (fun acc (_, s) -> acc + (8 * Tensor_expr.num_elems s))
      0 (Tensor_expr.inputs e)
  in
  (ins, 8 * Tensor_expr.num_elems (Tensor_expr.shape e))

let sw_variants (t : target) (e : Tensor_expr.expr) : variant list =
  let tiles =
    if Cost_model.has_contraction e then
      None :: List.map (fun x -> Some x) t.sw_tiles
    else [ None ]
  in
  List.concat_map
    (fun tile ->
      List.concat_map
        (fun layout ->
          List.map
            (fun threads ->
              let p = { Cost_model.tile; layout; threads } in
              {
                vname = Cost_model.variant_name p;
                impl = Sw p;
                time_s = Cost_model.sw_time t.cpu e p;
                energy_j = Cost_model.sw_energy t.cpu e p;
                area_luts = 0;
              })
            t.sw_threads)
        [ Cost_model.Aos; Cost_model.Soa ])
    tiles

let hw_variants (t : target) ?(dift = false) (e : Tensor_expr.expr) :
    variant list =
  match t.fpga with
  | None -> []
  | Some fpga ->
      let in_bytes, out_bytes = in_out_bytes e in
      let total_work = Hw_lower.trips e ~unroll:1 in
      List.filter_map
        (fun unroll ->
          if unroll > 1 && unroll * 4 > total_work then None
          else
          let dfg = Hw_lower.dfg_of_expr ~unroll e in
          let trips = Hw_lower.trips e ~unroll in
          let c =
            { Everest_hls.Hls.default_constraints with
              Everest_hls.Hls.clock_mhz = fpga.Spec.clock_mhz;
              unroll; trips; dift; max_banks = max 16 unroll;
              res =
                { Everest_hls.Schedule.default_resources with
                  Everest_hls.Schedule.adders = 2 * unroll;
                  multipliers = 2 * unroll; mem_ports = 2 } }
          in
          let design = Everest_hls.Hls.synthesize ~c dfg in
          let est = design.Everest_hls.Hls.estimate in
          if not (Everest_hls.Estimate.fits ~budget:(Spec.fpga_budget fpga) est)
          then None
          else
            let link =
              match fpga.Spec.attach with
              | Spec.Bus_coherent -> Spec.opencapi
              | Spec.Network_attached -> Spec.eth100_tcp
            in
            let t_exec = Spec.fpga_kernel_time fpga est in
            let t_io =
              Spec.transfer_time link ~bytes:in_bytes
              +. Spec.transfer_time link ~bytes:out_bytes
            in
            let time_s = t_exec +. t_io in
            Some
              {
                vname =
                  Printf.sprintf "hw-u%d%s" unroll (if dift then "-dift" else "");
                impl = Hw { unroll; design };
                time_s;
                energy_j =
                  (t_exec *. est.Everest_hls.Estimate.dynamic_power_w)
                  +. (t_io *. 0.2 *. fpga.Spec.active_w);
                area_luts = est.Everest_hls.Estimate.area.Everest_hls.Estimate.luts;
              })
        t.hw_unrolls

(* All variants of a kernel under a target.  Security annotations requiring
   confidentiality force DIFT-instrumented hardware variants. *)
let generate ?(target = default_target) ?(annots = []) (e : Tensor_expr.expr) :
    variant list =
  let need_dift =
    Everest_ir.Dialect_sec.level_leq Everest_ir.Dialect_sec.Confidential
      (Annot.security_level annots)
  in
  sw_variants target e @ hw_variants target ~dift:need_dift e

(* ---- Pareto filtering ------------------------------------------------------------ *)

(* Keep the points not dominated in (time, energy, area). *)
let dominates a b =
  a.time_s <= b.time_s && a.energy_j <= b.energy_j
  && a.area_luts <= b.area_luts
  && (a.time_s < b.time_s || a.energy_j < b.energy_j || a.area_luts < b.area_luts)

let pareto (vs : variant list) =
  List.filter (fun v -> not (List.exists (fun w -> dominates w v) vs)) vs

(* ---- bridges to the runtime -------------------------------------------------------- *)

let to_knowledge ~kernel ?(features = []) (vs : variant list) :
    Everest_autotune.Knowledge.t =
  Everest_autotune.Knowledge.create kernel
    (List.map
       (fun v ->
         { Everest_autotune.Knowledge.variant = v.vname; features;
           metrics =
             [ ("time_s", v.time_s); ("energy_j", v.energy_j);
               ("area_luts", float_of_int v.area_luts) ] })
       vs)

let to_dag_impl (e : Tensor_expr.expr) (v : variant) : Everest_workflow.Dag.impl =
  let in_bytes, out_bytes = in_out_bytes e in
  match v.impl with
  | Sw p ->
      Everest_workflow.Dag.Cpu
        { flops = float_of_int (Tensor_expr.flops e);
          bytes = Cost_model.traffic_bytes e p;
          threads = p.Cost_model.threads }
  | Hw { design; _ } ->
      Everest_workflow.Dag.Fpga
        { bitstream = v.vname; estimate = design.Everest_hls.Hls.estimate;
          in_bytes; out_bytes }

let pp ppf v =
  Fmt.pf ppf "%-20s %.3es %.3eJ %7d LUT" v.vname v.time_s v.energy_j v.area_luts
