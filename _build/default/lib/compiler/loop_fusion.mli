(** Producer-consumer loop fusion.

    The tensor-to-loops lowering emits one loop nest per tensor op; chains
    of elementwise ops become chains of identical-range loops communicating
    through intermediate buffers.  Fusion merges a producer loop into its
    consumer when the ranges match, the producer stores exactly once at the
    induction variable and the consumer only loads that buffer at its own
    induction variable — replacing the loads by the produced value.

    Fusing shrinks memory traffic and hands the HLS flow one larger body —
    a concrete instance of the paper's "co-optimize computation,
    communication and storage". *)

(** Fuse to fixpoint within a function body (top-level loops only). *)
val fuse_func : Everest_ir.Ir.ctx -> Everest_ir.Ir.func -> Everest_ir.Ir.func

val fuse_module : Everest_ir.Ir.ctx -> Everest_ir.Ir.modul -> Everest_ir.Ir.modul

(** The fusion as a pipeline pass. *)
val pass : Everest_ir.Pass.t

(** Number of [scf.for] ops in the function (for tests and reports). *)
val count_loops : Everest_ir.Ir.func -> int
