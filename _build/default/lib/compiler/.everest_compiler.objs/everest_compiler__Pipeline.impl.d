lib/compiler/pipeline.ml: Annot Backend Dataflow Dse Everest_autotune Everest_dsl Everest_ir Everest_security Everest_workflow Fmt List Lower String Tensor_expr Variants
