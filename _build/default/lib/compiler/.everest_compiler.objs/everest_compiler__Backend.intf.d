lib/compiler/backend.mli: Cost_model Everest_dsl Everest_ir Variants
