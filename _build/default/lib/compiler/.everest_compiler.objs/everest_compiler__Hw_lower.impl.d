lib/compiler/hw_lower.ml: Cdfg Everest_dsl Everest_hls List Tensor_expr
