lib/compiler/loop_fusion.ml: Attr Dialect_arith Dialect_scf Everest_ir Fun Hashtbl Ir List Option Pass String
