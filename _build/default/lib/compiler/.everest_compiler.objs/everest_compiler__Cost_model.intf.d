lib/compiler/cost_model.mli: Everest_dsl Everest_platform
