lib/compiler/loops.ml: Dialect_arith Dialect_memref Dialect_scf Everest_ir Hashtbl Ir List Option String Types
