lib/compiler/loops.mli: Everest_ir
