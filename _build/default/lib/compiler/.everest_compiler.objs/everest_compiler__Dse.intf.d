lib/compiler/dse.mli: Everest_dsl Variants
