lib/compiler/hw_lower.mli: Everest_dsl Everest_hls
