lib/compiler/dse.ml: Array Cost_model Everest_dsl List Tensor_expr Variants
