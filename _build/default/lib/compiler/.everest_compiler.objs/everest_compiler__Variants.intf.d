lib/compiler/variants.mli: Cost_model Everest_autotune Everest_dsl Everest_hls Everest_platform Everest_workflow Format Spec
