lib/compiler/backend.ml: Buffer Cost_model Everest_dsl Everest_hls Everest_ir List Printf String Tensor_expr Variants
