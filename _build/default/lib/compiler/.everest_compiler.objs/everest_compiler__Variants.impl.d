lib/compiler/variants.ml: Annot Cost_model Everest_autotune Everest_dsl Everest_hls Everest_ir Everest_platform Everest_workflow Fmt Hw_lower List Printf Spec Tensor_expr
