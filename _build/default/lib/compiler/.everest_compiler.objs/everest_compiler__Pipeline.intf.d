lib/compiler/pipeline.mli: Dse Everest_autotune Everest_dsl Everest_ir Everest_security Everest_workflow Format Variants
