lib/compiler/cost_model.ml: Everest_dsl Everest_platform Float Printf Tensor_expr
