lib/compiler/loop_fusion.mli: Everest_ir
