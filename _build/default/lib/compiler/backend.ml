(* Back-end: emission of the selected variants.

   Software variants are emitted as SYCL-like C++ kernels ("the backend will
   generate software implementation relying on state-of-the-art programming
   models (e.g. SYCL)"); hardware variants reference the generated RTL.
   Variant metadata is serialized for the runtime selector. *)

open Everest_dsl

let rec emit_expr buf (e : Tensor_expr.expr) =
  let open Tensor_expr in
  match e.node with
  | Input n -> Buffer.add_string buf n
  | Const v -> Buffer.add_string buf (Printf.sprintf "%gf" v)
  | Binop (op, a, b) ->
      Buffer.add_char buf '(';
      emit_expr buf a;
      Buffer.add_string buf
        (match op with
        | Add -> " + " | Sub -> " - " | Mul -> " * " | Div -> " / "
        | Max -> " /*max*/ , " | Min -> " /*min*/ , ");
      emit_expr buf b;
      Buffer.add_char buf ')'
  | Unop (op, a) ->
      Buffer.add_string buf
        (match op with
        | Relu -> "sycl::max(0.0f, " | Sigmoid -> "sigmoid(" | Tanh -> "sycl::tanh("
        | Exp -> "sycl::exp(" | Neg -> "-(" | Sqrt -> "sycl::sqrt(");
      emit_expr buf a;
      Buffer.add_char buf ')'
  | Scale (k, a) ->
      Buffer.add_string buf (Printf.sprintf "(%gf * " k);
      emit_expr buf a;
      Buffer.add_char buf ')'
  | Matmul (a, b) ->
      Buffer.add_string buf "matmul(";
      emit_expr buf a;
      Buffer.add_string buf ", ";
      emit_expr buf b;
      Buffer.add_char buf ')'
  | Transpose a ->
      Buffer.add_string buf "transpose(";
      emit_expr buf a;
      Buffer.add_char buf ')'
  | Reshape a -> emit_expr buf a
  | Reduce (_, a) ->
      Buffer.add_string buf "reduce(";
      emit_expr buf a;
      Buffer.add_char buf ')'
  | Contract (spec, es) ->
      Buffer.add_string buf (Printf.sprintf "einsum<\"%s\">(" spec);
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          emit_expr buf x)
        es;
      Buffer.add_char buf ')'

let emit_sycl ~kernel (e : Tensor_expr.expr) (p : Cost_model.sw_params) =
  let buf = Buffer.create 512 in
  let ins = Tensor_expr.inputs e in
  Buffer.add_string buf
    (Printf.sprintf "// variant: %s\n" (Cost_model.variant_name p));
  Buffer.add_string buf
    (Printf.sprintf "void %s(sycl::queue &q%s) {\n" kernel
       (String.concat ""
          (List.map
             (fun (n, s) ->
               Printf.sprintf ", sycl::buffer<float,%d> &%s"
                 (max 1 (List.length s)) n)
             ins)));
  (match p.Cost_model.tile with
  | Some t ->
      Buffer.add_string buf
        (Printf.sprintf "  constexpr int TILE = %d;  // blocked for reuse\n" t)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "  // layout: %s\n"
       (Cost_model.layout_name p.Cost_model.layout));
  Buffer.add_string buf
    (Printf.sprintf
       "  q.parallel_for(sycl::nd_range<1>{N, %d}, [=](sycl::nd_item<1> it) {\n"
       p.Cost_model.threads);
  Buffer.add_string buf "    out[it.get_global_id(0)] = ";
  emit_expr buf e;
  Buffer.add_string buf ";\n  });\n}\n";
  Buffer.contents buf

let emit_hw_stub ~kernel (v : Variants.variant) =
  match v.Variants.impl with
  | Variants.Hw { design; unroll } ->
      Printf.sprintf
        "// hardware variant %s: unroll=%d, %d cycles, II=%d\n// bitstream: %s.bit\n%s"
        v.Variants.vname unroll
        design.Everest_hls.Hls.estimate.Everest_hls.Estimate.cycles
        design.Everest_hls.Hls.estimate.Everest_hls.Estimate.ii kernel
        (Everest_hls.Rtl.to_string design.Everest_hls.Hls.rtl)
  | Variants.Sw _ -> invalid_arg "emit_hw_stub: software variant"

(* Variant metadata for the runtime, as an IR attribute dictionary. *)
let metadata (vs : Variants.variant list) : Everest_ir.Attr.t =
  Everest_ir.Attr.list
    (List.map
       (fun v ->
         Everest_ir.Attr.dict
           [ ("name", Everest_ir.Attr.str v.Variants.vname);
             ("time_s", Everest_ir.Attr.float v.Variants.time_s);
             ("energy_j", Everest_ir.Attr.float v.Variants.energy_j);
             ("area_luts", Everest_ir.Attr.int v.Variants.area_luts) ])
       vs)
