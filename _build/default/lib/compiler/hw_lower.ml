(* Construction of HLS-ready data-flow graphs from tensor expressions.

   For hardware variants the compiler extracts the per-element inner-loop
   body of the expression (a chain of loads, arithmetic and one store),
   replicates it [unroll] times and hands the DFG to the HLS flow — the
   "chain of tensor operations directly on the FPGA logic before writing
   back to main memory" of §III-B. *)

open Everest_dsl

(* Per-element operation count of one output element. *)
let rec elem_ops (e : Tensor_expr.expr) =
  match e.Tensor_expr.node with
  | Tensor_expr.Input _ | Tensor_expr.Const _ -> 0
  | Tensor_expr.Binop (_, a, b) -> 1 + elem_ops a + elem_ops b
  | Tensor_expr.Unop (_, a) | Tensor_expr.Scale (_, a) -> 1 + elem_ops a
  | Tensor_expr.Matmul (a, b) ->
      (* per output element: k multiply-adds *)
      let k = match a.Tensor_expr.shape with [ _; k ] -> k | _ -> 1 in
      (2 * k) + elem_ops a + elem_ops b
  | Tensor_expr.Transpose a | Tensor_expr.Reshape a -> elem_ops a
  | Tensor_expr.Reduce (_, a) -> 1 + elem_ops a
  | Tensor_expr.Contract (_, es) ->
      2 + List.fold_left (fun acc x -> acc + elem_ops x) 0 es

(* Build the inner-loop body DFG.  Each input contributes a load; the
   expression tree contributes arithmetic nodes; the root ends in a store.
   [unroll] replicates the body with shifted affine offsets. *)
let dfg_of_expr ?(unroll = 1) (e : Tensor_expr.expr) : Everest_hls.Cdfg.t =
  let open Everest_hls in
  let b = Cdfg.builder () in
  let inputs = Tensor_expr.inputs e in
  List.iter
    (fun (name, shape) ->
      Cdfg.declare_array b name (max 1 (Tensor_expr.num_elems shape)))
    inputs;
  Cdfg.declare_array b "out" (max 1 (Tensor_expr.num_elems (Tensor_expr.shape e)));
  for u = 0 to unroll - 1 do
    let rec build (e : Tensor_expr.expr) : int =
      match e.Tensor_expr.node with
      | Tensor_expr.Input name ->
          Cdfg.add_node b ~array:name
            ~index:(Cdfg.Affine { coeff = 1; offset = u })
            Cdfg.Load "load" []
      | Tensor_expr.Const _ -> Cdfg.add_node b Cdfg.Const "const" []
      | Tensor_expr.Binop (op, x, y) ->
          let nx = build x and ny = build y in
          let cls =
            match op with
            | Tensor_expr.Mul -> Cdfg.Mul
            | Tensor_expr.Div -> Cdfg.Div
            | _ -> Cdfg.Add
          in
          Cdfg.add_node b cls "binop" [ nx; ny ]
      | Tensor_expr.Unop (op, x) ->
          let nx = build x in
          let cls =
            match op with
            | Tensor_expr.Sqrt | Tensor_expr.Exp | Tensor_expr.Sigmoid
            | Tensor_expr.Tanh ->
                Cdfg.Div  (* long-latency transcendental units *)
            | _ -> Cdfg.Add
          in
          Cdfg.add_node b cls "unop" [ nx ]
      | Tensor_expr.Scale (_, x) ->
          let nx = build x in
          Cdfg.add_node b Cdfg.Mul "scale" [ nx ]
      | Tensor_expr.Matmul (x, y) ->
          (* inner product step: mul + accumulate over both operands *)
          let nx = build x and ny = build y in
          let m = Cdfg.add_node b Cdfg.Mul "mac.mul" [ nx; ny ] in
          Cdfg.add_node b Cdfg.Add "mac.add" [ m ]
      | Tensor_expr.Transpose x | Tensor_expr.Reshape x -> build x
      | Tensor_expr.Reduce (_, x) ->
          let nx = build x in
          Cdfg.add_node b Cdfg.Add "reduce.acc" [ nx ]
      | Tensor_expr.Contract (_, es) ->
          let ns = List.map build es in
          let m =
            match ns with
            | a :: c :: _ -> Cdfg.add_node b Cdfg.Mul "contract.mul" [ a; c ]
            | [ a ] -> a
            | [] -> Cdfg.add_node b Cdfg.Const "const" []
          in
          Cdfg.add_node b Cdfg.Add "contract.acc" [ m ]
    in
    let root = build e in
    ignore
      (Cdfg.add_node b ~array:"out"
         ~index:(Cdfg.Affine { coeff = 1; offset = u })
         Cdfg.Store "store" [ root ])
  done;
  Cdfg.finish b

(* Trip count: elements of the output times per-element depth for
   contraction kernels (each trip = one MAC step). *)
let trips (e : Tensor_expr.expr) ~unroll =
  let out_elems = max 1 (Tensor_expr.num_elems (Tensor_expr.shape e)) in
  let inner =
    let rec k_of (e : Tensor_expr.expr) =
      match e.Tensor_expr.node with
      | Tensor_expr.Matmul (a, _) ->
          (match a.Tensor_expr.shape with [ _; k ] -> k | _ -> 1)
      | Tensor_expr.Binop (_, a, b) -> max (k_of a) (k_of b)
      | Tensor_expr.Unop (_, a) | Tensor_expr.Scale (_, a)
      | Tensor_expr.Transpose a | Tensor_expr.Reshape a
      | Tensor_expr.Reduce (_, a) ->
          k_of a
      | Tensor_expr.Contract (_, es) ->
          List.fold_left (fun m x -> max m (k_of x)) 2 es
      | _ -> 1
    in
    k_of e
  in
  max 1 (out_elems * inner / max 1 unroll)
