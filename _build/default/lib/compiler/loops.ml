(* Bufferization + tensor-to-loops lowering.

   Value-semantics tensor ops become scf.for loop nests over 1-D memrefs
   (row-major linearization, computed with arith ops on indices).  This is
   the software-lowering leg of Fig. 1: the lowered inner loop bodies are
   exactly what the HLS flow consumes for the hardware leg, and the test
   suite checks semantic equivalence against the tensor-level interpreter.

   Supported: fill, elementwise, scale, matmul, transpose, reshape, reduce.
   tensor.contract stays at tensor level (the DSE uses its analytic model). *)

open Everest_ir

exception Unsupported of string

let elems_of ty =
  match Types.num_elements ty with
  | Some n -> n
  | None -> raise (Unsupported "dynamic tensor shape")

let buf_type ty =
  match ty with
  | Types.Tensor { elt; _ } -> Types.memref elt [ elems_of ty ]
  | t -> t

(* Emit ops into an accumulator. *)
type emitter = { ctx : Ir.ctx; mutable acc : Ir.op list }

let emit e op = e.acc <- op :: e.acc; Ir.result op
let emit0 e op = e.acc <- op :: e.acc

let const_index e i = emit e (Dialect_arith.const_index e.ctx i)

(* for i = 0 .. n-1: body gets the induction value *)
let for_range e n body =
  let lo = const_index e 0 in
  let hi = const_index e n in
  let step = const_index e 1 in
  let loop =
    Dialect_scf.for_ e.ctx lo hi step (fun ctx iv _ ->
        let inner = { ctx; acc = [] } in
        body inner iv;
        (List.rev inner.acc, []))
  in
  emit0 e loop

(* like for_range but threads a float accumulator; returns the final value *)
let for_range_acc e n init body =
  let lo = const_index e 0 in
  let hi = const_index e n in
  let step = const_index e 1 in
  let loop =
    Dialect_scf.for_ e.ctx ~iter_args:[ init ] lo hi step (fun ctx iv args ->
        let inner = { ctx; acc = [] } in
        let next = body inner iv (List.hd args) in
        (List.rev inner.acc, [ next ]))
  in
  emit e loop

let alloc e elt n = emit e (Dialect_memref.alloc e.ctx elt [ n ])
let load e m i = emit e (Dialect_memref.load e.ctx m [ i ])
let store e v m i = emit0 e (Dialect_memref.store e.ctx v m [ i ])

let elt_of_tensor (v : Ir.value) =
  match v.Ir.vty with
  | Types.Tensor { elt; _ } -> elt
  | _ -> raise (Unsupported "expected tensor value")

let shape_of_tensor (v : Ir.value) =
  match v.Ir.vty with
  | Types.Tensor _ as t -> Types.static_shape_exn t
  | _ -> raise (Unsupported "expected tensor value")

let rec ew_scalar e kind operands =
  match (kind, operands) with
  | "add", [ a; b ] -> emit e (Dialect_arith.addf e.ctx a b)
  | "sub", [ a; b ] -> emit e (Dialect_arith.subf e.ctx a b)
  | "mul", [ a; b ] -> emit e (Dialect_arith.mulf e.ctx a b)
  | "div", [ a; b ] -> emit e (Dialect_arith.divf e.ctx a b)
  | "max", [ a; b ] -> emit e (Dialect_arith.maxf e.ctx a b)
  | "min", [ a; b ] -> emit e (Dialect_arith.minf e.ctx a b)
  | "neg", [ a ] -> emit e (Dialect_arith.negf e.ctx a)
  | "sqrt", [ a ] -> emit e (Dialect_arith.sqrtf e.ctx a)
  | "exp", [ a ] -> emit e (Dialect_arith.expf e.ctx a)
  | "relu", [ a ] ->
      let z = emit e (Dialect_arith.const_f e.ctx 0.0) in
      emit e (Dialect_arith.maxf e.ctx a z)
  | "sigmoid", [ a ] ->
      let one = emit e (Dialect_arith.const_f e.ctx 1.0) in
      let na = emit e (Dialect_arith.negf e.ctx a) in
      let ex = emit e (Dialect_arith.expf e.ctx na) in
      let denom = emit e (Dialect_arith.addf e.ctx one ex) in
      emit e (Dialect_arith.divf e.ctx one denom)
  | "tanh", [ a ] ->
      (* tanh x = 2*sigmoid(2x) - 1 *)
      let two = emit e (Dialect_arith.const_f e.ctx 2.0) in
      let one = emit e (Dialect_arith.const_f e.ctx 1.0) in
      let x2 = emit e (Dialect_arith.mulf e.ctx two a) in
      let s = ew_scalar e "sigmoid" [ x2 ] in
      let s2 = emit e (Dialect_arith.mulf e.ctx two s) in
      emit e (Dialect_arith.subf e.ctx s2 one)
  | k, _ -> raise (Unsupported ("elementwise kind " ^ k))

(* Lower one tensor-dialect op.  [env] maps tensor SSA ids to their buffer
   values; scalar values pass through unchanged. *)
let lower_op e (env : (int, Ir.value) Hashtbl.t) (o : Ir.op) =
  let buf_of (v : Ir.value) =
    match Hashtbl.find_opt env v.Ir.vid with
    | Some b -> b
    | None -> v  (* scalars and already-memref values *)
  in
  let bind_result buf = Hashtbl.replace env (Ir.result o).Ir.vid buf in
  match o.Ir.name with
  | "tensor.fill" ->
      let scalar = buf_of (List.hd o.Ir.operands) in
      let ty = (Ir.result o).Ir.vty in
      let n = elems_of ty in
      let out = alloc e (elt_of_tensor (Ir.result o)) n in
      for_range e n (fun inner iv -> store inner scalar out iv);
      bind_result out
  | "tensor.elementwise" ->
      let kind = Option.value ~default:"" (Ir.attr_str "kind" o) in
      let ins = List.map buf_of o.Ir.operands in
      let n = elems_of (Ir.result o).Ir.vty in
      let out = alloc e (elt_of_tensor (Ir.result o)) n in
      for_range e n (fun inner iv ->
          let vals = List.map (fun m -> load inner m iv) ins in
          let r = ew_scalar inner kind vals in
          store inner r out iv);
      bind_result out
  | "tensor.scale" ->
      let s = buf_of (List.nth o.Ir.operands 0) in
      let m = buf_of (List.nth o.Ir.operands 1) in
      let n = elems_of (Ir.result o).Ir.vty in
      let out = alloc e (elt_of_tensor (Ir.result o)) n in
      for_range e n (fun inner iv ->
          let x = load inner m iv in
          let r = emit inner (Dialect_arith.mulf inner.ctx s x) in
          store inner r out iv);
      bind_result out
  | "tensor.matmul" ->
      let a = buf_of (List.nth o.Ir.operands 0) in
      let b = buf_of (List.nth o.Ir.operands 1) in
      let m, k =
        match shape_of_tensor (List.nth o.Ir.operands 0) with
        | [ m; k ] -> (m, k)
        | _ -> raise (Unsupported "matmul rank")
      in
      let n =
        match shape_of_tensor (List.nth o.Ir.operands 1) with
        | [ _; n ] -> n
        | _ -> raise (Unsupported "matmul rank")
      in
      let out = alloc e (elt_of_tensor (Ir.result o)) (m * n) in
      for_range e m (fun e_i i ->
          for_range e_i n (fun e_j j ->
              let zero = emit e_j (Dialect_arith.const_f e_j.ctx 0.0) in
              let acc =
                for_range_acc e_j k zero (fun e_l l acc ->
                    (* a[i*k + l] * b[l*n + j] *)
                    let ck = const_index e_l k in
                    let cn = const_index e_l n in
                    let ik = emit e_l (Dialect_arith.muli e_l.ctx i ck) in
                    let ia = emit e_l (Dialect_arith.addi e_l.ctx ik l) in
                    let ln = emit e_l (Dialect_arith.muli e_l.ctx l cn) in
                    let ib = emit e_l (Dialect_arith.addi e_l.ctx ln j) in
                    let va = load e_l a ia in
                    let vb = load e_l b ib in
                    let p = emit e_l (Dialect_arith.mulf e_l.ctx va vb) in
                    emit e_l (Dialect_arith.addf e_l.ctx acc p))
              in
              let cn = const_index e_j n in
              let inj = emit e_j (Dialect_arith.muli e_j.ctx i cn) in
              let idx = emit e_j (Dialect_arith.addi e_j.ctx inj j) in
              store e_j acc out idx));
      bind_result out
  | "tensor.transpose" ->
      let a = buf_of (List.hd o.Ir.operands) in
      let m, n =
        match shape_of_tensor (List.hd o.Ir.operands) with
        | [ m; n ] -> (m, n)
        | _ -> raise (Unsupported "transpose rank")
      in
      let out = alloc e (elt_of_tensor (Ir.result o)) (m * n) in
      for_range e m (fun e_i i ->
          for_range e_i n (fun e_j j ->
              let cn = const_index e_j n in
              let cm = const_index e_j m in
              let src = emit e_j (Dialect_arith.muli e_j.ctx i cn) in
              let src = emit e_j (Dialect_arith.addi e_j.ctx src j) in
              let dst = emit e_j (Dialect_arith.muli e_j.ctx j cm) in
              let dst = emit e_j (Dialect_arith.addi e_j.ctx dst i) in
              let v = load e_j a src in
              store e_j v out dst));
      bind_result out
  | "tensor.reshape" ->
      (* same linearized contents: copy into a fresh buffer *)
      let a = buf_of (List.hd o.Ir.operands) in
      let n = elems_of (Ir.result o).Ir.vty in
      let out = alloc e (elt_of_tensor (Ir.result o)) n in
      emit0 e (Dialect_memref.copy e.ctx a out);
      bind_result out
  | "tensor.reduce" ->
      let a = buf_of (List.hd o.Ir.operands) in
      let kind = Option.value ~default:"add" (Ir.attr_str "kind" o) in
      let n = elems_of (List.hd o.Ir.operands).Ir.vty in
      let init, combine =
        match kind with
        | "add" -> (0.0, fun e x acc -> emit e (Dialect_arith.addf e.ctx acc x))
        | "mul" -> (1.0, fun e x acc -> emit e (Dialect_arith.mulf e.ctx acc x))
        | "max" ->
            (neg_infinity, fun e x acc -> emit e (Dialect_arith.maxf e.ctx acc x))
        | "min" ->
            (infinity, fun e x acc -> emit e (Dialect_arith.minf e.ctx acc x))
        | k -> raise (Unsupported ("reduce kind " ^ k))
      in
      let z = emit e (Dialect_arith.const_f e.ctx init) in
      let total =
        for_range_acc e n z (fun inner iv acc ->
            let x = load inner a iv in
            combine inner x acc)
      in
      (* scalar result: substitute directly *)
      Hashtbl.replace env (Ir.result o).Ir.vid total
  | "func.return" ->
      emit0 e
        { o with Ir.operands = List.map buf_of o.Ir.operands }
  | name when String.length name > 7 && String.sub name 0 7 = "tensor." ->
      raise (Unsupported name)
  | _ ->
      (* scalar/other op: remap operands and keep *)
      emit0 e { o with Ir.operands = List.map buf_of o.Ir.operands }

(* Lower a whole function: tensor arguments and results become memrefs. *)
let lower_func ctx (f : Ir.func) : Ir.func =
  let env : (int, Ir.value) Hashtbl.t = Hashtbl.create 32 in
  let new_args =
    List.map
      (fun (v : Ir.value) ->
        if Types.is_tensor v.Ir.vty then begin
          let b = Ir.fresh_value ctx (buf_type v.Ir.vty) in
          Hashtbl.replace env v.Ir.vid b;
          b
        end
        else v)
      f.Ir.fargs
  in
  let e = { ctx; acc = [] } in
  List.iter (fun o -> lower_op e env o) f.Ir.fbody;
  let new_rets = List.map buf_type f.Ir.fret_types in
  {
    f with
    Ir.fargs = new_args;
    fret_types = new_rets;
    fbody = List.rev e.acc;
  }

let lower_module ctx (m : Ir.modul) : Ir.modul =
  { m with Ir.funcs = List.map (lower_func ctx) m.Ir.funcs }

let pass = Everest_ir.Pass.make "tensor-to-loops" lower_module

(* The innermost loop body of the first (deepest) scf.for nest: what the
   HLS flow synthesizes.  Returns the ops plus the induction variable. *)
let innermost_body (f : Ir.func) : (Ir.op list * Ir.value) option =
  let best = ref None in
  let rec walk depth ops =
    List.iter
      (fun (o : Ir.op) ->
        if String.equal o.Ir.name "scf.for" then
          match o.Ir.regions with
          | [ [ b ] ] ->
              let has_nested =
                List.exists (fun (q : Ir.op) -> String.equal q.Ir.name "scf.for") b.Ir.body
              in
              if not has_nested then begin
                match !best with
                | Some (d, _, _) when d >= depth -> ()
                | _ -> best := Some (depth, b.Ir.body, List.hd b.Ir.bargs)
              end
              else walk (depth + 1) b.Ir.body
          | _ -> ()
        else
          List.iter
            (fun r -> List.iter (fun (b : Ir.block) -> walk depth b.Ir.body) r)
            o.Ir.regions)
      ops
  in
  walk 0 f.Ir.fbody;
  Option.map (fun (_, body, iv) -> (body, iv)) !best
