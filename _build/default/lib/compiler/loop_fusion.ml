(* Producer-consumer loop fusion.

   The tensor-to-loops lowering emits one loop nest per tensor op; chains of
   elementwise ops become chains of identical-range loops communicating
   through intermediate buffers.  Fusion merges a producer loop into its
   consumer when

     - both are constant-bound [scf.for] with the same lo/hi/step and no
       iteration arguments,
     - the producer stores exactly once, to [A] at the induction variable,
     - the consumer's accesses to [A] are loads at its induction variable,

   replacing the consumer's loads by the produced value.  The producer's
   store stays (the buffer may have other readers); DCE cleans it up when
   dead.  Fusing shrinks memory traffic and gives the HLS flow one larger
   body — a classic EVEREST "co-optimize computation and storage" step. *)

open Everest_ir

let const_of defs (v : Ir.value) =
  match Hashtbl.find_opt defs v.Ir.vid with
  | Some o -> (
      match Dialect_arith.const_value o with
      | Some (Attr.Int i) -> Some i
      | _ -> None)
  | None -> None

(* A fusible loop: constant bounds, no iter args, single block. *)
type loop_info = {
  lo : int;
  hi : int;
  step : int;
  iv : Ir.value;
  body : Ir.op list;  (* without the trailing yield *)
}

let loop_info defs (o : Ir.op) : loop_info option =
  if not (String.equal o.Ir.name "scf.for") then None
  else
    match (o.Ir.operands, o.Ir.results, o.Ir.regions) with
    | [ lo_v; hi_v; step_v ], [], [ [ b ] ] -> (
        match (const_of defs lo_v, const_of defs hi_v, const_of defs step_v) with
        | Some lo, Some hi, Some step ->
            let body =
              match List.rev b.Ir.body with
              | last :: rest when String.equal last.Ir.name "scf.yield" ->
                  List.rev rest
              | _ -> b.Ir.body
            in
            Some { lo; hi; step; iv = List.hd b.Ir.bargs; body }
        | _ -> None)
    | _ -> None

(* All producer stores, each required to be [A[iv] <- v] at top level of a
   straight-line body; [None] when the body nests regions or stores
   elsewhere. *)
let iv_stores (info : loop_info) =
  if List.exists (fun (o : Ir.op) -> o.Ir.regions <> []) info.body then None
  else
    List.fold_left
      (fun acc (o : Ir.op) ->
        match acc with
        | None -> None
        | Some stores ->
            if String.equal o.Ir.name "memref.store" then
              match o.Ir.operands with
              | [ v; arr; idx ] when Ir.value_equal idx info.iv ->
                  Some ((arr, v) :: stores)
              | _ -> None
            else Some stores)
      (Some []) info.body

(* Do all accesses of [arr] in [body] load at [iv]?  Returns those loads. *)
let iv_loads_of arr iv body =
  let ok = ref true in
  let loads = ref [] in
  Ir.iter_ops
    (fun (o : Ir.op) ->
      match o.Ir.name with
      | "memref.load" -> (
          match o.Ir.operands with
          | [ a; idx ] when Ir.value_equal a arr ->
              if Ir.value_equal idx iv then loads := o :: !loads else ok := false
          | _ -> ())
      | "memref.store" -> (
          match o.Ir.operands with
          | [ _; a; _ ] when Ir.value_equal a arr -> ok := false
          | _ -> ())
      | "memref.copy" ->
          if List.exists (Ir.value_equal arr) o.Ir.operands then ok := false
      | _ -> ())
    body;
  if !ok then Some !loads else None

(* Try to fuse [prod] into [cons]; returns the fused op. *)
let try_fuse ctx defs (prod : Ir.op) (cons : Ir.op) : Ir.op option =
  match (loop_info defs prod, loop_info defs cons) with
  | Some pi, Some ci
    when pi.lo = ci.lo && pi.hi = ci.hi && pi.step = ci.step -> (
      match iv_stores pi with
      | None | Some [] -> None
      | Some stores -> (
          (* per produced array: every consumer access must be a load at the
             consumer's induction variable *)
          let per_array =
            List.map
              (fun (arr, stored) ->
                match iv_loads_of arr ci.iv ci.body with
                | Some loads -> Some (stored, loads)
                | None -> None)
              stores
          in
          if List.exists Option.is_none per_array then None
          else
            let pairs = List.filter_map Fun.id per_array in
            let all_loads = List.concat_map snd pairs in
            if all_loads = [] then None  (* nothing flows: no point fusing *)
            else begin
              let subst =
                (ci.iv.Ir.vid, pi.iv)
                :: List.concat_map
                     (fun (stored, loads) ->
                       List.map
                         (fun (l : Ir.op) -> ((Ir.result l).Ir.vid, stored))
                         loads)
                     pairs
              in
              let cons_body =
                List.filter
                  (fun (o : Ir.op) ->
                    not (List.exists (fun (l : Ir.op) -> l == o) all_loads))
                  ci.body
              in
              let clones, _ = Ir.clone_ops ctx subst cons_body in
              let yield = Dialect_scf.yield ctx [] in
              let body = pi.body @ clones @ [ yield ] in
              Some
                { prod with Ir.regions = [ [ Ir.block ~args:[ pi.iv ] body ] ] }
            end))
  | _ -> None

(* One fusion sweep over an op list (non-nested). *)
let fuse_once ctx (ops : Ir.op list) : Ir.op list * bool =
  let defs : (int, Ir.op) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (o : Ir.op) ->
      List.iter (fun (r : Ir.value) -> Hashtbl.replace defs r.Ir.vid o) o.Ir.results)
    ops;
  (* find a producer loop, skip interleaved allocs/constants, consumer loop *)
  let is_barrier (o : Ir.op) =
    (* ops between the loops that could observe or change the buffer *)
    not
      (List.mem o.Ir.name
         [ "memref.alloc"; "arith.constant" ])
  in
  let rec go acc = function
    | (p : Ir.op) :: rest when String.equal p.Ir.name "scf.for" -> (
        (* scan forward over non-barrier ops for the next loop *)
        let rec scan skipped = function
          | (c : Ir.op) :: tail when String.equal c.Ir.name "scf.for" -> (
              match try_fuse ctx defs p c with
              | Some fused ->
                  Some (List.rev_append acc (List.rev skipped @ (fused :: tail)))
              | None -> None)
          | o :: tail when not (is_barrier o) -> scan (o :: skipped) tail
          | _ -> None
        in
        match scan [] rest with
        | Some ops' -> (ops', true)
        | None -> go (p :: acc) rest)
    | o :: rest -> go (o :: acc) rest
    | [] -> (List.rev acc, false)
  in
  go [] ops

let rec fuse_ops ctx ops =
  let ops', changed = fuse_once ctx ops in
  if changed then fuse_ops ctx ops' else ops'

let fuse_func ctx (f : Ir.func) : Ir.func =
  { f with Ir.fbody = fuse_ops ctx f.Ir.fbody }

let fuse_module ctx (m : Ir.modul) : Ir.modul =
  { m with Ir.funcs = List.map (fuse_func ctx) m.Ir.funcs }

let pass = Pass.make "loop-fusion" fuse_module

let count_loops (f : Ir.func) =
  Ir.fold_ops
    (fun acc (o : Ir.op) -> if String.equal o.Ir.name "scf.for" then acc + 1 else acc)
    0 f.Ir.fbody
