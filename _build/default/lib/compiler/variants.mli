(** Generation of hardware and software variants (Fig. 1, middle-end).

    Every kernel expands into implementation candidates with estimated
    metrics; the DSE prunes them; survivors become the operating points the
    runtime selects among. *)

open Everest_platform

type target = {
  cpu : Spec.cpu;
  fpga : Spec.fpga option;
  sw_tiles : int list;
  sw_threads : int list;
  hw_unrolls : int list;
}

(** POWER9 + bus FPGA with a moderate knob grid. *)
val default_target : target

type impl =
  | Sw of Cost_model.sw_params
  | Hw of { unroll : int; design : Everest_hls.Hls.design }

type variant = {
  vname : string;
  impl : impl;
  time_s : float;
  energy_j : float;
  area_luts : int;  (** 0 for software variants. *)
}

val in_out_bytes : Everest_dsl.Tensor_expr.expr -> int * int
val sw_variants : target -> Everest_dsl.Tensor_expr.expr -> variant list

(** Hardware candidates that fit the target FPGA; [dift] instruments every
    design with taint tracking. *)
val hw_variants : target -> ?dift:bool -> Everest_dsl.Tensor_expr.expr -> variant list

(** Full variant space.  Kernels annotated Confidential or higher get
    DIFT-instrumented hardware variants. *)
val generate :
  ?target:target ->
  ?annots:Everest_dsl.Annot.t list ->
  Everest_dsl.Tensor_expr.expr ->
  variant list

(** Pareto dominance in (time, energy, area). *)
val dominates : variant -> variant -> bool

val pareto : variant list -> variant list

(** Bridge to the runtime: variants as mARGOt operating points. *)
val to_knowledge :
  kernel:string ->
  ?features:(string * float) list ->
  variant list ->
  Everest_autotune.Knowledge.t

(** Bridge to the workflow layer: a variant as a task implementation. *)
val to_dag_impl :
  Everest_dsl.Tensor_expr.expr -> variant -> Everest_workflow.Dag.impl

val pp : Format.formatter -> variant -> unit
