(** Analytical cost models for software variants (the "high-level
    architecture models" of the middle-end, Fig. 1).

    First-order effects the variant space is built on: tiling improves
    reuse for contraction kernels, SoA layout improves streaming bandwidth,
    threading scales compute but shares memory bandwidth. *)

type layout = Aos | Soa

val layout_name : layout -> string

type sw_params = { tile : int option; layout : layout; threads : int }

(** Canonical variant name, e.g. ["sw-soa-tile32-t16"]. *)
val variant_name : sw_params -> string

(** Does the expression contain a contraction that benefits from tiling? *)
val has_contraction : Everest_dsl.Tensor_expr.expr -> bool

(** Memory traffic in bytes for one evaluation under the parameters. *)
val traffic_bytes : Everest_dsl.Tensor_expr.expr -> sw_params -> float

val layout_efficiency : Everest_dsl.Tensor_expr.expr -> layout -> float

(** Roofline execution time on the CPU. *)
val sw_time :
  Everest_platform.Spec.cpu -> Everest_dsl.Tensor_expr.expr -> sw_params -> float

val sw_energy :
  Everest_platform.Spec.cpu -> Everest_dsl.Tensor_expr.expr -> sw_params -> float
