lib/core/sdk.ml: Everest_autotune Everest_compiler Everest_dsl Everest_ir Everest_platform Everest_runtime Everest_workflow Fmt List String
