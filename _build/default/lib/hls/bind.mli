(** Resource allocation and binding.

    Functional-unit binding packs scheduled operations of one class onto
    the fewest units via the left-edge algorithm on issue intervals;
    register binding does the same on value live ranges. *)

type fu = { fu_id : int; fu_class : Cdfg.opclass; ops : int list }

type binding = {
  fus : fu list;
  registers : int;  (** Minimum register count from live-range packing. *)
  node_fu : (int * int) list;  (** Node id -> functional unit id. *)
}

(** Left-edge interval packing: rows of non-overlapping members. *)
val left_edge : (int * int * int) list -> int list list

val bind : Cdfg.t -> Schedule.t -> binding
val fu_count : binding -> Cdfg.opclass -> int

(** No two ops bound to one unit overlap in time. *)
val validate : Cdfg.t -> Schedule.t -> binding -> bool
