(** Memory partitioning for HLS (generalized memory partitioning in the
    Wang–Li–Cong style, paper ref [28]).

    Given the affine access functions a DFG makes to an array inside an
    unrolled loop, choose a banking scheme and bank count that minimize
    per-cycle bank conflicts; conflicts serialize accesses and raise the
    initiation interval. *)

type scheme = Block | Cyclic | Block_cyclic of int  (** Block size. *)

val scheme_name : scheme -> string

type config = { scheme : scheme; banks : int }

(** Bank holding element [idx] of an array of [array_size] elements. *)
val bank_of : config -> array_size:int -> int -> int

(** Worst-case same-bank collisions (beyond the first access) over a window
    of base iterations, for an unrolled access group. *)
val conflicts :
  config ->
  array_size:int ->
  unroll:int ->
  window:int ->
  Cdfg.index list ->
  int

(** Initiation interval induced by banking with [ports] ports per bank. *)
val ii_for :
  config -> ports:int -> array_size:int -> unroll:int -> Cdfg.index list -> int

(** Exhaustive search over schemes and power-of-two bank counts; prefers
    fewer banks on ties.  Returns the best config and its II. *)
val optimize :
  ?max_banks:int ->
  ?ports:int ->
  array_size:int ->
  unroll:int ->
  Cdfg.index list ->
  config * int

(** Per-array accesses of a DFG: (array, size, accesses). *)
val array_accesses : Cdfg.t -> (string * int * Cdfg.index list) list

(** Optimize every array of a DFG; returns per-array configs and the final
    memory-induced II. *)
val optimize_dfg :
  ?max_banks:int ->
  ?ports:int ->
  ?unroll:int ->
  Cdfg.t ->
  (string * config * int) list * int

val total_banks : (string * config * int) list -> int
