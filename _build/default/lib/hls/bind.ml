(* Resource allocation and binding.

   Functional-unit binding packs scheduled operations of one class onto the
   fewest units via the left-edge algorithm on issue intervals; register
   binding does the same on value live ranges.  The result feeds the area
   estimator and the datapath generator. *)

type fu = { fu_id : int; fu_class : Cdfg.opclass; ops : int list }

type binding = {
  fus : fu list;
  registers : int;  (* minimum register count *)
  node_fu : (int * int) list;  (* node id -> fu id *)
}

(* Left-edge on intervals [(start, finish, node)]: returns rows (one per
   physical resource) of non-overlapping interval members. *)
let left_edge intervals =
  let sorted = List.sort compare intervals in
  let rows : (int ref * int list ref) list ref = ref [] in
  List.iter
    (fun (s, f, n) ->
      match List.find_opt (fun (last_f, _) -> !last_f <= s) !rows with
      | Some (last_f, ops) ->
          last_f := f;
          ops := n :: !ops
      | None -> rows := !rows @ [ (ref f, ref [ n ]) ])
    sorted;
  List.map (fun (_, ops) -> List.rev !ops) !rows

let bind (g : Cdfg.t) (s : Schedule.t) : binding =
  let classes = [ Cdfg.Add; Mul; Div; Logic; Load; Store ] in
  let fus = ref [] in
  let node_fu = ref [] in
  let next_fu = ref 0 in
  List.iter
    (fun cls ->
      let intervals =
        Array.to_list g.Cdfg.nodes
        |> List.filter_map (fun (n : Cdfg.node) ->
               if n.Cdfg.cls = cls then
                 let st = s.Schedule.start.(n.Cdfg.id) in
                 let occupancy = if cls = Cdfg.Div then Schedule.latency cls else 1 in
                 Some (st, st + occupancy, n.Cdfg.id)
               else None)
      in
      if intervals <> [] then
        let rows = left_edge intervals in
        List.iter
          (fun ops ->
            let id = !next_fu in
            incr next_fu;
            fus := { fu_id = id; fu_class = cls; ops } :: !fus;
            List.iter (fun n -> node_fu := (n, id) :: !node_fu) ops)
          rows)
    classes;
  (* register binding: live range of a value = def finish .. last use start *)
  let n = Cdfg.size g in
  let last_use = Array.make n (-1) in
  Array.iter
    (fun (nd : Cdfg.node) ->
      List.iter
        (fun p -> last_use.(p) <- max last_use.(p) s.Schedule.start.(nd.Cdfg.id))
        nd.Cdfg.preds)
    g.Cdfg.nodes;
  let reg_intervals =
    List.init n Fun.id
    |> List.filter_map (fun i ->
           if last_use.(i) > s.Schedule.finish.(i) then
             Some (s.Schedule.finish.(i), last_use.(i), i)
           else None)
  in
  let registers = List.length (left_edge reg_intervals) in
  { fus = List.rev !fus; registers; node_fu = !node_fu }

let fu_count b cls =
  List.length (List.filter (fun f -> f.fu_class = cls) b.fus)

(* No two ops bound to one FU may overlap in time. *)
let validate (g : Cdfg.t) (s : Schedule.t) (b : binding) =
  List.for_all
    (fun f ->
      let intervals =
        List.map
          (fun n ->
            let st = s.Schedule.start.(n) in
            let occ = if (Cdfg.node g n).Cdfg.cls = Cdfg.Div then Schedule.latency Cdfg.Div else 1 in
            (st, st + occ))
          f.ops
        |> List.sort compare
      in
      let rec ok = function
        | (_, f1) :: ((s2, _) :: _ as rest) -> f1 <= s2 && ok rest
        | _ -> true
      in
      ok intervals)
    b.fus
