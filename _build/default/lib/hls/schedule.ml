(* Operation scheduling: ASAP, ALAP and resource-constrained list scheduling
   (the core Bambu-style flow), plus initiation-interval computation for
   pipelined loop kernels. *)

type resources = {
  adders : int;
  multipliers : int;
  dividers : int;
  logic_units : int;
  mem_ports : int;  (* simultaneous accesses per array bank per cycle *)
}

let default_resources =
  { adders = 2; multipliers = 2; dividers = 1; logic_units = 2; mem_ports = 2 }

let unlimited =
  { adders = max_int; multipliers = max_int; dividers = max_int;
    logic_units = max_int; mem_ports = max_int }

(* Cycle latencies per operation class (values typical of fmax-400MHz FPGA
   operators, matching Bambu's default characterization). *)
let latency = function
  | Cdfg.Add -> 1
  | Mul -> 3
  | Div -> 12
  | Logic -> 1
  | Load -> 2
  | Store -> 1
  | Const -> 0
  | Nop -> 0

let avail res = function
  | Cdfg.Add -> res.adders
  | Mul -> res.multipliers
  | Div -> res.dividers
  | Logic -> res.logic_units
  | Load | Store -> res.mem_ports
  | Const | Nop -> max_int

type t = {
  start : int array;  (* start cycle per node *)
  finish : int array;
  makespan : int;  (* total cycles *)
}

let asap (g : Cdfg.t) : t =
  let n = Cdfg.size g in
  let start = Array.make n 0 in
  let fin = Array.make n 0 in
  Array.iter
    (fun (nd : Cdfg.node) ->
      let ready =
        List.fold_left (fun m p -> max m fin.(p)) 0 nd.Cdfg.preds
      in
      start.(nd.Cdfg.id) <- ready;
      fin.(nd.Cdfg.id) <- ready + latency nd.Cdfg.cls)
    g.Cdfg.nodes;
  let makespan = Array.fold_left max 0 fin in
  { start; finish = fin; makespan }

let alap (g : Cdfg.t) ~deadline : t =
  let n = Cdfg.size g in
  let start = Array.make n max_int in
  let fin = Array.make n max_int in
  (* process in reverse topological (construction) order *)
  for i = n - 1 downto 0 do
    let nd = Cdfg.node g i in
    let succ_starts =
      List.filter_map
        (fun j ->
          let m = Cdfg.node g j in
          if List.mem i m.Cdfg.preds then Some start.(j) else None)
        (List.init n Fun.id)
    in
    let latest =
      List.fold_left min deadline succ_starts
    in
    fin.(i) <- latest;
    start.(i) <- latest - latency nd.Cdfg.cls
  done;
  { start; finish = fin; makespan = deadline }

(* Resource-constrained list scheduling with priority = ALAP slack. *)
let list_schedule ?(res = default_resources) (g : Cdfg.t) : t =
  let n = Cdfg.size g in
  let asap_s = asap g in
  let deadline = asap_s.makespan in
  let alap_s = alap g ~deadline in
  let slack i = alap_s.start.(i) - asap_s.start.(i) in
  let start = Array.make n (-1) in
  let fin = Array.make n (-1) in
  let scheduled = Array.make n false in
  let remaining = ref n in
  let cycle = ref 0 in
  (* Per-cycle usage: (class, cycle) -> used, and per-array port usage. *)
  let usage : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let used key = Option.value ~default:0 (Hashtbl.find_opt usage key) in
  let busy_key cls c = Printf.sprintf "%s@%d" (Cdfg.opclass_name cls) c in
  let port_key arr c = Printf.sprintf "%s#%d" arr c in
  while !remaining > 0 do
    let c = !cycle in
    (* ready nodes whose predecessors all finished by [c] *)
    let ready =
      Array.to_list g.Cdfg.nodes
      |> List.filter (fun (nd : Cdfg.node) ->
             (not scheduled.(nd.Cdfg.id))
             && List.for_all
                  (fun p -> scheduled.(p) && fin.(p) <= c)
                  nd.Cdfg.preds)
      |> List.sort (fun (a : Cdfg.node) b ->
             compare (slack a.Cdfg.id) (slack b.Cdfg.id))
    in
    List.iter
      (fun (nd : Cdfg.node) ->
        let cls = nd.Cdfg.cls in
        let lat = latency cls in
        (* occupancy: unpipelined Div blocks its unit for its full latency;
           others are pipelined (occupy issue slot only) *)
        let occupied_cycles = if cls = Div then lat else 1 in
        let fits =
          let fu_ok =
            List.for_all
              (fun dc -> used (busy_key cls (c + dc)) < avail res cls)
              (List.init occupied_cycles Fun.id)
          in
          let port_ok =
            match nd.Cdfg.array with
            | Some arr -> used (port_key arr c) < res.mem_ports
            | None -> true
          in
          fu_ok && port_ok
        in
        if fits then begin
          scheduled.(nd.Cdfg.id) <- true;
          start.(nd.Cdfg.id) <- c;
          fin.(nd.Cdfg.id) <- c + lat;
          decr remaining;
          List.iter
            (fun dc ->
              let k = busy_key cls (c + dc) in
              Hashtbl.replace usage k (used k + 1))
            (List.init occupied_cycles Fun.id);
          match nd.Cdfg.array with
          | Some arr ->
              let k = port_key arr c in
              Hashtbl.replace usage k (used k + 1)
          | None -> ()
        end)
      ready;
    incr cycle;
    if !cycle > 10_000_000 then failwith "list_schedule: runaway"
  done;
  let makespan = Array.fold_left max 0 fin in
  { start; finish = fin; makespan }

let cdiv a b =
  if b = 0 || b = max_int then if a > 0 && b = 0 then max_int else 1
  else (a + b - 1) / b

(* Functional-unit-constrained minimum initiation interval (memory system
   excluded — the partitioner computes that part when banking applies). *)
let fu_min_ii ?(res = default_resources) (g : Cdfg.t) =
  List.fold_left
    (fun m cls ->
      let pop = Cdfg.count_class g cls in
      let units = avail res cls in
      if pop = 0 then m else max m (cdiv pop units))
    1
    [ Cdfg.Add; Mul; Div; Logic ]

(* Memory-port-constrained II for unpartitioned (single-bank) arrays. *)
let mem_min_ii ?(res = default_resources) (g : Cdfg.t) =
  List.fold_left
    (fun m (arr, _) ->
      let accesses =
        Array.fold_left
          (fun acc (nd : Cdfg.node) ->
            if nd.Cdfg.array = Some arr then acc + 1 else acc)
          0 g.Cdfg.nodes
      in
      if accesses = 0 then m else max m (cdiv accesses res.mem_ports))
    1 g.Cdfg.arrays

(* Resource-constrained minimum initiation interval for a pipelined loop:
   ceil(class population / units) over all classes, and memory ports per
   array.  (Recurrences are absent in our straight-line bodies.) *)
let min_ii ?(res = default_resources) (g : Cdfg.t) =
  max (fu_min_ii ~res g) (mem_min_ii ~res g)

(* Pipelined execution time of [trips] iterations: fill + drain model. *)
let pipelined_cycles ?(res = default_resources) g ~trips =
  let ii = min_ii ~res g in
  let depth = (list_schedule ~res g).makespan in
  depth + (ii * (trips - 1))

(* Average issue throughput: operations per cycle over the makespan. *)
let utilization g (s : t) =
  let issued =
    Array.fold_left
      (fun acc (nd : Cdfg.node) ->
        match nd.Cdfg.cls with Cdfg.Const | Cdfg.Nop -> acc | _ -> acc + 1)
      0 g.Cdfg.nodes
  in
  if s.makespan = 0 then 1.0
  else float_of_int issued /. float_of_int s.makespan

let validate (g : Cdfg.t) (s : t) ~res =
  let ok_deps =
    Array.for_all
      (fun (nd : Cdfg.node) ->
        List.for_all (fun p -> s.finish.(p) <= s.start.(nd.Cdfg.id)) nd.Cdfg.preds)
      g.Cdfg.nodes
  in
  let ok_res =
    let usage = Hashtbl.create 64 in
    Array.for_all
      (fun (nd : Cdfg.node) ->
        let cls = nd.Cdfg.cls in
        if cls = Cdfg.Const || cls = Cdfg.Nop then true
        else begin
          let k = (Cdfg.opclass_name cls, s.start.(nd.Cdfg.id)) in
          let u = Option.value ~default:0 (Hashtbl.find_opt usage k) in
          Hashtbl.replace usage k (u + 1);
          u + 1 <= avail res cls
        end)
      g.Cdfg.nodes
  in
  ok_deps && ok_res
