(** Dynamic information-flow tracking instrumentation (TaintHLS, paper
    ref [18]).

    A shadow datapath propagates one taint bit per value in parallel with
    the real computation: taint(out) = OR of taint(inputs).  Checks sit at
    stores (data leaving the accelerator).  The shadow logic adds area but
    no latency, matching the TaintHLS design point. *)

type check = { store_node : int; array : string option }

type instrumented = {
  base : Cdfg.t;
  checks : check list;
  shadow_area : Estimate.area;
}

val instrument : Cdfg.t -> instrumented

(** Which checks fire when the results of [tainted_inputs] (node ids) flow
    through the DFG. *)
val simulate : instrumented -> tainted_inputs:int list -> check list

(** Relative LUT overhead of the shadow logic w.r.t. a base area. *)
val overhead : instrumented -> Estimate.area -> float
