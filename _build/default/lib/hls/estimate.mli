(** Area / timing / energy estimation for synthesized accelerators.

    Costs follow typical 32-bit floating-point operator figures on a
    Xilinx-class fabric (the "hardware estimations for code-snippets" of
    Fig. 1).  Absolute values matter less than relative ordering: the DSE
    compares variants and the platform simulator converts cycles to time. *)

type area = { luts : int; ffs : int; dsps : int; brams : int }

val zero_area : area
val add_area : area -> area -> area
val scale_area : int -> area -> area

(** Area of one functional unit of the class. *)
val fu_area : Cdfg.opclass -> area

val register_area : area

(** 18-kbit BRAM blocks needed for [elems] 32-bit words. *)
val brams_for_elems : int -> int

type t = {
  area : area;
  cycles : int;  (** Total cycles of one invocation (pipelined: fill +
                     II*(trips-1)). *)
  ii : int;  (** Initiation interval; 0 when not pipelined. *)
  clock_mhz : float;
  dynamic_power_w : float;
}

val exec_time_s : t -> float
val energy_j : t -> float

(** Dynamic power from active logic at the given clock. *)
val power_of_area : area -> float -> float

(** Assemble an estimate from a bound design.  [states] is the controller's
    state count (defaults to [cycles]); a pipelined design with interval
    [ii] cannot share one unit among more than [ii] same-class ops, so the
    unit allocation is floored at [population/ii]. *)
val of_design :
  ?clock_mhz:float ->
  ?states:int ->
  Cdfg.t ->
  Bind.binding ->
  cycles:int ->
  ii:int ->
  banks:int ->
  t

(** Does the estimate fit a device budget? *)
val fits : budget:area -> t -> bool

val pp_area : Format.formatter -> area -> unit
val pp : Format.formatter -> t -> unit
