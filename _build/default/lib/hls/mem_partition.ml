(* Memory partitioning for HLS (generalized memory partitioning in the
   Wang–Li–Cong style, paper ref [28]).

   Given the affine access functions a DFG makes to an array inside a loop
   that is unrolled by a factor U, choose a banking scheme (block, cyclic,
   block-cyclic) and a bank count that minimizes per-cycle bank conflicts.
   A conflict forces the schedule to serialize accesses, raising the
   initiation interval. *)

type scheme = Block | Cyclic | Block_cyclic of int  (* block size *)

let scheme_name = function
  | Block -> "block"
  | Cyclic -> "cyclic"
  | Block_cyclic b -> Printf.sprintf "block-cyclic<%d>" b

type config = { scheme : scheme; banks : int }

let bank_of cfg ~array_size idx =
  match cfg.scheme with
  | Cyclic -> idx mod cfg.banks
  | Block ->
      let bsz = (array_size + cfg.banks - 1) / cfg.banks in
      min (cfg.banks - 1) (idx / bsz)
  | Block_cyclic b -> idx / b mod cfg.banks

(* Access offsets of one unrolled iteration group: for an access with
   affine index c*i + o and unroll factor U at base iteration i0, the group
   touches indices c*(i0+u) + o for u in 0..U-1.  Conflicts are independent
   of i0 for cyclic when gcd stable; we evaluate over a window of base
   iterations and take the worst case. *)
let conflicts cfg ~array_size ~unroll ~window (accesses : Cdfg.index list) =
  let worst = ref 0 in
  for i0 = 0 to window - 1 do
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (a : Cdfg.index) ->
        for u = 0 to unroll - 1 do
          let idx =
            match a with
            | Cdfg.Affine { coeff; offset } ->
                (coeff * (i0 + u)) + offset
            | Cdfg.Unknown -> (i0 * 7) + (u * 13)  (* pessimistic pseudo-index *)
          in
          let idx = ((idx mod array_size) + array_size) mod array_size in
          let bk = bank_of cfg ~array_size idx in
          Hashtbl.replace tbl bk
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl bk))
        done)
      accesses;
    let m = Hashtbl.fold (fun _ v acc -> max v acc) tbl 0 in
    worst := max !worst m
  done;
  (* conflicts = accesses serialized beyond the first on the worst bank *)
  max 0 (!worst - 1)

(* Initiation interval induced by banking: with dual-ported banks, the worst
   bank pressure divided by ports. *)
let ii_for cfg ~ports ~array_size ~unroll accesses =
  let worst = conflicts cfg ~array_size ~unroll ~window:8 accesses + 1 in
  (worst + ports - 1) / ports

(* Exhaustive search over schemes and power-of-two bank counts. *)
let optimize ?(max_banks = 16) ?(ports = 2) ~array_size ~unroll accesses =
  let candidates =
    let rec banks b acc = if b > max_banks then List.rev acc else banks (b * 2) (b :: acc) in
    let bank_list = banks 1 [] in
    List.concat_map
      (fun banks ->
        [ { scheme = Cyclic; banks }; { scheme = Block; banks };
          { scheme = Block_cyclic 2; banks }; { scheme = Block_cyclic 4; banks } ])
      bank_list
  in
  let score cfg = ii_for cfg ~ports ~array_size ~unroll accesses in
  let best =
    List.fold_left
      (fun (best_cfg, best_ii) cfg ->
        let ii = score cfg in
        (* prefer fewer banks on ties: cheaper in BRAM *)
        if ii < best_ii || (ii = best_ii && cfg.banks < best_cfg.banks) then (cfg, ii)
        else (best_cfg, best_ii))
      ({ scheme = Cyclic; banks = 1 }, score { scheme = Cyclic; banks = 1 })
      candidates
  in
  best

(* Collect per-array accesses of a DFG. *)
let array_accesses (g : Cdfg.t) =
  List.map
    (fun (arr, size) ->
      let accs =
        Array.to_list g.Cdfg.nodes
        |> List.filter_map (fun (n : Cdfg.node) ->
               if n.Cdfg.array = Some arr then Some n.Cdfg.index else None)
      in
      (arr, size, accs))
    g.Cdfg.arrays

(* Optimize every array of a DFG; returns per-array configs and the final
   memory-induced II. *)
let optimize_dfg ?(max_banks = 16) ?(ports = 2) ?(unroll = 1) (g : Cdfg.t) =
  let per_array =
    List.map
      (fun (arr, size, accs) ->
        let cfg, ii = optimize ~max_banks ~ports ~array_size:size ~unroll accs in
        (arr, cfg, ii))
      (array_accesses g)
  in
  let mem_ii = List.fold_left (fun m (_, _, ii) -> max m ii) 1 per_array in
  (per_array, mem_ii)

let total_banks per_array =
  List.fold_left (fun acc (_, cfg, _) -> acc + cfg.banks) 0 per_array
