(** Data-flow graph extraction for high-level synthesis.

    The HLS flow consumes straight-line scalar code (loop bodies after the
    compiler has lowered tensor ops to loops).  Each IR operation becomes a
    DFG node with an operation class that determines its latency and the
    functional unit executing it.  Loads and stores carry the array they
    touch plus an affine view of their index expression, which the memory
    partitioner needs. *)

(** Operation classes, each served by one functional-unit kind. *)
type opclass =
  | Add  (** add/sub/compare/negate (also float). *)
  | Mul
  | Div  (** division, sqrt, exp: long-latency, unpipelined. *)
  | Logic  (** and/or/xor/shift/select. *)
  | Load
  | Store
  | Const
  | Nop  (** casts, wires. *)

val opclass_name : opclass -> string

(** Affine index [coeff * iv + offset]; [Unknown] marks data-dependent
    addressing (the paper's "irregular memory accesses"). *)
type index = Affine of { coeff : int; offset : int } | Unknown

type node = {
  id : int;
  cls : opclass;
  op_name : string;  (** Originating IR op, for diagnostics. *)
  preds : int list;  (** Data dependencies (node ids). *)
  array : string option;  (** For Load/Store: array identifier. *)
  index : index;
}

type t = {
  nodes : node array;
  arrays : (string * int) list;  (** Array id -> element count. *)
}

val size : t -> int
val node : t -> int -> node
val succs : t -> int -> int list

(** Longest path under a per-class latency function. *)
val depth : t -> (opclass -> int) -> int

val count_class : t -> opclass -> int

(** {2 Incremental construction} *)

type builder

val builder : unit -> builder

(** Add a node; returns its id. *)
val add_node :
  builder ->
  ?array:string ->
  ?index:index ->
  opclass ->
  string ->
  int list ->
  int

val declare_array : builder -> string -> int -> unit
val finish : builder -> t

(** {2 From IR} *)

exception Unsupported of string

(** Operation class of an IR op name.
    @raise Unsupported for ops the HLS flow cannot map. *)
val classify_ir_op : string -> opclass

(** Build a DFG from straight-line IR ops.  [iv] names the loop induction
    variable so load/store indices become affine views; affine arithmetic
    ([iv*c + k]) is recovered through [arith.muli]/[addi] chains. *)
val of_ir_ops : ?iv:Everest_ir.Ir.value -> Everest_ir.Ir.op list -> t

(** Deterministic pseudo-random DFG with the given class mix, for
    scheduling benchmarks. *)
val random : ?seed:int -> n:int -> load_frac:float -> mul_frac:float -> unit -> t

val pp : Format.formatter -> t -> unit
