(* Dynamic information-flow tracking instrumentation (TaintHLS, paper [18]).

   A shadow datapath propagates one taint bit per value in parallel with the
   real computation: taint(out) = OR of taint(inputs).  Checks are inserted
   at stores (data leaving the accelerator).  The shadow logic adds area but
   no latency, matching the TaintHLS design point. *)

type check = { store_node : int; array : string option }

type instrumented = {
  base : Cdfg.t;
  checks : check list;
  shadow_area : Estimate.area;
}

let instrument (g : Cdfg.t) : instrumented =
  let checks =
    Array.to_list g.Cdfg.nodes
    |> List.filter_map (fun (n : Cdfg.node) ->
           if n.Cdfg.cls = Cdfg.Store then
             Some { store_node = n.Cdfg.id; array = n.Cdfg.array }
           else None)
  in
  (* per node: an OR gate + a taint FF; per check: a comparator + trap reg *)
  let n_ops =
    Array.fold_left
      (fun acc (n : Cdfg.node) ->
        match n.Cdfg.cls with Cdfg.Const | Cdfg.Nop -> acc | _ -> acc + 1)
      0 g.Cdfg.nodes
  in
  let shadow_area =
    { Estimate.luts = (2 * n_ops) + (6 * List.length checks);
      ffs = n_ops + (2 * List.length checks);
      dsps = 0; brams = 0 }
  in
  { base = g; checks; shadow_area }

(* Taint simulation: which checks fire when [tainted_inputs] (node ids whose
   results are attacker-controlled) flow through the DFG. *)
let simulate (inst : instrumented) ~tainted_inputs =
  let g = inst.base in
  let n = Cdfg.size g in
  let taint = Array.make n false in
  List.iter (fun i -> if i >= 0 && i < n then taint.(i) <- true) tainted_inputs;
  Array.iter
    (fun (nd : Cdfg.node) ->
      if not taint.(nd.Cdfg.id) then
        taint.(nd.Cdfg.id) <- List.exists (fun p -> taint.(p)) nd.Cdfg.preds)
    g.Cdfg.nodes;
  List.filter (fun c -> taint.(c.store_node)) inst.checks

(* Relative overhead of the shadow logic w.r.t. a base design area. *)
let overhead inst (base_area : Estimate.area) =
  if base_area.Estimate.luts = 0 then 0.0
  else
    float_of_int inst.shadow_area.Estimate.luts
    /. float_of_int base_area.Estimate.luts
