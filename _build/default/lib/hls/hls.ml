(* Top-level HLS driver (the Bambu role in the EVEREST flow).

   [synthesize] runs schedule -> bind -> partition -> estimate -> RTL on a
   DFG under user constraints, returning a complete design record.  The
   compiler's DSE calls this for every hardware variant candidate. *)

type constraints = {
  res : Schedule.resources;
  clock_mhz : float;
  unroll : int;  (* how many loop iterations the body represents *)
  pipeline : bool;
  partition : bool;  (* run the memory partitioner *)
  max_banks : int;  (* partitioner search bound *)
  dift : bool;  (* instrument with taint tracking *)
  trips : int;  (* loop trip count for execution-time reporting *)
}

let default_constraints =
  { res = Schedule.default_resources; clock_mhz = 250.0; unroll = 1;
    pipeline = true; partition = true; max_banks = 16; dift = false; trips = 1 }

type design = {
  dfg : Cdfg.t;
  schedule : Schedule.t;
  binding : Bind.binding;
  mem : (string * Mem_partition.config * int) list;
  estimate : Estimate.t;
  dift_info : Dift.instrumented option;
  rtl : Rtl.t;
}

let synthesize ?(c = default_constraints) ?(name = "kernel") (g : Cdfg.t) : design
    =
  let schedule = Schedule.list_schedule ~res:c.res g in
  let binding = Bind.bind g schedule in
  (* The DFG already contains one node per unrolled access, so the
     partitioner analyses its access set as a single iteration group. *)
  let mem, mem_ii =
    if c.partition then
      Mem_partition.optimize_dfg ~max_banks:c.max_banks
        ~ports:c.res.Schedule.mem_ports ~unroll:1 g
    else
      ( List.map
          (fun (arr, _) ->
            (arr, { Mem_partition.scheme = Mem_partition.Cyclic; banks = 1 }, 1))
          g.Cdfg.arrays,
        Schedule.mem_min_ii ~res:c.res g )
  in
  let fu_ii = Schedule.fu_min_ii ~res:c.res g in
  let ii = if c.pipeline then max fu_ii mem_ii else 0 in
  let cycles =
    if c.pipeline && c.trips > 1 then
      schedule.Schedule.makespan + (ii * (c.trips - 1))
    else schedule.Schedule.makespan * max 1 c.trips
  in
  let banks = Mem_partition.total_banks mem in
  let base_est =
    Estimate.of_design ~clock_mhz:c.clock_mhz
      ~states:schedule.Schedule.makespan g binding ~cycles ~ii ~banks
  in
  let dift_info = if c.dift then Some (Dift.instrument g) else None in
  let estimate =
    match dift_info with
    | Some inst ->
        { base_est with
          Estimate.area = Estimate.add_area base_est.Estimate.area inst.Dift.shadow_area }
    | None -> base_est
  in
  let rtl = Rtl.generate ~name g schedule binding mem in
  { dfg = g; schedule; binding; mem; estimate; dift_info; rtl }

(* Convenience: synthesize an IR loop body directly. *)
let synthesize_ir ?c ?name ?iv ops =
  synthesize ?c ?name (Cdfg.of_ir_ops ?iv ops)

let report ppf (d : design) =
  Fmt.pf ppf "schedule: %d cycles, II=%d@." d.schedule.Schedule.makespan
    d.estimate.Estimate.ii;
  Fmt.pf ppf "FUs: %d, registers: %d@."
    (List.length d.binding.Bind.fus)
    d.binding.Bind.registers;
  List.iter
    (fun (arr, (cfg : Mem_partition.config), ii) ->
      Fmt.pf ppf "array %s: %s x%d banks (II %d)@." arr
        (Mem_partition.scheme_name cfg.Mem_partition.scheme)
        cfg.Mem_partition.banks ii)
    d.mem;
  Fmt.pf ppf "estimate: %a@." Estimate.pp d.estimate
