lib/hls/estimate.mli: Bind Cdfg Format
