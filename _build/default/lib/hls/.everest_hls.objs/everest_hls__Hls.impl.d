lib/hls/hls.ml: Bind Cdfg Dift Estimate Fmt List Mem_partition Rtl Schedule
