lib/hls/rtl.ml: Array Bind Cdfg Fmt List Mem_partition Printf Schedule String
