lib/hls/schedule.mli: Cdfg
