lib/hls/schedule.ml: Array Cdfg Fun Hashtbl List Option Printf
