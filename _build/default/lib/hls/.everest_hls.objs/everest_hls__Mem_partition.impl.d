lib/hls/mem_partition.ml: Array Cdfg Hashtbl List Option Printf
