lib/hls/dift.mli: Cdfg Estimate
