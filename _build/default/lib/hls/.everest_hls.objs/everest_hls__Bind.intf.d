lib/hls/bind.mli: Cdfg Schedule
