lib/hls/cdfg.mli: Everest_ir Format
