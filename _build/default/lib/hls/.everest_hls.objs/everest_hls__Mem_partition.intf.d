lib/hls/mem_partition.mli: Cdfg
