lib/hls/bind.ml: Array Cdfg Fun List Schedule
