lib/hls/cdfg.ml: Array Attr Dump Everest_ir Fmt Hashtbl Ir List Option Printf String Types
