lib/hls/rtl.mli: Bind Cdfg Format Mem_partition Schedule
