lib/hls/estimate.ml: Bind Cdfg Fmt List Option
