lib/hls/dift.ml: Array Cdfg Estimate List
