lib/hls/hls.mli: Bind Cdfg Dift Estimate Everest_ir Format Mem_partition Rtl Schedule
