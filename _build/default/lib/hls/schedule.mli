(** Operation scheduling: ASAP, ALAP and resource-constrained list
    scheduling (the core Bambu-style flow), plus initiation-interval
    computation for pipelined loop kernels. *)

(** Available functional units per class, and memory ports per array bank. *)
type resources = {
  adders : int;
  multipliers : int;
  dividers : int;
  logic_units : int;
  mem_ports : int;
}

val default_resources : resources
val unlimited : resources

(** Cycle latency per operation class (Bambu-like characterization). *)
val latency : Cdfg.opclass -> int

val avail : resources -> Cdfg.opclass -> int

type t = {
  start : int array;  (** Start cycle per node. *)
  finish : int array;
  makespan : int;
}

(** Unconstrained as-soon-as-possible schedule. *)
val asap : Cdfg.t -> t

(** As-late-as-possible schedule against [deadline]. *)
val alap : Cdfg.t -> deadline:int -> t

(** Resource-constrained list scheduling, priority = ALAP slack.
    Unpipelined dividers occupy their unit for their full latency. *)
val list_schedule : ?res:resources -> Cdfg.t -> t

val cdiv : int -> int -> int

(** Functional-unit-constrained minimum initiation interval (memory system
    excluded — the partitioner computes that part when banking applies). *)
val fu_min_ii : ?res:resources -> Cdfg.t -> int

(** Memory-port-constrained II for unpartitioned (single-bank) arrays. *)
val mem_min_ii : ?res:resources -> Cdfg.t -> int

(** [max fu_min_ii mem_min_ii]. *)
val min_ii : ?res:resources -> Cdfg.t -> int

(** Fill + drain + II*(trips-1) cycles for a pipelined loop. *)
val pipelined_cycles : ?res:resources -> Cdfg.t -> trips:int -> int

(** Average issued operations per cycle. *)
val utilization : Cdfg.t -> t -> float

(** Dependencies respected and per-cycle resource bounds honored. *)
val validate : Cdfg.t -> t -> res:resources -> bool
