(** Top-level HLS driver (the Bambu role in the EVEREST flow).

    {!synthesize} runs schedule -> bind -> partition -> estimate -> RTL on a
    DFG under user constraints, returning a complete design record.  The
    compiler's DSE calls this for every hardware variant candidate. *)

type constraints = {
  res : Schedule.resources;
  clock_mhz : float;
  unroll : int;  (** How many loop iterations the DFG body represents
                     (the DFG is built already-unrolled). *)
  pipeline : bool;
  partition : bool;  (** Run the memory partitioner. *)
  max_banks : int;  (** Partitioner search bound. *)
  dift : bool;  (** Instrument with taint tracking. *)
  trips : int;  (** Loop trip count for execution-time reporting. *)
}

val default_constraints : constraints

type design = {
  dfg : Cdfg.t;
  schedule : Schedule.t;
  binding : Bind.binding;
  mem : (string * Mem_partition.config * int) list;
  estimate : Estimate.t;
  dift_info : Dift.instrumented option;
  rtl : Rtl.t;
}

val synthesize : ?c:constraints -> ?name:string -> Cdfg.t -> design

(** Synthesize an IR loop body directly (see {!Cdfg.of_ir_ops}). *)
val synthesize_ir :
  ?c:constraints ->
  ?name:string ->
  ?iv:Everest_ir.Ir.value ->
  Everest_ir.Ir.op list ->
  design

val report : Format.formatter -> design -> unit
