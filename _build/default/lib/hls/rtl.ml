(* RTL netlist generation and Verilog-style emission.

   The generated module contains one instance per bound functional unit, a
   register file sized by the binding, banked memories from the partitioner,
   and an FSM with one state per schedule cycle driving enable signals.
   The emission is a faithful structural sketch (enough to inspect, diff and
   count), not a tape-out netlist. *)

type port = { pname : string; dir : [ `In | `Out ]; width : int }

type instance = {
  iname : string;
  module_name : string;
  params : (string * string) list;
}

type fsm_state = { state_id : int; active : (string * int) list (* fu, node *) }

type t = {
  name : string;
  ports : port list;
  instances : instance list;
  registers : int;
  states : fsm_state list;
}

let fu_module = function
  | Cdfg.Add -> "fp_add"
  | Mul -> "fp_mul"
  | Div -> "fp_div"
  | Logic -> "alu_logic"
  | Load -> "mem_rd_port"
  | Store -> "mem_wr_port"
  | Const -> "const_rom"
  | Nop -> "wire"

let generate ~name (g : Cdfg.t) (s : Schedule.t) (b : Bind.binding)
    (mem : (string * Mem_partition.config * int) list) : t =
  let ports =
    [ { pname = "clk"; dir = `In; width = 1 };
      { pname = "rst"; dir = `In; width = 1 };
      { pname = "start"; dir = `In; width = 1 };
      { pname = "done"; dir = `Out; width = 1 } ]
    @ List.concat_map
        (fun (arr, (cfg : Mem_partition.config), _) ->
          List.init cfg.Mem_partition.banks (fun k ->
              [ { pname = Printf.sprintf "%s_bank%d_addr" arr k; dir = `Out; width = 32 };
                { pname = Printf.sprintf "%s_bank%d_q" arr k; dir = `In; width = 32 };
                { pname = Printf.sprintf "%s_bank%d_d" arr k; dir = `Out; width = 32 } ])
          |> List.concat)
        mem
  in
  let instances =
    List.map
      (fun (f : Bind.fu) ->
        { iname = Printf.sprintf "u_%s_%d" (Cdfg.opclass_name f.Bind.fu_class) f.Bind.fu_id;
          module_name = fu_module f.Bind.fu_class;
          params = [ ("WIDTH", "32") ] })
      b.Bind.fus
  in
  let fu_of_node n = List.assoc_opt n b.Bind.node_fu in
  let states =
    List.init (max 1 s.Schedule.makespan) (fun c ->
        let active =
          Array.to_list g.Cdfg.nodes
          |> List.filter_map (fun (nd : Cdfg.node) ->
                 if s.Schedule.start.(nd.Cdfg.id) = c then
                   match fu_of_node nd.Cdfg.id with
                   | Some fu ->
                       Some (Printf.sprintf "fu%d" fu, nd.Cdfg.id)
                   | None -> None
                 else None)
        in
        { state_id = c; active })
  in
  { name; ports; instances; registers = b.Bind.registers; states }

let emit ppf (m : t) =
  Fmt.pf ppf "module %s (@." m.name;
  List.iter
    (fun p ->
      Fmt.pf ppf "  %s %s [%d:0] %s,@."
        (match p.dir with `In -> "input" | `Out -> "output")
        "wire" (p.width - 1) p.pname)
    m.ports;
  Fmt.pf ppf ");@.";
  Fmt.pf ppf "  // %d registers@." m.registers;
  Fmt.pf ppf "  reg [%d:0] state;@." (max 1 (List.length m.states) - 1);
  List.iter
    (fun i ->
      Fmt.pf ppf "  %s #(%a) %s ();@." i.module_name
        Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> Fmt.pf ppf ".%s(%s)" k v))
        i.params i.iname)
    m.instances;
  Fmt.pf ppf "  always @@(posedge clk) begin@.";
  Fmt.pf ppf "    case (state)@.";
  List.iter
    (fun st ->
      Fmt.pf ppf "      %d: begin %a end@." st.state_id
        Fmt.(
          list ~sep:(any " ") (fun ppf (fu, node) ->
              Fmt.pf ppf "%s_en <= 1; // op %d" fu node))
        st.active)
    m.states;
  Fmt.pf ppf "    endcase@.";
  Fmt.pf ppf "  end@.";
  Fmt.pf ppf "endmodule@."

let to_string m = Fmt.str "%a" emit m

let line_count m = String.split_on_char '\n' (to_string m) |> List.length
