(** RTL netlist generation and Verilog-style emission.

    The generated module contains one instance per bound functional unit, a
    register file sized by the binding, banked memory ports from the
    partitioner, and an FSM with one state per schedule cycle.  The emission
    is a faithful structural sketch (enough to inspect, diff and count), not
    a tape-out netlist. *)

type port = { pname : string; dir : [ `In | `Out ]; width : int }

type instance = {
  iname : string;
  module_name : string;
  params : (string * string) list;
}

type fsm_state = { state_id : int; active : (string * int) list }

type t = {
  name : string;
  ports : port list;
  instances : instance list;
  registers : int;
  states : fsm_state list;
}

(** Module name of the functional unit implementing a class. *)
val fu_module : Cdfg.opclass -> string

val generate :
  name:string ->
  Cdfg.t ->
  Schedule.t ->
  Bind.binding ->
  (string * Mem_partition.config * int) list ->
  t

val emit : Format.formatter -> t -> unit
val to_string : t -> string
val line_count : t -> int
