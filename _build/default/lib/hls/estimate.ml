(* Area / timing / energy estimation for synthesized accelerators.

   The numbers follow typical 32-bit floating-point operator costs on a
   Xilinx-class FPGA fabric (the "hardware estimations for code-snippets"
   of Fig. 1).  Absolute values matter less than relative ordering: the DSE
   compares variants, and the platform simulator converts cycles to time. *)

type area = { luts : int; ffs : int; dsps : int; brams : int }

let zero_area = { luts = 0; ffs = 0; dsps = 0; brams = 0 }

let add_area a b =
  { luts = a.luts + b.luts; ffs = a.ffs + b.ffs; dsps = a.dsps + b.dsps;
    brams = a.brams + b.brams }

let scale_area k a =
  { luts = k * a.luts; ffs = k * a.ffs; dsps = k * a.dsps; brams = k * a.brams }

let fu_area = function
  | Cdfg.Add -> { luts = 350; ffs = 400; dsps = 2; brams = 0 }
  | Mul -> { luts = 100; ffs = 150; dsps = 3; brams = 0 }
  | Div -> { luts = 800; ffs = 900; dsps = 0; brams = 0 }
  | Logic -> { luts = 50; ffs = 30; dsps = 0; brams = 0 }
  | Load | Store -> { luts = 60; ffs = 40; dsps = 0; brams = 0 }
  | Const | Nop -> zero_area

let register_area = { luts = 0; ffs = 32; dsps = 0; brams = 0 }

(* 18kbit BRAM blocks for [elems] 32-bit words. *)
let brams_for_elems elems = max 1 ((elems * 32) + 18_431) / 18_432

type t = {
  area : area;
  cycles : int;  (* one invocation, or fill+drain+II*(trips-1) if pipelined *)
  ii : int;  (* initiation interval; 0 when not pipelined *)
  clock_mhz : float;
  dynamic_power_w : float;
}

let exec_time_s e = float_of_int e.cycles /. (e.clock_mhz *. 1e6)

let energy_j e = exec_time_s e *. e.dynamic_power_w

(* Dynamic power model: proportional to active logic. *)
let power_of_area a clock_mhz =
  let cap =
    (0.02 *. float_of_int a.luts)
    +. (0.01 *. float_of_int a.ffs)
    +. (0.5 *. float_of_int a.dsps)
    +. (1.2 *. float_of_int a.brams)
  in
  1e-4 *. cap *. clock_mhz /. 100.0 +. 0.5 (* static floor *)

let of_design ?(clock_mhz = 250.0) ?states (g : Cdfg.t) (b : Bind.binding)
    ~(cycles : int) ~(ii : int) ~(banks : int) =
  (* A pipelined design with initiation interval [ii] cannot share one unit
     among more than [ii] same-class operations: floor the allocation at
     ceil(population / ii) even if the one-iteration binding shared more. *)
  let fu_total =
    let bound cls =
      List.length (List.filter (fun (f : Bind.fu) -> f.Bind.fu_class = cls) b.Bind.fus)
    in
    let needed cls =
      let pop = Cdfg.count_class g cls in
      if ii <= 0 then bound cls
      else max (bound cls) ((pop + ii - 1) / ii)
    in
    List.fold_left
      (fun acc cls -> add_area acc (scale_area (needed cls) (fu_area cls)))
      zero_area
      [ Cdfg.Add; Cdfg.Mul; Cdfg.Div; Cdfg.Logic; Cdfg.Load; Cdfg.Store ]
  in
  let regs = scale_area b.Bind.registers register_area in
  let mem =
    List.fold_left
      (fun acc (_, elems) ->
        add_area acc { zero_area with brams = brams_for_elems elems })
      zero_area g.Cdfg.arrays
  in
  (* extra banks replicate BRAM (same capacity split) plus banking muxes *)
  let banking =
    { zero_area with luts = 40 * banks; ffs = 16 * banks;
      brams = max 0 (banks - List.length g.Cdfg.arrays) }
  in
  (* FSM size follows the controller's state count (one schedule iteration),
     not the total trip count *)
  let ctrl_states = max 1 (Option.value ~default:cycles states) in
  let fsm = { zero_area with luts = 8 * ctrl_states; ffs = 2 * ctrl_states } in
  let area = List.fold_left add_area zero_area [ fu_total; regs; mem; banking; fsm ] in
  { area; cycles; ii; clock_mhz; dynamic_power_w = power_of_area area clock_mhz }

let fits ~budget e =
  e.area.luts <= budget.luts && e.area.ffs <= budget.ffs
  && e.area.dsps <= budget.dsps && e.area.brams <= budget.brams

let pp_area ppf a =
  Fmt.pf ppf "%d LUT, %d FF, %d DSP, %d BRAM" a.luts a.ffs a.dsps a.brams

let pp ppf e =
  Fmt.pf ppf "{%a; %d cycles; II=%d; %.0f MHz; %.2f W}" pp_area e.area e.cycles
    e.ii e.clock_mhz e.dynamic_power_w
