(* Data-flow graph extraction for high-level synthesis.

   The HLS flow consumes straight-line scalar code (loop bodies after the
   compiler has lowered tensor ops to loops).  Each IR operation becomes a
   DFG node with an operation class that determines its latency and the
   functional unit that can execute it.  Loads and stores carry the array
   (memref) they touch plus an affine view of their index expression, which
   the memory partitioner needs. *)

type opclass =
  | Add  (* integer/float add, sub, compare *)
  | Mul
  | Div  (* division, sqrt, exp: long-latency, unpipelined *)
  | Logic  (* and/or/xor/shift/select *)
  | Load
  | Store
  | Const
  | Nop  (* casts, wires *)

let opclass_name = function
  | Add -> "add" | Mul -> "mul" | Div -> "div" | Logic -> "logic"
  | Load -> "load" | Store -> "store" | Const -> "const" | Nop -> "nop"

(* Affine index description [coeff * iv + offset] for bank analysis;
   [Unknown] marks data-dependent addressing (paper: irregular accesses). *)
type index = Affine of { coeff : int; offset : int } | Unknown

type node = {
  id : int;
  cls : opclass;
  op_name : string;  (* originating IR op, for diagnostics *)
  preds : int list;  (* data dependencies: node ids *)
  array : string option;  (* for Load/Store: array identifier *)
  index : index;
}

type t = {
  nodes : node array;
  arrays : (string * int) list;  (* array id -> element count *)
}

let size g = Array.length g.nodes
let node g i = g.nodes.(i)

let succs g i =
  Array.fold_left
    (fun acc n -> if List.mem i n.preds then n.id :: acc else acc)
    [] g.nodes
  |> List.rev

(* Longest path through the DFG in #nodes (a lower bound on latency). *)
let depth g latency_of =
  let memo = Array.make (size g) (-1) in
  let rec d i =
    if memo.(i) >= 0 then memo.(i)
    else begin
      let n = g.nodes.(i) in
      let pd = List.fold_left (fun m p -> max m (d p)) 0 n.preds in
      let v = pd + latency_of n.cls in
      memo.(i) <- v;
      v
    end
  in
  Array.fold_left (fun m n -> max m (d n.id)) 0 g.nodes

let count_class g cls =
  Array.fold_left (fun acc n -> if n.cls = cls then acc + 1 else acc) 0 g.nodes

(* ---- construction ----------------------------------------------------------- *)

type builder = {
  mutable rev : node list;
  mutable next : int;
  mutable arrs : (string * int) list;
}

let builder () = { rev = []; next = 0; arrs = [] }

let add_node b ?array ?(index = Unknown) cls op_name preds =
  let n = { id = b.next; cls; op_name; preds; array; index } in
  b.rev <- n :: b.rev;
  b.next <- b.next + 1;
  n.id

let declare_array b name elems =
  if not (List.mem_assoc name b.arrs) then b.arrs <- (name, elems) :: b.arrs

let finish b = { nodes = Array.of_list (List.rev b.rev); arrays = List.rev b.arrs }

(* ---- from IR ----------------------------------------------------------------- *)

exception Unsupported of string

let classify_ir_op (name : string) : opclass =
  match name with
  | "arith.addi" | "arith.addf" | "arith.subi" | "arith.subf" | "arith.maxf"
  | "arith.minf" | "arith.cmpi" | "arith.cmpf" | "arith.negf" ->
      Add
  | "arith.muli" | "arith.mulf" -> Mul
  | "arith.divi" | "arith.divf" | "arith.remi" | "arith.sqrtf" | "arith.expf" ->
      Div
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.shli" | "arith.shri"
  | "arith.select" ->
      Logic
  | "arith.constant" -> Const
  | "arith.cast" -> Nop
  | "memref.load" -> Load
  | "memref.store" -> Store
  | n -> raise (Unsupported n)

(* Build a DFG from straight-line IR ops.  [iv] optionally names the loop
   induction variable so that load/store indices become affine views.
   Unrolling constant-bound inner loops is the compiler's job. *)
let of_ir_ops ?iv (ops : Everest_ir.Ir.op list) : t =
  let open Everest_ir in
  let b = builder () in
  (* IR value id -> producing DFG node *)
  let defs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* IR value id -> known constant (for affine index recovery) *)
  let consts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* IR value id -> affine-in-iv view *)
  let affine : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  (match iv with Some (v : Ir.value) -> Hashtbl.replace affine v.Ir.vid (1, 0) | None -> ());
  let array_name (v : Ir.value) = Printf.sprintf "arr%d" v.Ir.vid in
  let preds_of (operands : Ir.value list) =
    List.filter_map (fun (v : Ir.value) -> Hashtbl.find_opt defs v.Ir.vid) operands
  in
  let index_of (v : Ir.value) =
    match Hashtbl.find_opt affine v.Ir.vid with
    | Some (c, o) -> Affine { coeff = c; offset = o }
    | None -> (
        match Hashtbl.find_opt consts v.Ir.vid with
        | Some k -> Affine { coeff = 0; offset = k }
        | None -> Unknown)
  in
  List.iter
    (fun (o : Ir.op) ->
      match o.Ir.name with
      | "memref.load" ->
          let arr = List.hd o.operands in
          let idx = match o.operands with _ :: i :: _ -> index_of i | _ -> Unknown in
          (match arr.Ir.vty with
          | Types.Memref _ as t ->
              declare_array b (array_name arr)
                (Option.value ~default:1024 (Types.num_elements t))
          | _ -> ());
          let id =
            add_node b ~array:(array_name arr) ~index:idx Load o.Ir.name
              (preds_of (List.tl o.operands))
          in
          List.iter (fun (r : Ir.value) -> Hashtbl.replace defs r.Ir.vid id) o.results
      | "memref.store" ->
          let arr = List.nth o.operands 1 in
          let idx =
            match o.operands with _ :: _ :: i :: _ -> index_of i | _ -> Unknown
          in
          (match arr.Ir.vty with
          | Types.Memref _ as t ->
              declare_array b (array_name arr)
                (Option.value ~default:1024 (Types.num_elements t))
          | _ -> ());
          ignore
            (add_node b ~array:(array_name arr) ~index:idx Store o.Ir.name
               (preds_of [ List.hd o.operands; List.nth o.operands 2 ]))
      | "arith.constant" ->
          let id = add_node b Const o.Ir.name [] in
          (match Ir.attr "value" o with
          | Some (Attr.Int k) ->
              List.iter (fun (r : Ir.value) -> Hashtbl.replace consts r.Ir.vid k) o.results
          | _ -> ());
          List.iter (fun (r : Ir.value) -> Hashtbl.replace defs r.Ir.vid id) o.results
      | name ->
          let cls = classify_ir_op name in
          (* track affine arithmetic on indices *)
          (match (name, o.operands) with
          | ("arith.addi" | "arith.subi"), [ a; bb ] -> (
              let sign = if String.equal name "arith.subi" then -1 else 1 in
              let va = Hashtbl.find_opt affine a.Ir.vid in
              let ka = Hashtbl.find_opt consts a.Ir.vid in
              let vb = Hashtbl.find_opt affine bb.Ir.vid in
              let kb = Hashtbl.find_opt consts bb.Ir.vid in
              match (va, ka, vb, kb) with
              | Some (c, off), _, _, Some k ->
                  List.iter
                    (fun (r : Ir.value) ->
                      Hashtbl.replace affine r.Ir.vid (c, off + (sign * k)))
                    o.results
              | _, Some k, Some (c, off), _ when sign = 1 ->
                  List.iter
                    (fun (r : Ir.value) -> Hashtbl.replace affine r.Ir.vid (c, off + k))
                    o.results
              | _, Some k1, _, Some k2 ->
                  List.iter
                    (fun (r : Ir.value) ->
                      Hashtbl.replace consts r.Ir.vid (k1 + (sign * k2)))
                    o.results
              | _ -> ())
          | "arith.muli", [ a; bb ] -> (
              let va = Hashtbl.find_opt affine a.Ir.vid in
              let ka = Hashtbl.find_opt consts a.Ir.vid in
              let vb = Hashtbl.find_opt affine bb.Ir.vid in
              let kb = Hashtbl.find_opt consts bb.Ir.vid in
              match (va, ka, vb, kb) with
              | Some (c, off), _, _, Some k ->
                  List.iter
                    (fun (r : Ir.value) ->
                      Hashtbl.replace affine r.Ir.vid (c * k, off * k))
                    o.results
              | _, Some k, Some (c, off), _ ->
                  List.iter
                    (fun (r : Ir.value) ->
                      Hashtbl.replace affine r.Ir.vid (c * k, off * k))
                    o.results
              | _, Some k1, _, Some k2 ->
                  List.iter
                    (fun (r : Ir.value) -> Hashtbl.replace consts r.Ir.vid (k1 * k2))
                    o.results
              | _ -> ())
          | _ -> ());
          let id = add_node b cls name (preds_of o.operands) in
          List.iter (fun (r : Ir.value) -> Hashtbl.replace defs r.Ir.vid id) o.results)
    ops;
  finish b

(* ---- synthetic DFGs for benchmarking ------------------------------------------ *)

(* Deterministic pseudo-random DFG: [n] nodes with given class mix. *)
let random ?(seed = 42) ~n ~load_frac ~mul_frac () =
  let st = ref seed in
  let rand m = st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF; !st mod m in
  let b = builder () in
  declare_array b "a" 1024;
  for i = 0 to n - 1 do
    let r = rand 1000 in
    let cls =
      if r < int_of_float (load_frac *. 1000.) then Load
      else if r < int_of_float ((load_frac +. mul_frac) *. 1000.) then Mul
      else Add
    in
    let preds =
      if i = 0 then []
      else
        List.sort_uniq compare
          [ rand i; rand i ]
    in
    let array = if cls = Load then Some "a" else None in
    ignore (add_node b ?array ~index:(Affine { coeff = 1; offset = rand 64 }) cls
              (opclass_name cls) preds)
  done;
  finish b

let pp ppf g =
  Array.iter
    (fun n ->
      Fmt.pf ppf "%d: %s%a <- %a@." n.id (opclass_name n.cls)
        Fmt.(option (fun ppf a -> Fmt.pf ppf "[%s]" a))
        n.array
        Fmt.(Dump.list int)
        n.preds)
    g.nodes
