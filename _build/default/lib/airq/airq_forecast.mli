(** Air-quality forecasting and abatement decisions (§VI-B).

    Couples a weather forecast with the plume model to predict exceedances
    at protected receptors; the operator delays emission-heavy activity on
    forecast exceedances.  The study measures decision quality versus grid
    resolution and the compute budget per forecast hour. *)

type site = {
  sources : Plume.source list;
  receptors : (string * float * float) list;  (** Name, x, y. *)
  threshold_ugm3 : float;
}

val default_site : site

type hour_weather = {
  wind_ms : float;
  wind_dir_rad : float;
  cls : Plume.stability;
}

(** Auto-correlated hourly wind/stability series. *)
val weather_series : ?seed:int -> hours:int -> unit -> hour_weather array

(** Forecast error model: coarser weather ensembles mispredict wind
    direction and speed more. *)
val perturb_weather :
  ?seed:int -> resolution_km:float -> hour_weather array -> hour_weather array

(** Does any receptor exceed the threshold under the given weather? *)
val receptor_exceedance : site -> cells:int -> hour_weather -> bool

type decision_eval = {
  precision : float;
  recall : float;
  f1 : float;
  hours_evaluated : int;
  flops_per_hour : float;
}

(** Compare forecast decisions (perturbed weather, given grid) against the
    fine-grid truth. *)
val evaluate :
  ?site:site -> ?hours:int -> cells:int -> resolution_km:float -> unit -> decision_eval
