(* Gaussian plume dispersion (the Plum'air core, use case §VI-B).

   Ground-level concentration downwind of elevated point sources with
   Pasquill–Gifford stability-class dispersion coefficients.  Concentrations
   are evaluated on a grid within 10 km of the industrial site. *)

type stability = A | B | C | D | E | F

let stability_of_weather ~wind_ms ~radiation_wm2 =
  (* simplified Pasquill table: strong sun + light wind -> unstable *)
  if radiation_wm2 > 600.0 then if wind_ms < 3.0 then A else if wind_ms < 5.0 then B else C
  else if radiation_wm2 > 300.0 then if wind_ms < 2.0 then B else if wind_ms < 5.0 then C else D
  else if radiation_wm2 > 50.0 then D
  else if wind_ms < 2.0 then F
  else if wind_ms < 5.0 then E
  else D

(* Briggs open-country sigma_y, sigma_z (x in meters). *)
let sigmas cls x =
  let x = Float.max 1.0 x in
  match cls with
  | A -> (0.22 *. x /. sqrt (1.0 +. (0.0001 *. x)), 0.20 *. x)
  | B -> (0.16 *. x /. sqrt (1.0 +. (0.0001 *. x)), 0.12 *. x)
  | C -> (0.11 *. x /. sqrt (1.0 +. (0.0001 *. x)), 0.08 *. x /. sqrt (1.0 +. (0.0002 *. x)))
  | D -> (0.08 *. x /. sqrt (1.0 +. (0.0001 *. x)), 0.06 *. x /. sqrt (1.0 +. (0.0015 *. x)))
  | E -> (0.06 *. x /. sqrt (1.0 +. (0.0001 *. x)), 0.03 *. x /. (1.0 +. (0.0003 *. x)))
  | F -> (0.04 *. x /. sqrt (1.0 +. (0.0001 *. x)), 0.016 *. x /. (1.0 +. (0.0003 *. x)))

type source = {
  sx : float;  (* position, m *)
  sy : float;
  height_m : float;
  emission_gs : float;  (* emission rate, g/s *)
}

(* Concentration (µg/m³) at ground level (z=0), receptor (rx, ry), for wind
   blowing toward +x' where x' is rotated by [wind_dir_rad]. *)
let concentration ~(src : source) ~wind_ms ~wind_dir_rad ~cls ~rx ~ry =
  let u = Float.max 0.5 wind_ms in
  (* rotate receptor into plume coordinates *)
  let dx = rx -. src.sx and dy = ry -. src.sy in
  let cosd = cos wind_dir_rad and sind = sin wind_dir_rad in
  let xd = (dx *. cosd) +. (dy *. sind) in
  let yd = (-.dx *. sind) +. (dy *. cosd) in
  if xd <= 1.0 then 0.0
  else begin
    let sy, sz = sigmas cls xd in
    let h = src.height_m in
    let expo =
      exp (-.(yd *. yd) /. (2.0 *. sy *. sy))
      *. (exp (-.(h *. h) /. (2.0 *. sz *. sz)) *. 2.0)
    in
    (* g/m3 -> µg/m3 *)
    src.emission_gs /. (2.0 *. Float.pi *. u *. sy *. sz) *. expo *. 1e6
  end

type grid = {
  half_extent_m : float;  (* domain is [-E, E]^2 *)
  cells : int;  (* per side *)
  conc : float array;  (* row-major cells x cells *)
}

let cell_coord g i =
  let step = 2.0 *. g.half_extent_m /. float_of_int g.cells in
  let row = i / g.cells and col = i mod g.cells in
  ( -.g.half_extent_m +. ((float_of_int col +. 0.5) *. step),
    -.g.half_extent_m +. ((float_of_int row +. 0.5) *. step) )

(* Evaluate the plume field of several sources on a grid. *)
let field ?(half_extent_m = 10_000.0) ~cells ~sources ~wind_ms ~wind_dir_rad
    ~cls () =
  let g = { half_extent_m; cells; conc = Array.make (cells * cells) 0.0 } in
  for i = 0 to (cells * cells) - 1 do
    let rx, ry = cell_coord g i in
    g.conc.(i) <-
      List.fold_left
        (fun acc src ->
          acc +. concentration ~src ~wind_ms ~wind_dir_rad ~cls ~rx ~ry)
        0.0 sources
  done;
  g

let max_concentration g = Array.fold_left Float.max 0.0 g.conc

(* fraction of cells exceeding a threshold *)
let exceedance_area g ~threshold =
  let n = Array.length g.conc in
  let k = Array.fold_left (fun acc c -> if c >= threshold then acc + 1 else acc) 0 g.conc in
  float_of_int k /. float_of_int n

(* concentration at a receptor, bilinear-free nearest-cell lookup *)
let at g ~x ~y =
  let step = 2.0 *. g.half_extent_m /. float_of_int g.cells in
  let col = int_of_float ((x +. g.half_extent_m) /. step) in
  let row = int_of_float ((y +. g.half_extent_m) /. step) in
  if col < 0 || col >= g.cells || row < 0 || row >= g.cells then 0.0
  else g.conc.((row * g.cells) + col)

(* cost model: flops to evaluate the field *)
let field_flops ~cells ~n_sources = float_of_int (cells * cells * n_sources * 60)
