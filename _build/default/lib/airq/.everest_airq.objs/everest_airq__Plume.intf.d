lib/airq/plume.mli:
