lib/airq/sensors.mli: Everest_ml Plume
