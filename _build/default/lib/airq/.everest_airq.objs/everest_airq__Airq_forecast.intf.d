lib/airq/airq_forecast.mli: Plume
