lib/airq/sensors.ml: Array Everest_ml Float List Plume Rng
