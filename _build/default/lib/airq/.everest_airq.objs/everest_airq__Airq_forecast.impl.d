lib/airq/airq_forecast.ml: Array Everest_ml Float List Metrics Plume Rng
