lib/airq/plume.ml: Array Float List
