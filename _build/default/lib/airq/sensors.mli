(** Low-cost air-quality sensor network: "massive amounts of (low quality)
    spatial information" (§VI-B).  Sensors sample the true field with bias,
    noise and dropout. *)

type sensor = {
  id : int;
  x : float;
  y : float;
  bias : float;  (** Multiplicative calibration error. *)
  noise_sigma : float;
  dropout : float;  (** Probability a reading is missing. *)
}

type reading = { sensor_id : int; value : float option }

(** Deterministic random deployment of [n] sensors over the domain. *)
val deploy : ?seed:int -> n:int -> half_extent_m:float -> unit -> sensor list

val sample : Everest_ml.Rng.t -> Plume.grid -> sensor -> reading
val sample_all : ?seed:int -> Plume.grid -> sensor list -> reading list

(** Median-based robust fusion of readings within [radius_m] of a point. *)
val fused_estimate :
  sensor list -> reading list -> x:float -> y:float -> radius_m:float -> float option
