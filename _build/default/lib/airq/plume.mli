(** Gaussian plume dispersion (the Plum'air core, use case §VI-B).

    Ground-level concentration downwind of elevated point sources with
    Pasquill–Gifford stability-class dispersion coefficients, evaluated on
    a grid within 10 km of the industrial site. *)

(** Pasquill stability classes, A (strongly convective) to F (stable). *)
type stability = A | B | C | D | E | F

(** Simplified Pasquill table from wind speed and solar radiation. *)
val stability_of_weather : wind_ms:float -> radiation_wm2:float -> stability

(** Briggs open-country (sigma_y, sigma_z) at downwind distance x meters. *)
val sigmas : stability -> float -> float * float

type source = {
  sx : float;  (** Position (m). *)
  sy : float;
  height_m : float;
  emission_gs : float;  (** Emission rate (g/s). *)
}

(** Ground-level concentration (µg/m³) at receptor (rx, ry); the wind blows
    toward the direction given in radians. *)
val concentration :
  src:source ->
  wind_ms:float ->
  wind_dir_rad:float ->
  cls:stability ->
  rx:float ->
  ry:float ->
  float

type grid = {
  half_extent_m : float;  (** Domain is [-E, E]². *)
  cells : int;  (** Per side. *)
  conc : float array;  (** Row-major concentrations. *)
}

val cell_coord : grid -> int -> float * float

(** Evaluate the plume field of several sources on a grid. *)
val field :
  ?half_extent_m:float ->
  cells:int ->
  sources:source list ->
  wind_ms:float ->
  wind_dir_rad:float ->
  cls:stability ->
  unit ->
  grid

val max_concentration : grid -> float

(** Fraction of cells at or above the threshold. *)
val exceedance_area : grid -> threshold:float -> float

(** Nearest-cell lookup; 0 outside the domain. *)
val at : grid -> x:float -> y:float -> float

(** Cost model: flops per field evaluation. *)
val field_flops : cells:int -> n_sources:int -> float
