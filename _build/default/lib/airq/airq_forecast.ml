(* Air-quality forecasting and abatement decisions (§VI-B).

   The service couples the weather forecast with the plume model to predict
   exceedances around the site over the next hours; the industrial operator
   delays emission-heavy activity when an exceedance at a protected receptor
   is forecast.  The study measures decision quality versus grid resolution
   and the time-to-decision with/without acceleration. *)

open Everest_ml

type site = {
  sources : Plume.source list;
  receptors : (string * float * float) list;  (* name, x, y *)
  threshold_ugm3 : float;
}

let default_site =
  {
    sources =
      [ { Plume.sx = 0.0; sy = 0.0; height_m = 40.0; emission_gs = 120.0 };
        { Plume.sx = 300.0; sy = 150.0; height_m = 25.0; emission_gs = 60.0 } ];
    receptors =
      [ ("school", 2_500.0, 600.0); ("village", -3_000.0, -1_200.0);
        ("hospital", 1_200.0, -2_000.0) ];
    threshold_ugm3 = 50.0;
  }

(* Hourly weather for the plume: wind speed/direction and stability. *)
type hour_weather = { wind_ms : float; wind_dir_rad : float; cls : Plume.stability }

let weather_series ?(seed = 21) ~hours () =
  let rng = Rng.create seed in
  let dir = ref (Rng.uniform rng 0.0 (2.0 *. Float.pi)) in
  let speed = ref 4.0 in
  Array.init hours (fun h ->
      dir := !dir +. Rng.gaussian ~sigma:0.25 rng;
      speed := Float.max 0.5 (!speed +. Rng.gaussian ~sigma:0.7 rng);
      let radiation =
        Float.max 0.0 (700.0 *. sin (Float.pi *. float_of_int ((h mod 24) - 6) /. 12.0))
      in
      { wind_ms = !speed; wind_dir_rad = !dir;
        cls = Plume.stability_of_weather ~wind_ms:!speed ~radiation_wm2:radiation })

(* Forecast error model: coarser weather ensembles mispredict the wind
   direction/speed more. *)
let perturb_weather ?(seed = 77) ~resolution_km (w : hour_weather array) =
  let rng = Rng.create seed in
  let dir_err = 0.02 *. resolution_km and spd_err = 0.04 *. resolution_km in
  Array.map
    (fun hw ->
      { hw with
        wind_dir_rad = hw.wind_dir_rad +. Rng.gaussian ~sigma:dir_err rng;
        wind_ms = Float.max 0.5 (hw.wind_ms +. Rng.gaussian ~sigma:spd_err rng) })
    w

(* Does any receptor exceed the threshold under given weather? *)
let receptor_exceedance (site : site) ~cells (hw : hour_weather) =
  let g =
    Plume.field ~cells ~sources:site.sources ~wind_ms:hw.wind_ms
      ~wind_dir_rad:hw.wind_dir_rad ~cls:hw.cls ()
  in
  List.exists
    (fun (_, x, y) -> Plume.at g ~x ~y >= site.threshold_ugm3)
    site.receptors

type decision_eval = {
  precision : float;
  recall : float;
  f1 : float;
  hours_evaluated : int;
  flops_per_hour : float;
}

(* Compare forecast decisions (perturbed weather, given grid resolution)
   against the truth (exact weather, fine grid). *)
let evaluate ?(site = default_site) ?(hours = 96) ~cells ~resolution_km () =
  let truth_weather = weather_series ~hours () in
  let forecast_weather = perturb_weather ~resolution_km truth_weather in
  let truth =
    Array.map (fun hw -> receptor_exceedance site ~cells:64 hw) truth_weather
  in
  let pred =
    Array.map (fun hw -> receptor_exceedance site ~cells hw) forecast_weather
  in
  let conf =
    Metrics.exceedance_confusion ~threshold:0.5
      (Array.map (fun b -> if b then 1.0 else 0.0) pred)
      (Array.map (fun b -> if b then 1.0 else 0.0) truth)
  in
  {
    precision = Metrics.precision conf;
    recall = Metrics.recall conf;
    f1 = Metrics.f1 conf;
    hours_evaluated = hours;
    flops_per_hour =
      Plume.field_flops ~cells ~n_sources:(List.length site.sources);
  }
