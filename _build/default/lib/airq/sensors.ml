(* Low-cost air-quality sensor network: "massive amounts of (low quality)
   spatial information" (§VI-B).  Sensors sample the true field with bias,
   noise and dropout. *)

open Everest_ml

type sensor = {
  id : int;
  x : float;
  y : float;
  bias : float;  (* multiplicative calibration error *)
  noise_sigma : float;
  dropout : float;  (* probability a reading is missing *)
}

type reading = { sensor_id : int; value : float option }

let deploy ?(seed = 3) ~n ~half_extent_m () =
  let rng = Rng.create seed in
  List.init n (fun id ->
      { id;
        x = Rng.uniform rng (-.half_extent_m) half_extent_m;
        y = Rng.uniform rng (-.half_extent_m) half_extent_m;
        bias = 1.0 +. Rng.gaussian ~sigma:0.15 rng;
        noise_sigma = 5.0 +. (10.0 *. Rng.float rng);
        dropout = 0.05 +. (0.10 *. Rng.float rng) })

let sample rng (g : Plume.grid) (s : sensor) : reading =
  if Rng.float rng < s.dropout then { sensor_id = s.id; value = None }
  else
    let truth = Plume.at g ~x:s.x ~y:s.y in
    let v = Float.max 0.0 ((s.bias *. truth) +. Rng.gaussian ~sigma:s.noise_sigma rng) in
    { sensor_id = s.id; value = Some v }

let sample_all ?(seed = 9) (g : Plume.grid) sensors =
  let rng = Rng.create seed in
  List.map (sample rng g) sensors

(* Median-based robust fusion of sensor values near a point. *)
let fused_estimate sensors readings ~x ~y ~radius_m =
  let vals =
    List.filter_map
      (fun (r : reading) ->
        match r.value with
        | None -> None
        | Some v ->
            let s = List.find (fun s -> s.id = r.sensor_id) sensors in
            let d = sqrt (((s.x -. x) ** 2.0) +. ((s.y -. y) ** 2.0)) in
            if d <= radius_m then Some v else None)
      readings
  in
  match vals with
  | [] -> None
  | _ ->
      let arr = Array.of_list vals in
      Array.sort compare arr;
      Some arr.(Array.length arr / 2)
