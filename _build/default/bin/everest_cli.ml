(* The EVEREST command-line tool.

     everest_cli compile [--size N] [--emit ir|sycl|rtl|variants]
         compile the demo tensor pipeline and print the requested artifact
     everest_cli run [--policy P] [--fpgas K]
         compile and execute the demo workflow on the simulated demonstrator
     everest_cli serve [--requests N] [--goal time|energy]
         adaptively serve the hot kernel through the virtualized runtime
     everest_cli hls [--unroll U] [--dift]
         synthesize the demo kernel and print the HLS report + RTL sketch  *)

open Cmdliner
module Sdk = Everest.Sdk
module Dsl = Everest_dsl
module TE = Everest_dsl.Tensor_expr

let demo_graph n =
  let g = Sdk.workflow "demo" in
  let src = Dsl.Dataflow.source g "input" ~bytes:(8 * n * n) in
  let x = TE.input "x" [ n; n ] in
  let mm =
    Dsl.Dataflow.task g "mm" (Dsl.Dataflow.Tensor_kernel (TE.matmul x x))
      ~deps:[ src ]
  in
  let act =
    Dsl.Dataflow.task g "act"
      (Dsl.Dataflow.Tensor_kernel (TE.relu (TE.input "y" [ n; n ])))
      ~deps:[ mm ]
  in
  Dsl.Dataflow.sink g "out" act;
  g

(* ---- compile --------------------------------------------------------------- *)

let compile_cmd =
  let size =
    Arg.(value & opt int 64 & info [ "size" ] ~docv:"N" ~doc:"Tensor size N×N.")
  in
  let emit =
    Arg.(
      value
      & opt (enum [ ("ir", `Ir); ("sycl", `Sycl); ("variants", `Variants);
                    ("report", `Report) ])
          `Report
      & info [ "emit" ] ~doc:"Artifact to print: ir, sycl, variants, report.")
  in
  let run size emit =
    let app = Sdk.compile (demo_graph size) in
    match emit with
    | `Ir ->
        print_string
          (Everest_ir.Printer.module_to_string app.Everest_compiler.Pipeline.ir)
    | `Sycl ->
        List.iter
          (fun k -> print_string k.Everest_compiler.Pipeline.sycl)
          app.Everest_compiler.Pipeline.kernels
    | `Variants ->
        List.iter
          (fun k ->
            Format.printf "kernel %s:@." k.Everest_compiler.Pipeline.ck_name;
            List.iter
              (fun v -> Format.printf "  %a@." Everest_compiler.Variants.pp v)
              k.Everest_compiler.Pipeline.dse.Everest_compiler.Dse.variants)
          app.Everest_compiler.Pipeline.kernels
    | `Report -> Format.printf "%a" Everest_compiler.Pipeline.report app
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile the demo pipeline.")
    Term.(const run $ size $ emit)

(* ---- run ------------------------------------------------------------------- *)

let run_cmd =
  let policy =
    Arg.(
      value & opt string "heft-locality"
      & info [ "policy" ] ~doc:"Scheduling policy.")
  in
  let fpgas =
    Arg.(value & opt int 4 & info [ "fpgas" ] ~doc:"Number of cloudFPGA nodes.")
  in
  let size =
    Arg.(value & opt int 128 & info [ "size" ] ~docv:"N" ~doc:"Tensor size.")
  in
  let run policy fpgas size =
    let app = Sdk.compile (demo_graph size) in
    let stats = Sdk.run ~policy ~cloud_fpgas:fpgas app in
    Format.printf "%a@." Sdk.pp_run stats
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the demo workflow on the demonstrator.")
    Term.(const run $ policy $ fpgas $ size)

(* ---- serve ----------------------------------------------------------------- *)

let serve_cmd =
  let requests =
    Arg.(value & opt int 100 & info [ "requests" ] ~doc:"Request count.")
  in
  let goal =
    Arg.(
      value
      & opt (enum [ ("time", `Time); ("energy", `Energy) ]) `Time
      & info [ "goal" ] ~doc:"Optimization goal.")
  in
  let size =
    Arg.(value & opt int 128 & info [ "size" ] ~docv:"N" ~doc:"Tensor size.")
  in
  let run requests goal size =
    let app = Sdk.compile (demo_graph size) in
    let goal =
      match goal with
      | `Time ->
          Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s")
      | `Energy ->
          Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "energy_j")
    in
    let served = Sdk.serve ~n:requests ~goal app ~kernel:"mm" in
    Format.printf "%a@." Sdk.pp_served served
  in
  Cmd.v (Cmd.info "serve" ~doc:"Serve the hot kernel adaptively.")
    Term.(const run $ requests $ goal $ size)

(* ---- hls ------------------------------------------------------------------- *)

let hls_cmd =
  let unroll = Arg.(value & opt int 4 & info [ "unroll" ] ~doc:"Unroll factor.") in
  let dift = Arg.(value & flag & info [ "dift" ] ~doc:"Instrument with DIFT.") in
  let rtl = Arg.(value & flag & info [ "rtl" ] ~doc:"Print the RTL sketch.") in
  let run unroll dift rtl =
    let e = TE.matmul (TE.input "a" [ 64; 64 ]) (TE.input "b" [ 64; 64 ]) in
    let dfg = Everest_compiler.Hw_lower.dfg_of_expr ~unroll e in
    let c =
      { Everest_hls.Hls.default_constraints with
        Everest_hls.Hls.unroll; dift;
        trips = Everest_compiler.Hw_lower.trips e ~unroll;
        max_banks = max 16 unroll }
    in
    let d = Everest_hls.Hls.synthesize ~c ~name:"matmul64" dfg in
    Format.printf "%a" Everest_hls.Hls.report d;
    if rtl then print_string (Everest_hls.Rtl.to_string d.Everest_hls.Hls.rtl)
  in
  Cmd.v (Cmd.info "hls" ~doc:"Synthesize the demo kernel with the HLS flow.")
    Term.(const run $ unroll $ dift $ rtl)

let () =
  let doc = "EVEREST SDK: compile, run and adapt HPDA applications." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "everest_cli" ~doc)
          [ compile_cmd; run_cmd; serve_cmd; hls_cmd ]))
