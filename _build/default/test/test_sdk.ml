(* End-to-end SDK integration tests: describe -> compile -> run -> serve,
   plus the security audit path. *)

module Sdk = Everest.Sdk
module Dsl = Everest_dsl
module TE = Everest_dsl.Tensor_expr

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let demo ?(n = 64) ?(secure = false) () =
  let g = Sdk.workflow "it" in
  let src = Dsl.Dataflow.source g "in" ~bytes:(8 * n * n) in
  let x = TE.input "x" [ n; n ] in
  let mm =
    Dsl.Dataflow.task g "mm" (Dsl.Dataflow.Tensor_kernel (TE.matmul x x))
      ~deps:[ src ]
      ~annots:
        (if secure then [ Dsl.Annot.Security Everest_ir.Dialect_sec.Secret ]
         else [])
  in
  Dsl.Dataflow.sink g "out" mm;
  g

let test_compile_run_all_policies () =
  let app = Sdk.compile (demo ()) in
  let results = Sdk.compare_policies app in
  checki "four policies" 4 (List.length results);
  List.iter
    (fun (p, (r : Sdk.run_stats)) ->
      checkb (p ^ " ran") true (r.Sdk.makespan_s > 0.0);
      checkb (p ^ " energy") true (r.Sdk.energy_j > 0.0))
    results;
  (* smart policies should not lose to round-robin *)
  let get p = (List.assoc p results).Sdk.makespan_s in
  checkb "heft-locality <= round-robin" true
    (get "heft-locality" <= get "round-robin")

let test_serve_adaptive () =
  let app = Sdk.compile (demo ~n:128 ()) in
  let served = Sdk.serve ~n:40 app ~kernel:"mm" in
  checki "all requests served" 40 served.Sdk.requests;
  checkb "latency positive" true (served.Sdk.mean_latency_s > 0.0);
  let total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 served.Sdk.variant_histogram
  in
  checki "histogram covers all" 40 total

let test_serve_energy_goal_prefers_hw () =
  let app = Sdk.compile (demo ~n:256 ()) in
  let goal =
    Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "energy_j")
  in
  let served = Sdk.serve ~n:30 ~goal app ~kernel:"mm" in
  (* from E2: the FPGA wins energy on large matmuls *)
  checkb "hardware variant selected" true
    (List.exists
       (fun (v, c) ->
         String.length v >= 2 && String.sub v 0 2 = "hw" && c > 15)
       served.Sdk.variant_histogram)

let test_security_audit_clean () =
  let app = Sdk.compile (demo ~secure:true ()) in
  (* the kernel is marked secret but never leaks to a public sink inside the
     kernel function itself *)
  checkb "audit report available" true (Sdk.security_report app = [])

let test_unknown_kernel_rejected () =
  let app = Sdk.compile (demo ()) in
  match Sdk.serve app ~kernel:"nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown kernel must be rejected"

let test_secure_kernel_gets_dift_variants () =
  let app = Sdk.compile (demo ~secure:true ()) in
  let ck = List.hd app.Everest_compiler.Pipeline.kernels in
  let has_dift =
    List.exists
      (fun (v : Everest_compiler.Variants.variant) ->
        let n = v.Everest_compiler.Variants.vname in
        String.length n > 5
        && String.sub n (String.length n - 5) 5 = "-dift")
      ck.Everest_compiler.Pipeline.dse.Everest_compiler.Dse.variants
  in
  (* DIFT hardware variants exist in the explored space; they appear on the
     Pareto front unless dominated *)
  let explored_dift =
    List.exists
      (fun (v : Everest_compiler.Variants.variant) ->
        match v.Everest_compiler.Variants.impl with
        | Everest_compiler.Variants.Hw _ -> true
        | _ -> false)
      ck.Everest_compiler.Pipeline.dse.Everest_compiler.Dse.variants
  in
  checkb "hw (dift) variants explored" true (has_dift || explored_dift)

let () =
  Alcotest.run "everest_sdk"
    [
      ( "end-to-end",
        [ Alcotest.test_case "compile+run policies" `Quick test_compile_run_all_policies;
          Alcotest.test_case "serve adaptive" `Quick test_serve_adaptive;
          Alcotest.test_case "energy goal -> hw" `Quick test_serve_energy_goal_prefers_hw;
          Alcotest.test_case "security audit" `Quick test_security_audit_clean;
          Alcotest.test_case "unknown kernel" `Quick test_unknown_kernel_rejected;
          Alcotest.test_case "dift variants" `Quick test_secure_kernel_gets_dift_variants ] );
    ]
