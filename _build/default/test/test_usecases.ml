(* Tests for the three industrial use cases: renewable-energy forecasting
   (§VI-A), air-quality monitoring (§VI-B) and traffic modeling (§VI-C). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)

(* ---- energy: weather ------------------------------------------------------------ *)

module W = Everest_energy.Weather
module WF = Everest_energy.Windfarm
module EF = Everest_energy.Forecast

let small_params = { W.default_params with W.days = 14; seed = 9 }

let test_weather_truth_shape () =
  let t = W.truth small_params in
  checki "hourly samples" (14 * 24) (Array.length t);
  checkb "winds nonnegative" true
    (Array.for_all (fun (s : W.sample) -> s.W.wind_ms >= 0.0) t);
  checkb "plausible magnitude" true
    (let mean = Everest_ml.Metrics.mean (Array.map (fun s -> s.W.wind_ms) t) in
     mean > 3.0 && mean < 15.0)

let test_weather_deterministic () =
  let a = W.truth small_params and b = W.truth small_params in
  checkb "same truth for same seed" true
    (Array.for_all2 (fun (x : W.sample) y -> x.W.wind_ms = y.W.wind_ms) a b)

let test_resolution_fidelity () =
  (* finer members track the truth better *)
  let t = W.truth small_params in
  let err res =
    let e = W.generate ~n_members:6 small_params t ~resolution_km:res in
    let errs =
      Array.init (Array.length t) (fun h ->
          let mean, _ = W.ensemble_mean_std e h in
          Float.abs (mean -. t.(h).W.wind_ms))
    in
    Everest_ml.Metrics.mean errs
  in
  checkb "2.5km beats 25km" true (err 2.5 < err 25.0)

let test_member_cost_scales () =
  checkb "finer grid costs much more" true
    (W.member_flops ~resolution_km:2.5 ~hours:24
    > 50.0 *. W.member_flops ~resolution_km:25.0 ~hours:24)

(* ---- energy: wind farm ----------------------------------------------------------- *)

let test_power_curve () =
  let t = WF.default_turbine in
  checkf 1e-9 "below cut-in" 0.0 (WF.turbine_power t 2.0);
  checkf 1e-9 "above cut-out" 0.0 (WF.turbine_power t 26.0);
  checkf 1e-9 "rated" t.WF.rated_kw (WF.turbine_power t 15.0);
  checkb "monotone in ramp" true
    (WF.turbine_power t 6.0 < WF.turbine_power t 9.0)

let test_farm_power () =
  let f = WF.default_farm in
  checkb "wake loss applied" true
    (WF.farm_power_kw f 15.0
    < float_of_int f.WF.turbines *. f.WF.turbine.WF.rated_kw)

(* ---- energy: forecasting ----------------------------------------------------------- *)

let test_forecast_beats_baselines () =
  let cfg = { EF.default_config with EF.train_days = 10; epochs = 60 } in
  let p = { W.default_params with W.days = 16; seed = 4 } in
  let model, persist, _climo = EF.evaluate ~cfg p in
  checkb "model beats persistence" true
    (model.EF.mae_kw < persist.EF.mae_kw);
  checkb "positive imbalance cost" true (model.EF.imbalance_eur > 0.0)

let test_resolution_improves_forecast () =
  let p = { W.default_params with W.days = 20; seed = 8 } in
  let cfg r = { EF.default_config with EF.train_days = 14; epochs = 60; resolution_km = r } in
  let coarse, _, _ = EF.evaluate ~cfg:(cfg 25.0) p in
  let fine, _, _ = EF.evaluate ~cfg:(cfg 2.5) p in
  checkb "high resolution lowers MAE" true (fine.EF.mae_kw < coarse.EF.mae_kw)

(* ---- air quality -------------------------------------------------------------------- *)

module P = Everest_airq.Plume
module AF = Everest_airq.Airq_forecast
module Sn = Everest_airq.Sensors

let one_source =
  [ { P.sx = 0.0; sy = 0.0; height_m = 30.0; emission_gs = 100.0 } ]

let test_plume_downwind () =
  (* wind blowing toward +x: concentration downwind >> upwind *)
  let down =
    P.concentration ~src:(List.hd one_source) ~wind_ms:5.0 ~wind_dir_rad:0.0
      ~cls:P.D ~rx:1000.0 ~ry:0.0
  in
  let up =
    P.concentration ~src:(List.hd one_source) ~wind_ms:5.0 ~wind_dir_rad:0.0
      ~cls:P.D ~rx:(-1000.0) ~ry:0.0
  in
  checkb "positive downwind" true (down > 0.0);
  checkf 1e-12 "zero upwind" 0.0 up

let test_plume_centerline_peak () =
  let c y =
    P.concentration ~src:(List.hd one_source) ~wind_ms:5.0 ~wind_dir_rad:0.0
      ~cls:P.D ~rx:1500.0 ~ry:y
  in
  checkb "peak on centerline" true (c 0.0 > c 300.0 && c 300.0 > c 900.0)

let test_plume_stability_classes () =
  (* stable atmospheres (F) keep the plume narrow: higher centerline max far
     downwind than strongly convective (A) *)
  let c cls =
    P.concentration ~src:(List.hd one_source) ~wind_ms:3.0 ~wind_dir_rad:0.0
      ~cls ~rx:5000.0 ~ry:0.0
  in
  checkb "F > A at long range" true (c P.F > c P.A)

let test_plume_dilution_with_wind () =
  let c u =
    P.concentration ~src:(List.hd one_source) ~wind_ms:u ~wind_dir_rad:0.0
      ~cls:P.D ~rx:2000.0 ~ry:0.0
  in
  checkb "stronger wind dilutes" true (c 10.0 < c 2.0)

let test_field_and_receptors () =
  let g =
    P.field ~cells:32 ~sources:one_source ~wind_ms:4.0 ~wind_dir_rad:0.0
      ~cls:P.D ()
  in
  checkb "field has mass" true (P.max_concentration g > 0.0);
  checkb "receptor lookup consistent" true
    (P.at g ~x:2000.0 ~y:0.0 >= P.at g ~x:2000.0 ~y:5000.0);
  checkb "exceedance fraction in [0,1]" true
    (let f = P.exceedance_area g ~threshold:10.0 in
     f >= 0.0 && f <= 1.0)

let test_stability_of_weather () =
  checkb "sunny calm unstable" true
    (P.stability_of_weather ~wind_ms:2.0 ~radiation_wm2:700.0 = P.A);
  checkb "night calm stable" true
    (P.stability_of_weather ~wind_ms:1.5 ~radiation_wm2:0.0 = P.F);
  checkb "windy neutral" true
    (P.stability_of_weather ~wind_ms:8.0 ~radiation_wm2:0.0 = P.D)

let test_sensors () =
  let g =
    P.field ~cells:32 ~sources:one_source ~wind_ms:4.0 ~wind_dir_rad:0.0
      ~cls:P.D ()
  in
  let sensors = Sn.deploy ~n:50 ~half_extent_m:10_000.0 () in
  let readings = Sn.sample_all g sensors in
  checki "one reading per sensor" 50 (List.length readings);
  let missing =
    List.length (List.filter (fun (r : Sn.reading) -> r.Sn.value = None) readings)
  in
  checkb "some dropout" true (missing > 0 && missing < 50);
  checkb "fusion available near site" true
    (Sn.fused_estimate sensors readings ~x:0.0 ~y:0.0 ~radius_m:8000.0 <> None)

let test_airq_decision_quality_vs_resolution () =
  let coarse = AF.evaluate ~hours:48 ~cells:16 ~resolution_km:25.0 () in
  let fine = AF.evaluate ~hours:48 ~cells:64 ~resolution_km:2.5 () in
  checkb "finer forecast at least as good (f1)" true
    (fine.AF.f1 >= coarse.AF.f1);
  checkb "finer grid costs more" true
    (fine.AF.flops_per_hour > coarse.AF.flops_per_hour)

(* ---- traffic -------------------------------------------------------------------------- *)

module RN = Everest_traffic.Roadnet
module RT = Everest_traffic.Routing
module OD = Everest_traffic.Od
module TS = Everest_traffic.Simulator
module FC = Everest_traffic.Fcd
module PR = Everest_traffic.Profiles
module PT = Everest_traffic.Ptdr

let city () = RN.grid_city ~rows:6 ~cols:6 ()

let test_grid_city_shape () =
  let g = city () in
  checki "nodes" 36 g.RN.n_nodes;
  (* 2 * (rows*(cols-1) + cols*(rows-1)) directed links *)
  checki "links" (2 * ((6 * 5) + (6 * 5))) (RN.n_links g)

let test_routing_straight_line () =
  let g = city () in
  match RT.free_flow g ~src:0 ~dst:5 with
  | None -> Alcotest.fail "route must exist"
  | Some p ->
      checki "five links along the top row" 5 (List.length p.RT.links);
      checkb "cost = free flow" true
        (Float.abs (p.RT.cost -. (5.0 *. (400.0 /. 16.7))) < 1e-6)

let test_routing_unreachable () =
  (* a two-node net with only a link 0 -> 1: no route back *)
  let net =
    RN.create ~n_nodes:2
      [ { RN.link_id = 0; src = 0; dst = 1; length_m = 100.0; lanes = 1;
          free_speed_ms = 10.0; capacity_vph = 500.0 } ]
  in
  checkb "forward exists" true (RT.free_flow net ~src:0 ~dst:1 <> None);
  checkb "reverse missing" true (RT.free_flow net ~src:1 ~dst:0 = None)

let test_bpr () =
  let l =
    { RN.link_id = 0; src = 0; dst = 1; length_m = 1000.0; lanes = 1;
      free_speed_ms = 10.0; capacity_vph = 1000.0 }
  in
  checkf 1e-9 "free flow at zero volume" 100.0 (RN.bpr_time l ~volume_vph:0.0);
  checkb "congestion slows" true
    (RN.bpr_time l ~volume_vph:2000.0 > 2.0 *. RN.bpr_time l ~volume_vph:0.0)

let test_simulator_congestion_peaks () =
  let g = city () in
  let od = OD.gravity ~n_zones:36 ~total_trips_per_hour:40_000.0 ~cols:6 () in
  let st = TS.run g od ~periods:24 in
  (* rush hour (8h) slower than night (3h) *)
  let night = TS.mean_network_speed st ~period:3 in
  let peak = TS.mean_network_speed st ~period:8 in
  checkb "peak congestion" true (peak < night);
  checkb "some congested links at peak" true (TS.congested_fraction st ~period:8 > 0.0)

let test_od_peak_factor () =
  checkb "rush hour demand higher" true
    (OD.peak_factor 8 > 3.0 *. OD.peak_factor 3)

let test_fcd_and_profiles () =
  let g = city () in
  let od = OD.gravity ~n_zones:36 ~total_trips_per_hour:30_000.0 ~cols:6 () in
  let st = TS.run g od ~periods:12 in
  let pings = FC.generate st ~n_vehicles:400 in
  checkb "many pings" true (FC.count pings > 2000);
  let prof = PR.learn g ~periods:12 pings in
  checkb "coverage reasonable" true (PR.coverage prof > 0.3);
  let rmse = PR.prediction_rmse prof st in
  checkb "profiles track simulator speeds" true (rmse < 2.0)

let test_ptdr_distribution () =
  let g = city () in
  let od = OD.gravity ~n_zones:36 ~total_trips_per_hour:30_000.0 ~cols:6 () in
  let st = TS.run g od ~periods:12 in
  let pings = FC.generate st ~n_vehicles:300 in
  let prof = PR.learn g ~periods:12 pings in
  match RT.free_flow g ~src:0 ~dst:35 with
  | None -> Alcotest.fail "route"
  | Some route ->
      let d = PT.monte_carlo g prof route ~depart:(8.0 *. 3600.0) ~n_samples:300 in
      checkb "p50 <= p90 <= p99" true (d.PT.p50 <= d.PT.p90 && d.PT.p90 <= d.PT.p99);
      checkb "mean plausible vs free flow" true (d.PT.mean >= route.RT.cost *. 0.8);
      (* convergence: CI shrinks with samples *)
      let conv =
        PT.convergence g prof route ~depart:(8.0 *. 3600.0)
          ~sample_counts:[ 10; 100; 1000 ]
      in
      let ci n = List.assoc n (List.map (fun (n, _, ci) -> (n, ci)) conv) in
      checkb "CI shrinks" true (ci 1000 < ci 10)

let test_ptdr_alternatives_and_reliability () =
  let g = city () in
  let od = OD.gravity ~n_zones:36 ~total_trips_per_hour:30_000.0 ~cols:6 () in
  let st = TS.run g od ~periods:12 in
  let pings = FC.generate st ~n_vehicles:300 in
  let prof = PR.learn g ~periods:12 pings in
  let alts = PT.alternatives ~k:3 g prof ~src:0 ~dst:35 ~period:8 in
  checkb "found alternatives" true (List.length alts >= 2);
  match PT.reliable_route g prof alts ~depart:(8.0 *. 3600.0) with
  | Some (_, q) -> checkb "reliable quantile positive" true (q > 0.0)
  | None -> Alcotest.fail "reliable route"

let test_traffic_predictor () =
  let g = city () in
  let od = OD.gravity ~n_zones:36 ~total_trips_per_hour:40_000.0 ~cols:6 () in
  (* two identical days: train on day 1, evaluate on day 2 *)
  let st = TS.run g od ~periods:48 in
  let m = Everest_traffic.Predictor.train ~epochs:40 st ~train_periods:24 in
  let e = Everest_traffic.Predictor.evaluate m st ~from_period:24 ~to_period:47 in
  checkb "beats free-flow baseline" true
    (e.Everest_traffic.Predictor.model_rmse
    < e.Everest_traffic.Predictor.freeflow_rmse);
  checkb "rmse sane" true (e.Everest_traffic.Predictor.model_rmse < 3.0)

let test_time_dependent_routing () =
  let g = city () in
  let od = OD.gravity ~n_zones:36 ~total_trips_per_hour:40_000.0 ~cols:6 () in
  let st = TS.run g od ~periods:24 in
  let cost period (l : RN.link) =
    l.RN.length_m /. TS.speed st ~period ~link:l.RN.link_id
  in
  let period_of t = int_of_float (t /. 3600.0) mod 24 in
  let at_night =
    RT.time_dependent g ~period_of ~cost ~src:0 ~dst:35 ~depart:(3.0 *. 3600.0)
  in
  let at_peak =
    RT.time_dependent g ~period_of ~cost ~src:0 ~dst:35 ~depart:(8.0 *. 3600.0)
  in
  match (at_night, at_peak) with
  | Some n, Some p -> checkb "peak trip slower" true (p.RT.cost >= n.RT.cost)
  | _ -> Alcotest.fail "routes must exist"

let () =
  Alcotest.run "everest_usecases"
    [
      ( "energy-weather",
        [ Alcotest.test_case "truth shape" `Quick test_weather_truth_shape;
          Alcotest.test_case "deterministic" `Quick test_weather_deterministic;
          Alcotest.test_case "resolution fidelity" `Quick test_resolution_fidelity;
          Alcotest.test_case "cost scaling" `Quick test_member_cost_scales ] );
      ( "energy-farm",
        [ Alcotest.test_case "power curve" `Quick test_power_curve;
          Alcotest.test_case "farm" `Quick test_farm_power ] );
      ( "energy-forecast",
        [ Alcotest.test_case "beats baselines" `Slow test_forecast_beats_baselines;
          Alcotest.test_case "resolution helps" `Slow test_resolution_improves_forecast ] );
      ( "airq",
        [ Alcotest.test_case "downwind" `Quick test_plume_downwind;
          Alcotest.test_case "centerline" `Quick test_plume_centerline_peak;
          Alcotest.test_case "stability" `Quick test_plume_stability_classes;
          Alcotest.test_case "dilution" `Quick test_plume_dilution_with_wind;
          Alcotest.test_case "field" `Quick test_field_and_receptors;
          Alcotest.test_case "weather->stability" `Quick test_stability_of_weather;
          Alcotest.test_case "sensors" `Quick test_sensors;
          Alcotest.test_case "decision vs resolution" `Slow test_airq_decision_quality_vs_resolution ] );
      ( "traffic",
        [ Alcotest.test_case "grid city" `Quick test_grid_city_shape;
          Alcotest.test_case "routing" `Quick test_routing_straight_line;
          Alcotest.test_case "unreachable" `Quick test_routing_unreachable;
          Alcotest.test_case "bpr" `Quick test_bpr;
          Alcotest.test_case "congestion peaks" `Quick test_simulator_congestion_peaks;
          Alcotest.test_case "od peaks" `Quick test_od_peak_factor;
          Alcotest.test_case "fcd+profiles" `Quick test_fcd_and_profiles;
          Alcotest.test_case "ptdr distribution" `Quick test_ptdr_distribution;
          Alcotest.test_case "alternatives" `Quick test_ptdr_alternatives_and_reliability;
          Alcotest.test_case "predictor" `Slow test_traffic_predictor;
          Alcotest.test_case "time-dependent" `Quick test_time_dependent_routing ] );
    ]
