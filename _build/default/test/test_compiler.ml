(* Tests for everest_compiler: cost models, variant generation, Pareto
   filtering, DSE strategies, backend emission and the end-to-end pipeline. *)

open Everest_compiler
open Everest_dsl

let () = Everest_ir.Registry.register_all ()

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let matmul_expr n =
  Tensor_expr.matmul (Tensor_expr.input "a" [ n; n ]) (Tensor_expr.input "b" [ n; n ])

let stream_expr n =
  Tensor_expr.relu
    (Tensor_expr.add (Tensor_expr.input "x" [ n ]) (Tensor_expr.input "y" [ n ]))

(* ---- cost model ---------------------------------------------------------------- *)

let test_tiling_helps_contraction () =
  let e = matmul_expr 256 in
  let base = { Cost_model.tile = None; layout = Cost_model.Soa; threads = 1 } in
  let tiled = { base with Cost_model.tile = Some 32 } in
  let cpu = Everest_platform.Spec.power9 in
  checkb "tiled faster" true (Cost_model.sw_time cpu e tiled < Cost_model.sw_time cpu e base);
  checkb "traffic reduced" true
    (Cost_model.traffic_bytes e tiled < Cost_model.traffic_bytes e base)

let test_layout_matters_for_streaming () =
  let e = stream_expr 1_000_000 in
  let aos = { Cost_model.tile = None; layout = Cost_model.Aos; threads = 8 } in
  let soa = { aos with Cost_model.layout = Cost_model.Soa } in
  let cpu = Everest_platform.Spec.power9 in
  checkb "soa faster for streaming" true
    (Cost_model.sw_time cpu e soa < Cost_model.sw_time cpu e aos);
  checkb "no tiling benefit claimed" false (Cost_model.has_contraction e)

let test_threads_scale_compute () =
  let e = matmul_expr 512 in
  let p t = { Cost_model.tile = Some 64; layout = Cost_model.Soa; threads = t } in
  let cpu = Everest_platform.Spec.power9 in
  checkb "8 threads faster than 1" true
    (Cost_model.sw_time cpu e (p 8) < Cost_model.sw_time cpu e (p 1))

(* ---- variants -------------------------------------------------------------------- *)

let test_variant_generation () =
  let e = matmul_expr 128 in
  let vs = Variants.generate e in
  (* 4 tiles x 2 layouts x 5 threads + up to 4 hw unrolls *)
  checkb "rich space" true (List.length vs >= 40);
  checkb "has hw variants" true
    (List.exists
       (fun v -> match v.Variants.impl with Variants.Hw _ -> true | _ -> false)
       vs);
  checkb "positive times" true (List.for_all (fun v -> v.Variants.time_s > 0.0) vs)

let test_streaming_has_no_tiles () =
  let e = stream_expr 4096 in
  let vs = Variants.sw_variants Variants.default_target e in
  checkb "no tiled variants for streaming" true
    (List.for_all
       (fun v ->
         match v.Variants.impl with
         | Variants.Sw p -> p.Cost_model.tile = None
         | _ -> false)
       vs)

let test_pareto () =
  let mk name t e a =
    { Variants.vname = name; impl = Variants.Sw { Cost_model.tile = None; layout = Cost_model.Aos; threads = 1 };
      time_s = t; energy_j = e; area_luts = a }
  in
  let vs = [ mk "good" 1.0 1.0 0; mk "dominated" 2.0 2.0 0; mk "tradeoff" 0.5 3.0 0 ] in
  let p = Variants.pareto vs in
  checki "dominated removed" 2 (List.length p);
  checkb "good kept" true (List.exists (fun v -> v.Variants.vname = "good") p);
  checkb "tradeoff kept" true (List.exists (fun v -> v.Variants.vname = "tradeoff") p)

let test_dift_forced_by_annotation () =
  let e = matmul_expr 64 in
  let vs =
    Variants.generate ~annots:[ Annot.Security Everest_ir.Dialect_sec.Secret ] e
  in
  let hw =
    List.filter
      (fun v -> match v.Variants.impl with Variants.Hw _ -> true | _ -> false)
      vs
  in
  checkb "hw variants are DIFT-instrumented" true
    (hw <> []
    && List.for_all
         (fun v ->
           String.length v.Variants.vname >= 5
           && String.sub v.Variants.vname (String.length v.Variants.vname - 5) 5
              = "-dift")
         hw)

(* ---- DSE -------------------------------------------------------------------------- *)

let test_dse_exhaustive_vs_sampled () =
  let e = matmul_expr 128 in
  let oracle = Dse.exhaustive e in
  let sampled = Dse.sampled ~budget:10 e in
  checkb "sampling explores less" true (sampled.Dse.explored < oracle.Dse.explored);
  checkb "sampling no better than oracle" true (Dse.quality sampled oracle >= 1.0);
  let greedy = Dse.greedy e in
  checkb "greedy explores less than exhaustive" true
    (greedy.Dse.explored <= oracle.Dse.explored);
  checkb "greedy quality sane" true (Dse.quality greedy oracle >= 1.0)

let test_dse_hw_wins_for_big_matmul () =
  (* large dense matmul has high arithmetic intensity: an FPGA variant
     should be on the Pareto front *)
  let e = matmul_expr 512 in
  let r = Dse.exhaustive e in
  checkb "hw on pareto front" true
    (List.exists
       (fun v -> match v.Variants.impl with Variants.Hw _ -> true | _ -> false)
       r.Dse.variants)

(* ---- backend ----------------------------------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_sycl_emission () =
  let e = matmul_expr 64 in
  let code =
    Backend.emit_sycl ~kernel:"mm"
      e { Cost_model.tile = Some 32; layout = Cost_model.Soa; threads = 4 }
  in
  checkb "mentions kernel" true (contains ~sub:"void mm(" code);
  checkb "mentions tile" true (contains ~sub:"TILE = 32" code);
  checkb "mentions layout" true (contains ~sub:"layout: soa" code)

let test_metadata () =
  let e = matmul_expr 64 in
  let r = Dse.exhaustive e in
  match Backend.metadata r.Dse.variants with
  | Everest_ir.Attr.List items ->
      checki "one entry per variant" (List.length r.Dse.variants) (List.length items)
  | _ -> Alcotest.fail "metadata must be a list"

(* ---- pipeline --------------------------------------------------------------------- *)

let pipeline_graph () =
  let g = Dataflow.create "app" in
  let src = Dataflow.source g "input" ~bytes:(1 lsl 16) in
  let a = Tensor_expr.input "x" [ 64; 64 ] in
  let k1 =
    Dataflow.task g "mm" (Dataflow.Tensor_kernel (Tensor_expr.matmul a a)) ~deps:[ src ]
  in
  let k2 =
    Dataflow.task g "act"
      (Dataflow.Tensor_kernel (Tensor_expr.relu (Tensor_expr.input "y" [ 64; 64 ])))
      ~deps:[ k1 ]
  in
  Dataflow.sink g "out" k2;
  g

let test_pipeline_compile () =
  let app = Pipeline.compile (pipeline_graph ()) in
  checki "two compiled kernels" 2 (List.length app.Pipeline.kernels);
  checkb "variants generated" true (Pipeline.total_variants app >= 2);
  checki "dag mirrors graph" 3 (Everest_workflow.Dag.size app.Pipeline.dag);
  checkb "passes ran" true (List.length app.Pipeline.pass_reports > 0);
  (* compiled DAG executes on the demonstrator *)
  let _, stats =
    Everest_workflow.Executor.run_on_demonstrator ~policy:"heft-locality"
      app.Pipeline.dag
  in
  checkb "compiled app runs" true (stats.Everest_workflow.Executor.makespan > 0.0)

let test_pipeline_rejects_invalid () =
  let g = Dataflow.create "dup" in
  let _ = Dataflow.source g "x" ~bytes:8 in
  let _ = Dataflow.source g "x" ~bytes:8 in
  match Pipeline.compile g with
  | exception Pipeline.Compile_error _ -> ()
  | _ -> Alcotest.fail "invalid graph must be rejected"

let test_pipeline_knowledge_bridges_to_tuner () =
  let app = Pipeline.compile (pipeline_graph ()) in
  let ck = List.hd app.Pipeline.kernels in
  let goal = Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s") in
  match Everest_autotune.Selector.select ck.Pipeline.knowledge goal ~features:[] with
  | Some d ->
      checkb "selected a generated variant" true
        (String.length d.Everest_autotune.Selector.point.Everest_autotune.Knowledge.variant > 0)
  | None -> Alcotest.fail "knowledge must be selectable"

(* ---- tensor-to-loops lowering ------------------------------------------------------ *)

module Interp = Everest_ir.Interp
module Verify = Everest_ir.Verify
module Ir = Everest_ir.Ir

let run_both e env =
  (* tensor-level function vs loop-level function on the same inputs *)
  let ctx = Ir.ctx () in
  let f_tensor = Everest_dsl.Lower.lower_expr ~fname:"t" ctx e in
  let f_loops = Loops.lower_func ctx f_tensor in
  (match Verify.verify_func { f_loops with Ir.fname = "l" } with
  | [] -> ()
  | ds -> Alcotest.failf "lowered invalid: %s" (Verify.errors_to_string ds));
  let m =
    Ir.modul "m" [ f_tensor; { f_loops with Ir.fname = "l" } ]
  in
  let args_tensor =
    List.map
      (fun (n, _) ->
        let t = List.assoc n env in
        Interp.tensor_of_array t.Tensor_expr.dims t.Tensor_expr.data)
      (Tensor_expr.inputs e)
  in
  (* lowered arguments are linearized 1-D buffers *)
  let args_loops =
    List.map
      (fun (n, _) ->
        let t = List.assoc n env in
        Interp.tensor_of_array
          [ Array.length t.Tensor_expr.data ]
          t.Tensor_expr.data)
      (Tensor_expr.inputs e)
  in
  let r_tensor, _ = Interp.run_func ctx m "t" args_tensor in
  let r_loops, _ = Interp.run_func ctx m "l" args_loops in
  (List.hd r_tensor, List.hd r_loops)

let rt_data = function
  | Interp.RBuf b -> b.Interp.data
  | Interp.RFloat f -> [| f |]
  | _ -> Alcotest.fail "unexpected result kind"

let check_equiv e env =
  let a, b = run_both e env in
  let da = rt_data a and db = rt_data b in
  Alcotest.check Alcotest.int "same element count" (Array.length da)
    (Array.length db);
  checkb "same values" true
    (Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9 *. (1.0 +. Float.abs x)) da db)

let t22v v = Tensor_expr.tensor [ 2; 2 ] v

let test_loops_matmul () =
  let a = Tensor_expr.input "a" [ 2; 3 ] in
  let b = Tensor_expr.input "b" [ 3; 2 ] in
  check_equiv (Tensor_expr.matmul a b)
    [ ("a", Tensor_expr.tensor [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |]);
      ("b", Tensor_expr.tensor [ 3; 2 ] [| 7.; 8.; 9.; 10.; 11.; 12. |]) ]

let test_loops_elementwise_chain () =
  let x = Tensor_expr.input "x" [ 2; 2 ] in
  let y = Tensor_expr.input "y" [ 2; 2 ] in
  check_equiv
    (Tensor_expr.relu (Tensor_expr.sub (Tensor_expr.mul x y) (Tensor_expr.const ~shape:[ 2; 2 ] 1.0)))
    [ ("x", t22v [| 1.; -2.; 3.; 0.5 |]); ("y", t22v [| 2.; 2.; 2.; 2. |]) ]

let test_loops_transpose_reduce () =
  let x = Tensor_expr.input "x" [ 3; 2 ] in
  check_equiv
    (Tensor_expr.sum (Tensor_expr.transpose x))
    [ ("x", Tensor_expr.tensor [ 3; 2 ] [| 1.; 2.; 3.; 4.; 5.; 6. |]) ]

let test_loops_sigmoid () =
  let x = Tensor_expr.input "x" [ 4 ] in
  check_equiv (Tensor_expr.sigmoid x)
    [ ("x", Tensor_expr.tensor [ 4 ] [| -2.0; -0.5; 0.5; 2.0 |]) ]

(* random well-shaped 4x4 expressions over inputs a and b *)
let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ return (Tensor_expr.input "a" [ 4; 4 ]);
              return (Tensor_expr.input "b" [ 4; 4 ]);
              map
                (fun v -> Tensor_expr.const ~shape:[ 4; 4 ] (float_of_int v))
                (int_range (-4) 4) ]
        else
          let sub = self (n / 2) in
          oneof
            [ map2 Tensor_expr.add sub sub;
              map2 Tensor_expr.sub sub sub;
              map2 Tensor_expr.mul sub sub;
              map2 Tensor_expr.matmul sub sub;
              map Tensor_expr.transpose sub;
              map Tensor_expr.relu sub;
              map (Tensor_expr.scale 0.5) sub ]))

let prop_loops_preserve_semantics =
  QCheck.Test.make ~count:40 ~name:"tensor-to-loops preserves semantics"
    (QCheck.make ~print:Tensor_expr.to_string gen_expr) (fun e ->
      let env =
        [ ("a", Tensor_expr.tensor [ 4; 4 ] (Array.init 16 (fun i -> float_of_int (i mod 5) -. 2.0)));
          ("b", Tensor_expr.tensor [ 4; 4 ] (Array.init 16 (fun i -> 0.5 *. float_of_int (7 - i)))) ]
      in
      let a, b = run_both e env in
      let da = rt_data a and db = rt_data b in
      Array.length da = Array.length db
      && Array.for_all2
           (fun x y -> Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs x))
           da db)

let test_loops_feed_hls () =
  (* the lowered inner loop body synthesizes through the real HLS flow *)
  let ctx = Ir.ctx () in
  let a = Tensor_expr.input "a" [ 8; 8 ] in
  let f = Everest_dsl.Lower.lower_expr ctx (Tensor_expr.matmul a a) in
  let lowered = Loops.lower_func ctx f in
  match Loops.innermost_body lowered with
  | None -> Alcotest.fail "no inner loop found"
  | Some (body, iv) ->
      let body =
        List.filter
          (fun (o : Ir.op) -> not (String.equal o.Ir.name "scf.yield"))
          body
      in
      let dfg = Everest_hls.Cdfg.of_ir_ops ~iv body in
      checkb "loads present" true
        (Everest_hls.Cdfg.count_class dfg Everest_hls.Cdfg.Load = 2);
      let d = Everest_hls.Hls.synthesize ~name:"mm_body" dfg in
      checkb "synthesizes" true
        (d.Everest_hls.Hls.estimate.Everest_hls.Estimate.cycles > 0)

(* ---- loop fusion -------------------------------------------------------------------- *)

let lowered_of e =
  let ctx = Ir.ctx () in
  (ctx, Loops.lower_func ctx (Everest_dsl.Lower.lower_expr ctx e))

let run_lowered_buf ctx f env e =
  let m = Ir.modul "m" [ f ] in
  let args =
    List.map
      (fun (n, _) ->
        let t = List.assoc n env in
        Interp.tensor_of_array [ Array.length t.Tensor_expr.data ] t.Tensor_expr.data)
      (Tensor_expr.inputs e)
  in
  let rets, _ = Interp.run_func ctx m f.Ir.fname args in
  rt_data (List.hd rets)

let test_fusion_merges_elementwise () =
  let x = Tensor_expr.input "x" [ 4; 4 ] in
  let y = Tensor_expr.input "y" [ 4; 4 ] in
  let e = Tensor_expr.relu (Tensor_expr.add x y) in
  let ctx, f = lowered_of e in
  checkb "two loops before" true (Loop_fusion.count_loops f = 2);
  let f' = Loop_fusion.fuse_func ctx f in
  checki "one loop after" 1 (Loop_fusion.count_loops f');
  (match Verify.verify_func f' with
  | [] -> ()
  | ds -> Alcotest.failf "fused invalid: %s" (Verify.errors_to_string ds));
  let env =
    [ ("x", Tensor_expr.tensor [ 4; 4 ] (Array.init 16 (fun i -> float_of_int i -. 8.0)));
      ("y", Tensor_expr.tensor [ 4; 4 ] (Array.init 16 (fun i -> 0.5 *. float_of_int i))) ]
  in
  let before = run_lowered_buf ctx f env e in
  let after = run_lowered_buf ctx f' env e in
  checkb "semantics preserved" true
    (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) before after)

let test_fusion_chain () =
  let x = Tensor_expr.input "x" [ 8 ] in
  let e =
    Tensor_expr.sigmoid (Tensor_expr.scale 2.0 (Tensor_expr.relu (Tensor_expr.add x x)))
  in
  let ctx, f = lowered_of e in
  checkb "four loops before" true (Loop_fusion.count_loops f >= 3);
  let f' = Loop_fusion.fuse_func ctx f in
  checki "fully fused" 1 (Loop_fusion.count_loops f');
  let env = [ ("x", Tensor_expr.tensor [ 8 ] (Array.init 8 (fun i -> float_of_int (i - 4)))) ] in
  let before = run_lowered_buf ctx f env e in
  let after = run_lowered_buf ctx f' env e in
  checkb "semantics preserved" true
    (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) before after)

let test_fusion_skips_matmul () =
  (* the matmul nest has nested loops and iter args: must not fuse *)
  let a = Tensor_expr.input "a" [ 4; 4 ] in
  let e = Tensor_expr.relu (Tensor_expr.matmul a a) in
  let ctx, f = lowered_of e in
  let n_before = Loop_fusion.count_loops f in
  let f' = Loop_fusion.fuse_func ctx f in
  (* the elementwise loop cannot merge into the matmul's outer loop *)
  checki "loop count unchanged" n_before (Loop_fusion.count_loops f');
  let env = [ ("a", Tensor_expr.tensor [ 4; 4 ] (Array.init 16 float_of_int)) ] in
  let before = run_lowered_buf ctx f env e in
  let after = run_lowered_buf ctx f' env e in
  checkb "still correct" true
    (Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) before after)

let prop_fusion_preserves_semantics =
  QCheck.Test.make ~count:40 ~name:"loop fusion preserves semantics"
    (QCheck.make ~print:Tensor_expr.to_string gen_expr) (fun e ->
      let env =
        [ ("a", Tensor_expr.tensor [ 4; 4 ] (Array.init 16 (fun i -> float_of_int (i mod 5) -. 2.0)));
          ("b", Tensor_expr.tensor [ 4; 4 ] (Array.init 16 (fun i -> 0.5 *. float_of_int (7 - i)))) ]
      in
      let ctx, f = lowered_of e in
      let f' = Loop_fusion.fuse_func ctx f in
      let before = run_lowered_buf ctx f env e in
      let after = run_lowered_buf ctx f' env e in
      Loop_fusion.count_loops f' <= Loop_fusion.count_loops f
      && Array.for_all2
           (fun x y -> Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs x))
           before after)

(* property: pareto front never empty and never dominated *)
let prop_pareto_sound =
  QCheck.Test.make ~count:20 ~name:"pareto front sound on random matmul sizes"
    QCheck.(make Gen.(int_range 8 128))
    (fun n ->
      let e = matmul_expr n in
      let vs = Variants.generate e in
      let p = Variants.pareto vs in
      p <> []
      && List.for_all
           (fun v -> not (List.exists (fun w -> Variants.dominates w v) vs))
           p)

let () =
  Alcotest.run "everest_compiler"
    [
      ( "cost-model",
        [ Alcotest.test_case "tiling" `Quick test_tiling_helps_contraction;
          Alcotest.test_case "layout" `Quick test_layout_matters_for_streaming;
          Alcotest.test_case "threads" `Quick test_threads_scale_compute ] );
      ( "variants",
        [ Alcotest.test_case "generation" `Quick test_variant_generation;
          Alcotest.test_case "streaming tiles" `Quick test_streaming_has_no_tiles;
          Alcotest.test_case "pareto" `Quick test_pareto;
          Alcotest.test_case "dift forced" `Quick test_dift_forced_by_annotation;
          QCheck_alcotest.to_alcotest prop_pareto_sound ] );
      ( "dse",
        [ Alcotest.test_case "strategies" `Quick test_dse_exhaustive_vs_sampled;
          Alcotest.test_case "hw wins big matmul" `Quick test_dse_hw_wins_for_big_matmul ] );
      ( "backend",
        [ Alcotest.test_case "sycl" `Quick test_sycl_emission;
          Alcotest.test_case "metadata" `Quick test_metadata ] );
      ( "loops",
        [ Alcotest.test_case "matmul" `Quick test_loops_matmul;
          Alcotest.test_case "elementwise chain" `Quick test_loops_elementwise_chain;
          Alcotest.test_case "transpose+reduce" `Quick test_loops_transpose_reduce;
          Alcotest.test_case "sigmoid" `Quick test_loops_sigmoid;
          Alcotest.test_case "feeds HLS" `Quick test_loops_feed_hls;
          QCheck_alcotest.to_alcotest prop_loops_preserve_semantics ] );
      ( "fusion",
        [ Alcotest.test_case "merges elementwise" `Quick test_fusion_merges_elementwise;
          Alcotest.test_case "chain" `Quick test_fusion_chain;
          Alcotest.test_case "skips matmul" `Quick test_fusion_skips_matmul;
          QCheck_alcotest.to_alcotest prop_fusion_preserves_semantics ] );
      ( "pipeline",
        [ Alcotest.test_case "compile+run" `Quick test_pipeline_compile;
          Alcotest.test_case "rejects invalid" `Quick test_pipeline_rejects_invalid;
          Alcotest.test_case "knowledge bridge" `Quick test_pipeline_knowledge_bridges_to_tuner ] );
    ]
