test/test_autotune.mli:
