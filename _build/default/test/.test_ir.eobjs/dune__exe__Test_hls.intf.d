test/test_hls.mli:
