test/test_sdk.ml: Alcotest Everest Everest_autotune Everest_compiler Everest_dsl Everest_ir List String
