test/test_sdk.mli:
