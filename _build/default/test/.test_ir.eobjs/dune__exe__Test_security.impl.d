test/test_security.ml: Aes Alcotest Bytes Char Cipher Everest_ir Everest_security Gen Hmac Ift List Monitor QCheck QCheck_alcotest Sha256 String
