test/test_autotune.ml: Alcotest Everest_autotune Goal Knowledge List Option QCheck QCheck_alcotest Selector Tuner
