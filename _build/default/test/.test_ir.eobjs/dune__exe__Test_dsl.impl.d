test/test_dsl.ml: Alcotest Annot Array Dataflow Everest_dsl Everest_ir Float List Lower Model_import Particles QCheck QCheck_alcotest String Tensor_expr
