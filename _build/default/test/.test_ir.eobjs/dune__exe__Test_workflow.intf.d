test/test_workflow.mli:
