test/test_hls.ml: Alcotest Array Bind Cdfg Dift Estimate Everest_hls Everest_ir Gen Hls List Mem_partition QCheck QCheck_alcotest Rtl Schedule String
