test/test_workflow.ml: Alcotest Array Cluster Dag Everest_hls Everest_platform Everest_workflow Executor Float List Node Option Placement Printf QCheck QCheck_alcotest Scheduler
