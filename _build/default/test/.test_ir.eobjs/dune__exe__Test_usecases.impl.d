test/test_usecases.ml: Alcotest Array Everest_airq Everest_energy Everest_ml Everest_traffic Float List
