test/test_ml.ml: Alcotest Array Dataset Everest_ml Float Gen Linalg Linreg List Metrics Mlp QCheck QCheck_alcotest Rng
