test/test_platform.ml: Alcotest Cluster Desim Everest_hls Everest_platform Float List Node Printf QCheck QCheck_alcotest Spec
