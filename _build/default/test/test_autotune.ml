(* Tests for everest_autotune: knowledge base, goal satisfaction, selection
   with constraint relaxation, feature clustering and online adaptation. *)

open Everest_autotune

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let point variant ?(features = []) metrics =
  { Knowledge.variant; features; metrics }

let base_knowledge () =
  Knowledge.create "matmul"
    [ point "sw-naive" [ ("time_s", 1.0); ("energy_j", 10.0); ("error", 0.0) ];
      point "sw-tiled" [ ("time_s", 0.4); ("energy_j", 6.0); ("error", 0.0) ];
      point "fpga" [ ("time_s", 0.05); ("energy_j", 1.0); ("error", 0.0) ];
      point "approx" [ ("time_s", 0.02); ("energy_j", 0.5); ("error", 0.08) ] ]

(* ---- selection --------------------------------------------------------------- *)

let test_minimize_time () =
  let k = base_knowledge () in
  let g = Goal.make (Goal.Minimize "time_s") in
  let d = Option.get (Selector.select k g ~features:[]) in
  checks "fastest wins" "approx" d.Selector.point.Knowledge.variant

let test_constraint_filters () =
  let k = base_knowledge () in
  let g =
    Goal.make
      ~constraints:[ Goal.constraint_ "error" Goal.Le 0.01 ]
      (Goal.Minimize "time_s")
  in
  let d = Option.get (Selector.select k g ~features:[]) in
  checks "accuracy constraint excludes approx" "fpga"
    d.Selector.point.Knowledge.variant;
  checki "nothing relaxed" 0 (List.length d.Selector.relaxed)

let test_relaxation_order () =
  let k = base_knowledge () in
  (* impossible pair: time <= 0.01 (nothing) and error <= 0.01; time is the
     less important constraint (higher priority number) and must be
     relaxed first *)
  let g =
    Goal.make
      ~constraints:
        [ Goal.constraint_ ~priority:1 "error" Goal.Le 0.01;
          Goal.constraint_ ~priority:5 "time_s" Goal.Le 0.01 ]
      (Goal.Minimize "energy_j")
  in
  let d = Option.get (Selector.select k g ~features:[]) in
  checki "one relaxed" 1 (List.length d.Selector.relaxed);
  checks "time relaxed, not error" "time_s"
    (List.hd d.Selector.relaxed).Goal.metric;
  checks "error bound still honored" "fpga" d.Selector.point.Knowledge.variant

let test_maximize_and_combo () =
  let k =
    Knowledge.create "quality"
      [ point "a" [ ("quality", 0.9); ("time_s", 2.0) ];
        point "b" [ ("quality", 0.7); ("time_s", 0.5) ] ]
  in
  let g1 = Goal.make (Goal.Maximize "quality") in
  checks "maximize quality" "a"
    (Option.get (Selector.select k g1 ~features:[])).Selector.point.Knowledge.variant;
  (* combo: time * quality^-2 — b's 4x faster time beats a's quality edge *)
  let g2 = Goal.make (Goal.Combo [ ("time_s", 1.0); ("quality", -2.0) ]) in
  checks "combo tradeoff" "b"
    (Option.get (Selector.select k g2 ~features:[])).Selector.point.Knowledge.variant

let test_feature_clustering () =
  let k =
    Knowledge.create "kernel"
      [ point "small-opt" ~features:[ ("size", 1e3) ] [ ("time_s", 0.01) ];
        point "big-opt" ~features:[ ("size", 1e6) ] [ ("time_s", 0.5) ];
        point "big-alt" ~features:[ ("size", 1e6) ] [ ("time_s", 0.8) ] ]
  in
  let g = Goal.make (Goal.Minimize "time_s") in
  let d_small = Option.get (Selector.select k g ~features:[ ("size", 2e3) ]) in
  checks "small cluster" "small-opt" d_small.Selector.point.Knowledge.variant;
  let d_big = Option.get (Selector.select k g ~features:[ ("size", 9e5) ]) in
  checks "big cluster best" "big-opt" d_big.Selector.point.Knowledge.variant

let test_empty_knowledge () =
  let k = Knowledge.create "none" [] in
  checkb "no decision" true
    (Selector.select k (Goal.make (Goal.Minimize "time_s")) ~features:[] = None)

(* ---- adaptation ----------------------------------------------------------------- *)

let test_observation_updates () =
  let k = base_knowledge () in
  Knowledge.observe ~alpha:0.5 k ~variant:"fpga" ~features:[]
    ~measured:[ ("time_s", 0.25) ];
  let p =
    List.find (fun p -> p.Knowledge.variant = "fpga") k.Knowledge.points
  in
  (* EMA: 0.5*0.05 + 0.5*0.25 = 0.15 *)
  Alcotest.check (Alcotest.float 1e-9) "ema applied" 0.15
    (Option.get (Knowledge.metric p "time_s"))

let test_adaptation_switches_variant () =
  (* the FPGA becomes contended: measured times degrade; the tuner must
     switch to the tiled software variant *)
  let k = base_knowledge () in
  let g =
    Goal.make
      ~constraints:[ Goal.constraint_ "error" Goal.Le 0.01 ]
      (Goal.Minimize "time_s")
  in
  let t = Tuner.create ~alpha:0.6 k g in
  let fpga_time = ref 0.05 in
  let run variant =
    match variant with
    | "fpga" -> [ ("time_s", !fpga_time); ("error", 0.0) ]
    | "sw-tiled" -> [ ("time_s", 0.4); ("error", 0.0) ]
    | "sw-naive" -> [ ("time_s", 1.0); ("error", 0.0) ]
    | _ -> [ ("time_s", 0.02); ("error", 0.08) ]
  in
  let first = Option.get (Tuner.step t ~features:[] ~run) in
  checks "starts on fpga" "fpga" (fst first);
  (* degrade the FPGA drastically *)
  fpga_time := 3.0;
  let rec loop n last =
    if n = 0 then last
    else loop (n - 1) (Option.get (Tuner.step t ~features:[] ~run))
  in
  let final = loop 8 first in
  checks "switched to software" "sw-tiled" (fst final);
  checkb "switch counted" true (t.Tuner.switches >= 1)

let test_regret_oracle_zero () =
  let costs _step v = match v with "a" -> 1.0 | _ -> 2.0 in
  let r =
    Tuner.regret ~steps:10 ~variants:[ "a"; "b" ] ~true_costs:costs
      ~chosen:(fun _ -> "a")
  in
  Alcotest.check (Alcotest.float 1e-12) "oracle has zero regret" 0.0 r;
  let r2 =
    Tuner.regret ~steps:10 ~variants:[ "a"; "b" ] ~true_costs:costs
      ~chosen:(fun _ -> "b")
  in
  Alcotest.check (Alcotest.float 1e-12) "bad choice accumulates" 10.0 r2

let prop_selection_satisfies_unrelaxed =
  QCheck.Test.make ~count:100
    ~name:"selected point satisfies all non-relaxed constraints"
    QCheck.(pair (float_range 0.0 1.5) (float_range 0.0 0.1))
    (fun (tbound, ebound) ->
      let k = base_knowledge () in
      let g =
        Goal.make
          ~constraints:
            [ Goal.constraint_ ~priority:1 "time_s" Goal.Le tbound;
              Goal.constraint_ ~priority:2 "error" Goal.Le ebound ]
          (Goal.Minimize "energy_j")
      in
      match Selector.select k g ~features:[] with
      | None -> false
      | Some d ->
          let active =
            List.filter
              (fun c -> not (List.memq c d.Selector.relaxed))
              g.Goal.constraints
          in
          List.for_all (Goal.satisfies d.Selector.point) active)

let () =
  Alcotest.run "everest_autotune"
    [
      ( "select",
        [ Alcotest.test_case "minimize" `Quick test_minimize_time;
          Alcotest.test_case "constraints" `Quick test_constraint_filters;
          Alcotest.test_case "relaxation" `Quick test_relaxation_order;
          Alcotest.test_case "max+combo" `Quick test_maximize_and_combo;
          Alcotest.test_case "feature clusters" `Quick test_feature_clustering;
          Alcotest.test_case "empty" `Quick test_empty_knowledge;
          QCheck_alcotest.to_alcotest prop_selection_satisfies_unrelaxed ] );
      ( "adapt",
        [ Alcotest.test_case "ema update" `Quick test_observation_updates;
          Alcotest.test_case "switches variant" `Quick test_adaptation_switches_variant;
          Alcotest.test_case "regret" `Quick test_regret_oracle_zero ] );
    ]
