(* Tests for everest_ir: types, attributes, construction, verification,
   printing/parsing round-trips, rewriting and interpretation. *)

open Everest_ir

let () = Registry.register_all ()

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---- Types ---------------------------------------------------------------- *)

let test_type_sizes () =
  checki "f64 bytes" 8 (Option.get (Types.byte_size Types.f64));
  checki "tensor bytes" (4 * 6 * 8)
    (Option.get (Types.byte_size (Types.tensor Types.F64 [ 4; 6 ])));
  checki "i8 memref bytes" 16
    (Option.get (Types.byte_size (Types.memref Types.I8 [ 4; 4 ])));
  checkb "dyn tensor has no size" true
    (Types.byte_size (Types.tensor_dyn Types.F32 [ Types.Dyn ]) = None)

let test_type_printing () =
  checks "tensor" "tensor<4x?x8xf32>"
    (Types.to_string (Types.tensor_dyn Types.F32 [ Static 4; Dyn; Static 8 ]));
  checks "memref" "memref<16xf64, bram>"
    (Types.to_string (Types.memref ~space:Types.Bram Types.F64 [ 16 ]));
  checks "stream" "stream<f32>" (Types.to_string (Types.stream Types.f32));
  checks "func" "(f64, i32) -> (f64)"
    (Types.to_string (Types.func [ Types.f64; Types.i32 ] [ Types.f64 ]))

let test_type_compat () =
  let a = Types.tensor_dyn Types.F64 [ Static 4; Dyn ] in
  let b = Types.tensor Types.F64 [ 4; 7 ] in
  checkb "dyn compatible" true (Types.compatible a b);
  checkb "not equal" false (Types.equal a b);
  checkb "mismatch" false
    (Types.compatible b (Types.tensor Types.F64 [ 5; 7 ]))

(* ---- Attributes ----------------------------------------------------------- *)

let test_attrs () =
  let attrs =
    [ ("tile", Attr.ints [ 8; 8 ]); ("name", Attr.str "k"); ("f", Attr.float 2.5) ]
  in
  checkb "ints" true (Attr.find_ints "tile" attrs = Some [ 8; 8 ]);
  checkb "str" true (Attr.find_str "name" attrs = Some "k");
  checkb "float" true (Attr.find_float "f" attrs = Some 2.5);
  checkb "missing" true (Attr.find "zzz" attrs = None);
  let attrs = Attr.set "name" (Attr.str "q") attrs in
  checkb "set replaces" true (Attr.find_str "name" attrs = Some "q");
  checkb "roundtrip equal" true
    (Attr.equal (Attr.dict attrs) (Attr.dict attrs))

(* ---- Construction & verification ------------------------------------------ *)

let build_axpy ctx =
  (* f(a, x, y) = a*x + y over f64 *)
  let a = Ir.fresh_value ctx Types.f64 in
  let x = Ir.fresh_value ctx Types.f64 in
  let y = Ir.fresh_value ctx Types.f64 in
  let m = Dialect_arith.mulf ctx a x in
  let s = Dialect_arith.addf ctx (Ir.result m) y in
  let r = Dialect_func.return ctx [ Ir.result s ] in
  Ir.func "axpy" [ a; x; y ] [ Types.f64 ] [ m; s; r ]

let test_build_verify () =
  let ctx = Ir.ctx () in
  let f = build_axpy ctx in
  let m = Ir.modul "m" [ f ] in
  (match Verify.check_module m with
  | Ok () -> ()
  | Error ds -> Alcotest.failf "unexpected diags: %s" (Verify.errors_to_string ds));
  checki "op count" 3 (Ir.module_op_count m)

let test_verify_use_before_def () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx Types.f64 in
  let ghost = Ir.fresh_value ctx Types.f64 in
  let s = Dialect_arith.addf ctx x ghost in
  let f = Ir.func "bad" [ x ] [] [ s ] in
  let ds = Verify.verify_func f in
  checkb "flagged" true (List.length ds >= 1)

let test_verify_unregistered () =
  let ctx = Ir.ctx () in
  let o = Ir.op ctx "bogus.op" [] [] in
  let f = Ir.func "f" [] [] [ o ] in
  checkb "unregistered flagged" true (List.length (Verify.verify_func f) = 1);
  checkb "allowed when permitted" true
    (Verify.verify_func ~allow_unregistered:true f = [])

let test_verify_bad_callee () =
  let ctx = Ir.ctx () in
  let c = Dialect_func.call ctx "nothere" [] [] in
  let f = Ir.func "f" [] [] [ c ] in
  let m = Ir.modul "m" [ f ] in
  checkb "bad callee flagged" true (Verify.verify_module m <> [])

let test_verify_matmul_shapes () =
  let ctx = Ir.ctx () in
  let a = Ir.fresh_value ctx (Types.tensor Types.F64 [ 2; 3 ]) in
  let b = Ir.fresh_value ctx (Types.tensor Types.F64 [ 5; 2 ]) in
  (* bypass the builder's own check by constructing the op raw *)
  let o = Ir.op ctx "tensor.matmul" [ a; b ] [ Types.tensor Types.F64 [ 2; 2 ] ] in
  let f = Ir.func "f" [ a; b ] [] [ o ] in
  checkb "inner-dim mismatch flagged" true (Verify.verify_func f <> [])

(* ---- Printing and parsing -------------------------------------------------- *)

let test_print_parse_roundtrip () =
  let ctx = Ir.ctx () in
  let f = build_axpy ctx in
  let m = Ir.modul "m" [ f ] in
  let s1 = Printer.module_to_string m in
  let ctx2 = Ir.ctx () in
  let m2 = Parser.parse_module ctx2 s1 in
  let s2 = Printer.module_to_string m2 in
  checks "roundtrip" s1 s2

let test_parse_regions () =
  let src =
    {|module @m {
func @sum(%0: index) -> (f64) {
  %1 = "arith.constant"() {value = 0} : () -> (index)
  %2 = "arith.constant"() {value = 1} : () -> (index)
  %3 = "arith.constant"() {value = 0x0p+0} : () -> (f64)
  %4 = "arith.constant"() {value = 0x1p+0} : () -> (f64)
  %5 = "scf.for"(%1, %0, %2, %3) : (index, index, index, f64) -> (f64) {
^(%6: index, %7: f64):
  %8 = "arith.addf"(%7, %4) : (f64, f64) -> (f64)
  "scf.yield"(%8) : (f64) -> ()
}
  "func.return"(%5) : (f64) -> ()
}
}|}
  in
  let ctx = Ir.ctx () in
  let m = Parser.parse_module ctx src in
  (match Verify.check_module m with
  | Ok () -> ()
  | Error ds -> Alcotest.failf "diags: %s" (Verify.errors_to_string ds));
  let rets, _ = Interp.run_func ctx m "sum" [ Interp.RInt 5 ] in
  checkb "counted to 5" true
    (Interp.rt_equal (List.hd rets) (Interp.RFloat 5.0));
  (* parse is the inverse of print *)
  let s = Printer.module_to_string m in
  let m2 = Parser.parse_module (Ir.ctx ()) s in
  checks "re-roundtrip" s (Printer.module_to_string m2)

let test_parse_types_attrs () =
  let ctx = Ir.ctx () in
  let src =
    {|func @g(%0: memref<4x?xf32, device<1>>, %1: stream<i8>) -> () {
  "df.sink"(%0) {name = "out", meta = {a = [1, 2], b = true, t = tensor<2x2xf64>}} : (memref<4x?xf32, device<1>>) -> ()
}|}
  in
  let f = Parser.parse_func_str ctx src in
  checki "two args" 2 (List.length f.Ir.fargs);
  let o = List.hd f.Ir.fbody in
  (match Ir.attr "meta" o with
  | Some (Attr.Dict d) ->
      checkb "list attr" true (Attr.find_ints "a" d = Some [ 1; 2 ]);
      checkb "bool attr" true (Attr.find_bool "b" d = Some true)
  | _ -> Alcotest.fail "missing dict attr");
  let s = Printer.func_to_string f in
  let f2 = Parser.parse_func_str (Ir.ctx ()) s in
  checks "roundtrip" s (Printer.func_to_string f2)

(* ---- Transformations ------------------------------------------------------- *)

let test_constant_folding () =
  let ctx = Ir.ctx () in
  let c1 = Dialect_arith.const_f ctx 2.0 in
  let c2 = Dialect_arith.const_f ctx 3.0 in
  let s = Dialect_arith.addf ctx (Ir.result c1) (Ir.result c2) in
  let r = Dialect_func.return ctx [ Ir.result s ] in
  let f = Ir.func "k" [] [ Types.f64 ] [ c1; c2; s; r ] in
  let m = Ir.modul "m" [ f ] in
  let m', _ = Pass.run_pipeline ctx Transforms.standard_pipeline m in
  let f' = Option.get (Ir.find_func m' "k") in
  (* after fold + dce only the constant 5.0 and the return remain *)
  checki "two ops left" 2 (List.length f'.Ir.fbody);
  let rets, _ = Interp.run_func ctx m' "k" [] in
  checkb "value preserved" true (Interp.rt_equal (List.hd rets) (RFloat 5.0))

let test_algebraic_identities () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx Types.f64 in
  let zero = Dialect_arith.const_f ctx 0.0 in
  let s = Dialect_arith.addf ctx x (Ir.result zero) in
  let one = Dialect_arith.const_f ctx 1.0 in
  let p = Dialect_arith.mulf ctx (Ir.result s) (Ir.result one) in
  let r = Dialect_func.return ctx [ Ir.result p ] in
  let f = Ir.func "id" [ x ] [ Types.f64 ] [ zero; s; one; p; r ] in
  let m, _ = Pass.run_pipeline ctx Transforms.standard_pipeline (Ir.modul "m" [ f ]) in
  let f' = Option.get (Ir.find_func m "id") in
  checki "identity chain folded away" 1 (List.length f'.Ir.fbody)

let test_involutions () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 3; 4 ]) in
  let t1 = Dialect_tensor.transpose ctx x in
  let t2 = Dialect_tensor.transpose ctx (Ir.result t1) in
  let r = Dialect_func.return ctx [ Ir.result t2 ] in
  let f = Ir.func "tt" [ x ] [ x.Ir.vty ] [ t1; t2; r ] in
  let m, _ = Pass.run_pipeline ctx Transforms.standard_pipeline (Ir.modul "m" [ f ]) in
  let f' = Option.get (Ir.find_func m "tt") in
  checki "double transpose erased" 1 (List.length f'.Ir.fbody)

let test_encrypt_decrypt_fold () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 8 ]) in
  let k = Ir.fresh_value ctx Types.f64 in
  let e = Dialect_sec.encrypt ctx x k in
  let d = Dialect_sec.decrypt ctx (Ir.result e) k in
  let r = Dialect_func.return ctx [ Ir.result d ] in
  let f = Ir.func "ed" [ x; k ] [ x.Ir.vty ] [ e; d; r ] in
  let m, _ = Pass.run_pipeline ctx Transforms.standard_pipeline (Ir.modul "m" [ f ]) in
  let f' = Option.get (Ir.find_func m "ed") in
  checki "encrypt-decrypt folded" 1 (List.length f'.Ir.fbody)

let test_cse () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx Types.f64 in
  let a = Dialect_arith.mulf ctx x x in
  let b = Dialect_arith.mulf ctx x x in
  let s = Dialect_arith.addf ctx (Ir.result a) (Ir.result b) in
  let r = Dialect_func.return ctx [ Ir.result s ] in
  let f = Ir.func "sq2" [ x ] [ Types.f64 ] [ a; b; s; r ] in
  let m, _ = Pass.run_pipeline ctx [ Transforms.cse ] (Ir.modul "m" [ f ]) in
  let f' = Option.get (Ir.find_func m "sq2") in
  checki "duplicate mul removed" 3 (List.length f'.Ir.fbody);
  let rets, _ = Interp.run_func ctx m "sq2" [ RFloat 3.0 ] in
  checkb "semantics kept" true (Interp.rt_equal (List.hd rets) (RFloat 18.0))

let test_dce_keeps_stores () =
  let ctx = Ir.ctx () in
  let alloc = Dialect_memref.alloc ctx Types.F64 [ 4 ] in
  let c = Dialect_arith.const_f ctx 7.0 in
  let i0 = Dialect_arith.const_index ctx 0 in
  let st = Dialect_memref.store ctx (Ir.result c) (Ir.result alloc) [ Ir.result i0 ] in
  let dead = Dialect_arith.addf ctx (Ir.result c) (Ir.result c) in
  let r = Dialect_func.return ctx [] in
  let f = Ir.func "st" [] [] [ alloc; c; i0; st; dead; r ] in
  let m, _ = Pass.run_pipeline ctx [ Transforms.dce ] (Ir.modul "m" [ f ]) in
  let f' = Option.get (Ir.find_func m "st") in
  checki "only dead add removed" 5 (List.length f'.Ir.fbody)

(* ---- Interpreter ------------------------------------------------------------ *)

let test_interp_matmul () =
  let ctx = Ir.ctx () in
  let a = Ir.fresh_value ctx (Types.tensor Types.F64 [ 2; 3 ]) in
  let b = Ir.fresh_value ctx (Types.tensor Types.F64 [ 3; 2 ]) in
  let mm = Dialect_tensor.matmul ctx a b in
  let r = Dialect_func.return ctx [ Ir.result mm ] in
  let f = Ir.func "mm" [ a; b ] [ (Ir.result mm).Ir.vty ] [ mm; r ] in
  let m = Ir.modul "m" [ f ] in
  let av = Interp.tensor_of_array [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let bv = Interp.tensor_of_array [ 3; 2 ] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  let rets, profile = Interp.run_func ctx m "mm" [ av; bv ] in
  let expect = Interp.tensor_of_array [ 2; 2 ] [| 58.; 64.; 139.; 154. |] in
  checkb "matmul result" true (Interp.rt_equal (List.hd rets) expect);
  checki "flop count" (2 * 2 * 2 * 3) profile.Interp.scalar_ops

let test_interp_einsum_matches_matmul () =
  let ctx = Ir.ctx () in
  let ty_a = Types.tensor Types.F64 [ 2; 3 ] in
  let ty_b = Types.tensor Types.F64 [ 3; 2 ] in
  let a = Ir.fresh_value ctx ty_a in
  let b = Ir.fresh_value ctx ty_b in
  let cm = Dialect_tensor.contract ctx "ij,jk->ik" [ a; b ] (Types.tensor Types.F64 [ 2; 2 ]) in
  let r = Dialect_func.return ctx [ Ir.result cm ] in
  let f = Ir.func "ein" [ a; b ] [ (Ir.result cm).Ir.vty ] [ cm; r ] in
  let m = Ir.modul "m" [ f ] in
  let av = Interp.tensor_of_array [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let bv = Interp.tensor_of_array [ 3; 2 ] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  let rets, _ = Interp.run_func ctx m "ein" [ av; bv ] in
  let expect = Interp.tensor_of_array [ 2; 2 ] [| 58.; 64.; 139.; 154. |] in
  checkb "einsum = matmul" true (Interp.rt_equal (List.hd rets) expect)

let test_interp_loop_memref () =
  (* sum of squares 0..n-1 via explicit loop and memref accumulation *)
  let ctx = Ir.ctx () in
  let n = Ir.fresh_value ctx Types.index in
  let zero = Dialect_arith.const_f ctx 0.0 in
  let lo = Dialect_arith.const_index ctx 0 in
  let one = Dialect_arith.const_index ctx 1 in
  let loop =
    Dialect_scf.for_ ctx ~iter_args:[ Ir.result zero ] (Ir.result lo) n
      (Ir.result one) (fun ctx iv args ->
        let fi = Dialect_arith.cast ctx iv Types.f64 in
        let sq = Dialect_arith.mulf ctx (Ir.result fi) (Ir.result fi) in
        let acc = Dialect_arith.addf ctx (List.hd args) (Ir.result sq) in
        ([ fi; sq; acc ], [ Ir.result acc ]))
  in
  let r = Dialect_func.return ctx [ Ir.result loop ] in
  let f = Ir.func "ss" [ n ] [ Types.f64 ] [ zero; lo; one; loop; r ] in
  let m = Ir.modul "m" [ f ] in
  (match Verify.check_module m with
  | Ok () -> ()
  | Error ds -> Alcotest.failf "diags: %s" (Verify.errors_to_string ds));
  let rets, _ = Interp.run_func ctx m "ss" [ RInt 10 ] in
  checkb "sum of squares" true (Interp.rt_equal (List.hd rets) (RFloat 285.0))

let test_interp_call () =
  let ctx = Ir.ctx () in
  let axpy = build_axpy ctx in
  let a = Ir.fresh_value ctx Types.f64 in
  let call = Dialect_func.call ctx "axpy" [ a; a; a ] [ Types.f64 ] in
  let r = Dialect_func.return ctx [ Ir.result call ] in
  let g = Ir.func "g" [ a ] [ Types.f64 ] [ call; r ] in
  let m = Ir.modul "m" [ axpy; g ] in
  let rets, profile = Interp.run_func ctx m "g" [ RFloat 3.0 ] in
  checkb "g(3) = 3*3+3" true (Interp.rt_equal (List.hd rets) (RFloat 12.0));
  checki "one call" 1 profile.Interp.calls

let test_interp_step_budget () =
  let ctx = Ir.ctx () in
  let n = Ir.fresh_value ctx Types.index in
  let lo = Dialect_arith.const_index ctx 0 in
  let one = Dialect_arith.const_index ctx 1 in
  let loop =
    Dialect_scf.for_ ctx (Ir.result lo) n (Ir.result one) (fun ctx iv _ ->
        let sq = Dialect_arith.muli ctx iv iv in
        ([ sq ], []))
  in
  let r = Dialect_func.return ctx [] in
  let f = Ir.func "spin" [ n ] [] [ lo; one; loop; r ] in
  let m = Ir.modul "m" [ f ] in
  match Interp.run_func ~max_steps:100 ctx m "spin" [ RInt 1000 ] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected step budget exhaustion"

(* ---- loop transforms --------------------------------------------------------- *)

(* sum of i*i for i in 0..n-1, as an IR loop *)
let build_sumsq ctx n =
  let zero = Dialect_arith.const_f ctx 0.0 in
  let lo = Dialect_arith.const_index ctx 0 in
  let hi = Dialect_arith.const_index ctx n in
  let one = Dialect_arith.const_index ctx 1 in
  let loop =
    Dialect_scf.for_ ctx ~iter_args:[ Ir.result zero ] (Ir.result lo)
      (Ir.result hi) (Ir.result one) (fun ctx iv args ->
        let fi = Dialect_arith.cast ctx iv Types.f64 in
        let sq = Dialect_arith.mulf ctx (Ir.result fi) (Ir.result fi) in
        let acc = Dialect_arith.addf ctx (List.hd args) (Ir.result sq) in
        ([ fi; sq; acc ], [ Ir.result acc ]))
  in
  let r = Dialect_func.return ctx [ Ir.result loop ] in
  Ir.func "sumsq" [] [ Types.f64 ] [ zero; lo; hi; one; loop; r ]

let count_loops f =
  Ir.fold_ops
    (fun acc (o : Ir.op) -> if o.Ir.name = "scf.for" then acc + 1 else acc)
    0 f.Ir.fbody

let eval_f ctx f =
  let m = Ir.modul "m" [ f ] in
  (match Verify.check_module m with
  | Ok () -> ()
  | Error ds -> Alcotest.failf "invalid: %s" (Verify.errors_to_string ds));
  let rets, _ = Interp.run_func ctx m f.Ir.fname [] in
  List.hd rets

let test_full_unroll () =
  let ctx = Ir.ctx () in
  let f = build_sumsq ctx 7 in
  let expect = eval_f ctx f in
  let f' = Loop_transforms.full_unroll ctx f in
  checki "no loops left" 0 (count_loops f');
  checkb "semantics preserved" true (Interp.rt_equal (eval_f ctx f') expect)

let test_full_unroll_respects_limit () =
  let ctx = Ir.ctx () in
  let f = build_sumsq ctx 100 in
  let f' = Loop_transforms.full_unroll ~limit:16 ctx f in
  checki "big loop kept" 1 (count_loops f')

let test_partial_unroll () =
  let ctx = Ir.ctx () in
  let f = build_sumsq ctx 12 in
  let expect = eval_f ctx f in
  let f' = Loop_transforms.unroll_by ctx ~factor:4 f in
  checki "loop remains" 1 (count_loops f');
  checkb "semantics preserved" true (Interp.rt_equal (eval_f ctx f') expect);
  (* body got wider: 4 multiplies instead of 1 *)
  let muls =
    Ir.fold_ops
      (fun acc (o : Ir.op) -> if o.Ir.name = "arith.mulf" then acc + 1 else acc)
      0 f'.Ir.fbody
  in
  checki "replicated body" 4 muls

let test_partial_unroll_skips_indivisible () =
  let ctx = Ir.ctx () in
  let f = build_sumsq ctx 10 in
  let expect = eval_f ctx f in
  let f' = Loop_transforms.unroll_by ctx ~factor:3 f in
  (* 10 mod 3 <> 0: unchanged *)
  checki "loop kept" 1 (count_loops f');
  checkb "semantics" true (Interp.rt_equal (eval_f ctx f') expect)

let test_inline () =
  let ctx = Ir.ctx () in
  let axpy = build_axpy ctx in
  let a = Ir.fresh_value ctx Types.f64 in
  let call1 = Dialect_func.call ctx "axpy" [ a; a; a ] [ Types.f64 ] in
  let call2 =
    Dialect_func.call ctx "axpy" [ Ir.result call1; a; a ] [ Types.f64 ]
  in
  let r = Dialect_func.return ctx [ Ir.result call2 ] in
  let g = Ir.func "g" [ a ] [ Types.f64 ] [ call1; call2; r ] in
  let m = Ir.modul "m" [ axpy; g ] in
  let rets_before, _ = Interp.run_func ctx m "g" [ RFloat 2.0 ] in
  let m' = Loop_transforms.inline_module ctx m in
  let g' = Option.get (Ir.find_func m' "g") in
  let calls =
    Ir.fold_ops
      (fun acc (o : Ir.op) -> if o.Ir.name = "func.call" then acc + 1 else acc)
      0 g'.Ir.fbody
  in
  checki "all calls inlined" 0 calls;
  let rets_after, _ = Interp.run_func ctx m' "g" [ RFloat 2.0 ] in
  checkb "semantics preserved" true
    (Interp.rt_equal (List.hd rets_before) (List.hd rets_after))

let prop_unroll_preserves =
  QCheck.Test.make ~count:60 ~name:"unrolling preserves loop semantics"
    QCheck.(pair (int_range 1 24) (int_range 1 6))
    (fun (n, factor) ->
      let ctx = Ir.ctx () in
      let f = build_sumsq ctx n in
      let m = Ir.modul "m" [ f ] in
      let expect, _ = Interp.run_func ctx m "sumsq" [] in
      let full = Loop_transforms.full_unroll ~limit:64 ctx f in
      let partial = Loop_transforms.unroll_by ctx ~factor f in
      let got_full, _ = Interp.run_func ctx (Ir.modul "m" [ full ]) "sumsq" [] in
      let got_partial, _ =
        Interp.run_func ctx (Ir.modul "m" [ partial ]) "sumsq" []
      in
      Interp.rt_equal (List.hd got_full) (List.hd expect)
      && Interp.rt_equal (List.hd got_partial) (List.hd expect))

(* ---- QCheck properties ------------------------------------------------------ *)

(* Random scalar expression trees: canonicalization must preserve value. *)
let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then map (fun f -> `Const (float_of_int f)) (int_range (-10) 10)
        else
          frequency
            [ (1, map (fun f -> `Const (float_of_int f)) (int_range (-10) 10));
              (2, map2 (fun a b -> `Add (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> `Sub (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> `Mul (a, b)) (self (n / 2)) (self (n / 2))) ]))

let rec expr_value = function
  | `Const f -> f
  | `Add (a, b) -> expr_value a +. expr_value b
  | `Sub (a, b) -> expr_value a -. expr_value b
  | `Mul (a, b) -> expr_value a *. expr_value b

let rec build_expr ctx = function
  | `Const f ->
      let c = Dialect_arith.const_f ctx f in
      ([ c ], Ir.result c)
  | `Add (a, b) | `Sub (a, b) | `Mul (a, b) as e ->
      let ops_a, va = build_expr ctx a in
      let ops_b, vb = build_expr ctx b in
      let o =
        match e with
        | `Add _ -> Dialect_arith.addf ctx va vb
        | `Sub _ -> Dialect_arith.subf ctx va vb
        | _ -> Dialect_arith.mulf ctx va vb
      in
      (ops_a @ ops_b @ [ o ], Ir.result o)

let rec print_expr = function
  | `Const f -> Printf.sprintf "%g" f
  | `Add (a, b) -> Printf.sprintf "(%s + %s)" (print_expr a) (print_expr b)
  | `Sub (a, b) -> Printf.sprintf "(%s - %s)" (print_expr a) (print_expr b)
  | `Mul (a, b) -> Printf.sprintf "(%s * %s)" (print_expr a) (print_expr b)

let prop_canonicalize_preserves_value =
  QCheck.Test.make ~count:200 ~name:"canonicalize preserves expression value"
    (QCheck.make ~print:print_expr gen_expr) (fun e ->
      let ctx = Ir.ctx () in
      let ops, v = build_expr ctx e in
      let r = Dialect_func.return ctx [ v ] in
      let f = Ir.func "e" [] [ Types.f64 ] (ops @ [ r ]) in
      let m = Ir.modul "m" [ f ] in
      let m', _ = Pass.run_pipeline ctx Transforms.standard_pipeline m in
      let rets, _ = Interp.run_func ctx m' "e" [] in
      Interp.rt_equal ~eps:1e-6 (List.hd rets) (RFloat (expr_value e)))

let prop_canonicalize_fully_folds_consts =
  QCheck.Test.make ~count:100 ~name:"constant trees fold to a single constant"
    (QCheck.make ~print:print_expr gen_expr) (fun e ->
      let ctx = Ir.ctx () in
      let ops, v = build_expr ctx e in
      let r = Dialect_func.return ctx [ v ] in
      let f = Ir.func "e" [] [ Types.f64 ] (ops @ [ r ]) in
      let m = Ir.modul "m" [ f ] in
      let m', _ = Pass.run_pipeline ctx Transforms.standard_pipeline m in
      let f' = Option.get (Ir.find_func m' "e") in
      List.length f'.Ir.fbody = 2)

let prop_roundtrip =
  QCheck.Test.make ~count:100 ~name:"print/parse roundtrip on random exprs"
    (QCheck.make ~print:print_expr gen_expr) (fun e ->
      let ctx = Ir.ctx () in
      let ops, v = build_expr ctx e in
      let r = Dialect_func.return ctx [ v ] in
      let f = Ir.func "e" [] [ Types.f64 ] (ops @ [ r ]) in
      let s = Printer.func_to_string f in
      let f2 = Parser.parse_func_str (Ir.ctx ()) s in
      String.equal s (Printer.func_to_string f2))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_canonicalize_preserves_value; prop_canonicalize_fully_folds_consts;
      prop_roundtrip ]

let () =
  Alcotest.run "everest_ir"
    [
      ( "types",
        [ Alcotest.test_case "sizes" `Quick test_type_sizes;
          Alcotest.test_case "printing" `Quick test_type_printing;
          Alcotest.test_case "compat" `Quick test_type_compat ] );
      ("attrs", [ Alcotest.test_case "find/set" `Quick test_attrs ]);
      ( "verify",
        [ Alcotest.test_case "build+verify" `Quick test_build_verify;
          Alcotest.test_case "use-before-def" `Quick test_verify_use_before_def;
          Alcotest.test_case "unregistered" `Quick test_verify_unregistered;
          Alcotest.test_case "bad callee" `Quick test_verify_bad_callee;
          Alcotest.test_case "matmul shapes" `Quick test_verify_matmul_shapes ] );
      ( "printer-parser",
        [ Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "regions" `Quick test_parse_regions;
          Alcotest.test_case "types+attrs" `Quick test_parse_types_attrs ] );
      ( "transforms",
        [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "identities" `Quick test_algebraic_identities;
          Alcotest.test_case "involutions" `Quick test_involutions;
          Alcotest.test_case "encrypt-decrypt" `Quick test_encrypt_decrypt_fold;
          Alcotest.test_case "cse" `Quick test_cse;
          Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores ] );
      ( "interp",
        [ Alcotest.test_case "matmul" `Quick test_interp_matmul;
          Alcotest.test_case "einsum" `Quick test_interp_einsum_matches_matmul;
          Alcotest.test_case "loop" `Quick test_interp_loop_memref;
          Alcotest.test_case "call" `Quick test_interp_call;
          Alcotest.test_case "step budget" `Quick test_interp_step_budget ] );
      ( "loop-transforms",
        [ Alcotest.test_case "full unroll" `Quick test_full_unroll;
          Alcotest.test_case "unroll limit" `Quick test_full_unroll_respects_limit;
          Alcotest.test_case "partial unroll" `Quick test_partial_unroll;
          Alcotest.test_case "indivisible skipped" `Quick test_partial_unroll_skips_indivisible;
          Alcotest.test_case "inline" `Quick test_inline;
          QCheck_alcotest.to_alcotest prop_unroll_preserves ] );
      ("properties", qcheck_tests);
    ]
