(* Tests for everest_hls: DFG extraction, scheduling, binding, memory
   partitioning, estimation, DIFT and RTL generation. *)

open Everest_hls
module Ir = Everest_ir.Ir
module Types = Everest_ir.Types
module Arith = Everest_ir.Dialect_arith
module Memref = Everest_ir.Dialect_memref

let () = Everest_ir.Registry.register_all ()

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* A small hand-built DFG: two independent mul chains feeding an add,
   then a store. *)
let diamond () =
  let b = Cdfg.builder () in
  Cdfg.declare_array b "a" 64;
  let c1 = Cdfg.add_node b Cdfg.Const "const" [] in
  let l1 = Cdfg.add_node b ~array:"a" ~index:(Cdfg.Affine { coeff = 1; offset = 0 }) Cdfg.Load "load" [] in
  let l2 = Cdfg.add_node b ~array:"a" ~index:(Cdfg.Affine { coeff = 1; offset = 1 }) Cdfg.Load "load" [] in
  let m1 = Cdfg.add_node b Cdfg.Mul "mul" [ l1; c1 ] in
  let m2 = Cdfg.add_node b Cdfg.Mul "mul" [ l2; c1 ] in
  let s = Cdfg.add_node b Cdfg.Add "add" [ m1; m2 ] in
  let _st = Cdfg.add_node b ~array:"a" ~index:(Cdfg.Affine { coeff = 1; offset = 2 }) Cdfg.Store "store" [ s ] in
  Cdfg.finish b

(* ---- scheduling -------------------------------------------------------------- *)

let test_asap_chain () =
  let b = Cdfg.builder () in
  let n1 = Cdfg.add_node b Cdfg.Add "a" [] in
  let n2 = Cdfg.add_node b Cdfg.Mul "m" [ n1 ] in
  let n3 = Cdfg.add_node b Cdfg.Div "d" [ n2 ] in
  let g = Cdfg.finish b in
  let s = Schedule.asap g in
  checki "chain latency" (1 + 3 + 12) s.Schedule.makespan;
  checki "n3 starts after mul" 4 s.Schedule.start.(n3);
  checki "n2 starts after add" 1 s.Schedule.start.(n2)

let test_asap_parallel () =
  let b = Cdfg.builder () in
  let _ = Cdfg.add_node b Cdfg.Add "a" [] in
  let _ = Cdfg.add_node b Cdfg.Add "b" [] in
  let g = Cdfg.finish b in
  let s = Schedule.asap g in
  checki "parallel adds" 1 s.Schedule.makespan

let test_list_schedule_valid () =
  let g = diamond () in
  let res = Schedule.default_resources in
  let s = Schedule.list_schedule ~res g in
  checkb "dependencies respected" true (Schedule.validate g s ~res);
  checkb "binding valid" true (Bind.validate g s (Bind.bind g s));
  checkb "no slower than needed" true
    (s.Schedule.makespan >= (Schedule.asap g).Schedule.makespan)

let test_resource_pressure_monotone () =
  let g = Cdfg.random ~n:120 ~load_frac:0.2 ~mul_frac:0.4 () in
  let rich =
    Schedule.list_schedule
      ~res:{ Schedule.default_resources with multipliers = 8; adders = 8 } g
  in
  let poor =
    Schedule.list_schedule
      ~res:{ Schedule.default_resources with multipliers = 1; adders = 1 } g
  in
  checkb "fewer units, longer schedule" true
    (poor.Schedule.makespan >= rich.Schedule.makespan);
  checkb "rich no faster than ASAP" true
    (rich.Schedule.makespan >= (Schedule.asap g).Schedule.makespan)

let test_min_ii () =
  let b = Cdfg.builder () in
  for _ = 1 to 4 do ignore (Cdfg.add_node b Cdfg.Mul "m" []) done;
  let g = Cdfg.finish b in
  checki "4 muls / 2 units" 2
    (Schedule.min_ii ~res:{ Schedule.default_resources with multipliers = 2 } g);
  checki "4 muls / 4 units" 1
    (Schedule.min_ii ~res:{ Schedule.default_resources with multipliers = 4 } g)

let test_pipelined_cycles () =
  let g = diamond () in
  let res = Schedule.default_resources in
  let seq = (Schedule.list_schedule ~res g).Schedule.makespan * 100 in
  let pipe = Schedule.pipelined_cycles ~res g ~trips:100 in
  checkb "pipelining wins on many trips" true (pipe < seq)

(* ---- binding ------------------------------------------------------------------- *)

let test_binding_shares_fus () =
  let b = Cdfg.builder () in
  (* two adds that cannot overlap (dependency) share one adder *)
  let n1 = Cdfg.add_node b Cdfg.Add "a" [] in
  let _n2 = Cdfg.add_node b Cdfg.Add "b" [ n1 ] in
  let g = Cdfg.finish b in
  let s = Schedule.list_schedule g in
  let bd = Bind.bind g s in
  checki "one adder" 1 (Bind.fu_count bd Cdfg.Add)

let test_binding_parallel_needs_two () =
  let b = Cdfg.builder () in
  let _ = Cdfg.add_node b Cdfg.Add "a" [] in
  let _ = Cdfg.add_node b Cdfg.Add "b" [] in
  let g = Cdfg.finish b in
  let s = Schedule.list_schedule g in
  let bd = Bind.bind g s in
  checki "two adders" 2 (Bind.fu_count bd Cdfg.Add)

(* ---- memory partitioning --------------------------------------------------------- *)

let test_partition_cyclic_stride1 () =
  (* unroll 4, accesses i, i+1, i+2, i+3: cyclic with 4 banks is conflict-free *)
  let accesses = [ Cdfg.Affine { coeff = 1; offset = 0 } ] in
  let cfg = { Mem_partition.scheme = Mem_partition.Cyclic; banks = 4 } in
  checki "cyclic conflict-free" 0
    (Mem_partition.conflicts cfg ~array_size:64 ~unroll:4 ~window:8 accesses);
  let blk = { Mem_partition.scheme = Mem_partition.Block; banks = 4 } in
  checkb "block has conflicts on stride-1" true
    (Mem_partition.conflicts blk ~array_size:64 ~unroll:4 ~window:8 accesses > 0)

let test_partition_block_for_blocked () =
  (* accesses i and i+32 over 64 elements: block banking separates them *)
  let accesses =
    [ Cdfg.Affine { coeff = 1; offset = 0 }; Cdfg.Affine { coeff = 1; offset = 32 } ]
  in
  let blk = { Mem_partition.scheme = Mem_partition.Block; banks = 2 } in
  checki "block separates halves" 0
    (Mem_partition.conflicts blk ~array_size:64 ~unroll:1 ~window:8 accesses)

let test_partition_optimize () =
  let accesses = [ Cdfg.Affine { coeff = 1; offset = 0 } ] in
  let cfg, ii = Mem_partition.optimize ~ports:1 ~array_size:64 ~unroll:8 accesses in
  checki "found conflict-free banking" 1 ii;
  checkb "needs >= 8 banks" true (cfg.Mem_partition.banks >= 8)

let test_partition_dfg_improves_ii () =
  let g = diamond () in
  let _, mem_ii = Mem_partition.optimize_dfg ~ports:1 ~unroll:1 g in
  (* three accesses to "a" on one port need banking to reach II 1 *)
  checki "banked II" 1 mem_ii

(* ---- estimation ------------------------------------------------------------------ *)

let test_estimate_areas () =
  let g = diamond () in
  let s = Schedule.list_schedule g in
  let bd = Bind.bind g s in
  let e = Estimate.of_design g bd ~cycles:s.Schedule.makespan ~ii:1 ~banks:1 in
  checkb "has DSPs from muls" true (e.Estimate.area.Estimate.dsps > 0);
  checkb "has BRAM" true (e.Estimate.area.Estimate.brams >= 1);
  checkb "positive power" true (e.Estimate.dynamic_power_w > 0.0);
  checkb "exec time positive" true (Estimate.exec_time_s e > 0.0);
  let budget = { Estimate.luts = 10_000; ffs = 10_000; dsps = 100; brams = 50 } in
  checkb "fits a mid-size FPGA" true (Estimate.fits ~budget e)

(* ---- DIFT -------------------------------------------------------------------------- *)

let test_dift_propagation () =
  let g = diamond () in
  let inst = Dift.instrument g in
  checki "one check at the store" 1 (List.length inst.Dift.checks);
  (* taint the first load (node 1): flows through mul/add to the store *)
  let fired = Dift.simulate inst ~tainted_inputs:[ 1 ] in
  checki "tainted store detected" 1 (List.length fired);
  let none = Dift.simulate inst ~tainted_inputs:[] in
  checki "clean run" 0 (List.length none);
  checkb "overhead positive but small" true
    (let ov = Dift.overhead inst { Estimate.luts = 1000; ffs = 0; dsps = 0; brams = 0 } in
     ov > 0.0 && ov < 0.2)

(* ---- RTL --------------------------------------------------------------------------- *)

let test_rtl_emission () =
  let g = diamond () in
  let d = Hls.synthesize ~name:"diamond" g in
  let text = Rtl.to_string d.Hls.rtl in
  checkb "module header" true
    (String.length text > 0
    && String.sub text 0 14 = "module diamond");
  checki "one state per cycle" d.Hls.schedule.Schedule.makespan
    (List.length d.Hls.rtl.Rtl.states);
  checkb "instances emitted" true (List.length d.Hls.rtl.Rtl.instances > 0)

(* ---- from IR ------------------------------------------------------------------------ *)

let build_saxpy_body ctx =
  (* loop body: y[i] = a * x[i] + y[i] *)
  let x = Ir.fresh_value ctx (Types.memref Types.F64 [ 64 ]) in
  let y = Ir.fresh_value ctx (Types.memref Types.F64 [ 64 ]) in
  let iv = Ir.fresh_value ctx Types.index in
  let a = Arith.const_f ctx 3.0 in
  let lx = Memref.load ctx x [ iv ] in
  let ly = Memref.load ctx y [ iv ] in
  let m = Arith.mulf ctx (Ir.result a) (Ir.result lx) in
  let s = Arith.addf ctx (Ir.result m) (Ir.result ly) in
  let st = Memref.store ctx (Ir.result s) y [ iv ] in
  ([ a; lx; ly; m; s; st ], iv)

let test_cdfg_from_ir () =
  let ctx = Ir.ctx () in
  let ops, iv = build_saxpy_body ctx in
  let g = Cdfg.of_ir_ops ~iv ops in
  checki "six nodes" 6 (Cdfg.size g);
  checki "two loads" 2 (Cdfg.count_class g Cdfg.Load);
  checki "one store" 1 (Cdfg.count_class g Cdfg.Store);
  checki "one mul" 1 (Cdfg.count_class g Cdfg.Mul);
  (* affine index recovered for loads *)
  let load_idx =
    Array.to_list g.Cdfg.nodes
    |> List.filter_map (fun (n : Cdfg.node) ->
           if n.Cdfg.cls = Cdfg.Load then Some n.Cdfg.index else None)
  in
  checkb "affine indices" true
    (List.for_all
       (function Cdfg.Affine { coeff = 1; offset = 0 } -> true | _ -> false)
       load_idx)

let test_cdfg_affine_arith () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.memref Types.F64 [ 64 ]) in
  let iv = Ir.fresh_value ctx Types.index in
  let c2 = Arith.const_index ctx 2 in
  let c5 = Arith.const_index ctx 5 in
  let t = Arith.muli ctx iv (Ir.result c2) in
  let u = Arith.addi ctx (Ir.result t) (Ir.result c5) in
  let l = Memref.load ctx x [ Ir.result u ] in
  let g = Cdfg.of_ir_ops ~iv [ c2; c5; t; u; l ] in
  let idx =
    Array.to_list g.Cdfg.nodes
    |> List.find_map (fun (n : Cdfg.node) ->
           if n.Cdfg.cls = Cdfg.Load then Some n.Cdfg.index else None)
  in
  checkb "2*i+5 recovered" true
    (idx = Some (Cdfg.Affine { coeff = 2; offset = 5 }))

let test_synthesize_ir_end_to_end () =
  let ctx = Ir.ctx () in
  let ops, iv = build_saxpy_body ctx in
  let c = { Hls.default_constraints with trips = 64; unroll = 2 } in
  let d = Hls.synthesize_ir ~c ~name:"saxpy" ~iv ops in
  checkb "pipelined" true (d.Hls.estimate.Estimate.ii >= 1);
  checkb "fewer cycles than sequential x64" true
    (d.Hls.estimate.Estimate.cycles < d.Hls.schedule.Schedule.makespan * 64);
  checkb "valid schedule" true
    (Schedule.validate d.Hls.dfg d.Hls.schedule ~res:c.Hls.res)

let test_dift_area_increases () =
  let g = diamond () in
  let base = Hls.synthesize ~name:"k" g in
  let sec =
    Hls.synthesize ~c:{ Hls.default_constraints with dift = true } ~name:"k" g
  in
  checkb "DIFT adds area" true
    (sec.Hls.estimate.Estimate.area.Estimate.luts
    > base.Hls.estimate.Estimate.area.Estimate.luts);
  checki "same cycles" base.Hls.estimate.Estimate.cycles
    sec.Hls.estimate.Estimate.cycles

(* property: schedules from random DFGs are always valid and binding-safe *)
let prop_schedule_valid =
  QCheck.Test.make ~count:40 ~name:"list schedule validity on random DFGs"
    QCheck.(make Gen.(int_range 5 80))
    (fun n ->
      let g = Cdfg.random ~seed:(n * 7) ~n ~load_frac:0.25 ~mul_frac:0.3 () in
      let res = Schedule.default_resources in
      let s = Schedule.list_schedule ~res g in
      Schedule.validate g s ~res && Bind.validate g s (Bind.bind g s))

let prop_partition_never_hurts =
  QCheck.Test.make ~count:30 ~name:"partitioning never raises memory II"
    QCheck.(make Gen.(int_range 2 16))
    (fun unroll ->
      let accesses = [ Cdfg.Affine { coeff = 1; offset = 0 } ] in
      let single = { Mem_partition.scheme = Mem_partition.Cyclic; banks = 1 } in
      let ii1 = Mem_partition.ii_for single ~ports:2 ~array_size:256 ~unroll accesses in
      let _, ii_opt = Mem_partition.optimize ~ports:2 ~array_size:256 ~unroll accesses in
      ii_opt <= ii1)

let () =
  Alcotest.run "everest_hls"
    [
      ( "schedule",
        [ Alcotest.test_case "asap chain" `Quick test_asap_chain;
          Alcotest.test_case "asap parallel" `Quick test_asap_parallel;
          Alcotest.test_case "list valid" `Quick test_list_schedule_valid;
          Alcotest.test_case "resource pressure" `Quick test_resource_pressure_monotone;
          Alcotest.test_case "min II" `Quick test_min_ii;
          Alcotest.test_case "pipelining" `Quick test_pipelined_cycles ] );
      ( "bind",
        [ Alcotest.test_case "shares FUs" `Quick test_binding_shares_fus;
          Alcotest.test_case "parallel needs two" `Quick test_binding_parallel_needs_two ] );
      ( "partition",
        [ Alcotest.test_case "cyclic stride-1" `Quick test_partition_cyclic_stride1;
          Alcotest.test_case "block for halves" `Quick test_partition_block_for_blocked;
          Alcotest.test_case "optimize" `Quick test_partition_optimize;
          Alcotest.test_case "dfg II" `Quick test_partition_dfg_improves_ii ] );
      ("estimate", [ Alcotest.test_case "areas" `Quick test_estimate_areas ]);
      ( "dift",
        [ Alcotest.test_case "propagation" `Quick test_dift_propagation;
          Alcotest.test_case "area overhead" `Quick test_dift_area_increases ] );
      ("rtl", [ Alcotest.test_case "emission" `Quick test_rtl_emission ]);
      ( "from-ir",
        [ Alcotest.test_case "saxpy body" `Quick test_cdfg_from_ir;
          Alcotest.test_case "affine recovery" `Quick test_cdfg_affine_arith;
          Alcotest.test_case "end-to-end" `Quick test_synthesize_ir_end_to_end ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_schedule_valid; prop_partition_never_hurts ] );
    ]
