(* Tests for everest_ml: RNG, linear algebra, dataset handling, MLP
   training, linear regression and metrics. *)

open Everest_ml

let checkb = Alcotest.check Alcotest.bool
let checkf eps = Alcotest.check (Alcotest.float eps)

(* ---- rng ---------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    checkf 0.0 "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_uniform_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng 2.0 5.0 in
    checkb "in range" true (x >= 2.0 && x < 5.0)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 7 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian ~mu:3.0 ~sigma:2.0 rng) in
  checkb "mean near 3" true (Float.abs (Metrics.mean xs -. 3.0) < 0.1);
  checkb "std near 2" true (Float.abs (Metrics.stddev xs -. 2.0) < 0.1)

let test_rng_int_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    checkb "bounded" true (x >= 0 && x < 7)
  done

(* ---- linalg ------------------------------------------------------------------- *)

let test_matmul () =
  let a = Linalg.of_array 2 3 [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Linalg.of_array 3 2 [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  let c = Linalg.matmul a b in
  checkb "result" true (c.Linalg.data = [| 58.; 64.; 139.; 154. |])

let test_solve () =
  (* A = [[2,1],[1,3]], b = [5,10] -> x = [1,3] *)
  let a = Linalg.of_array 2 2 [| 2.; 1.; 1.; 3. |] in
  let x = Linalg.solve a [| 5.; 10. |] in
  checkf 1e-9 "x0" 1.0 x.(0);
  checkf 1e-9 "x1" 3.0 x.(1)

let test_solve_singular () =
  let a = Linalg.of_array 2 2 [| 1.; 2.; 2.; 4. |] in
  match Linalg.solve a [| 1.; 2. |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "singular must fail"

let prop_solve_inverts =
  QCheck.Test.make ~count:50 ~name:"solve recovers x from A x"
    QCheck.(list_of_size (Gen.return 9) (float_range (-5.0) 5.0))
    (fun entries ->
      let a = Linalg.of_array 3 3 (Array.of_list entries) in
      (* make it diagonally dominant so it is well-conditioned *)
      for i = 0 to 2 do
        Linalg.set a i i (Linalg.get a i i +. 20.0)
      done;
      let x = [| 1.0; -2.0; 0.5 |] in
      let b = Linalg.matvec a x in
      let x' = Linalg.solve a b in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) x x')

(* ---- dataset ------------------------------------------------------------------- *)

let test_normalization () =
  let xs = [| [| 1.0; 100.0 |]; [| 3.0; 300.0 |]; [| 5.0; 500.0 |] |] in
  let norm = Dataset.fit_norm xs in
  let n = Array.map (Dataset.normalize norm) xs in
  let col j = Array.map (fun r -> r.(j)) n in
  checkb "zero mean" true (Float.abs (Metrics.mean (col 0)) < 1e-9);
  checkb "unit std col2" true (Float.abs (Metrics.stddev (col 1) -. 1.0) < 1e-9)

let test_batches_cover_all () =
  let rng = Rng.create 5 in
  let xs = Array.init 10 (fun i -> [| float_of_int i |]) in
  let ys = Array.init 10 (fun i -> [| float_of_int i |]) in
  let bs = Dataset.batches rng ~batch_size:3 xs ys in
  let total = List.fold_left (fun acc (bx, _) -> acc + Array.length bx) 0 bs in
  Alcotest.check Alcotest.int "all samples batched" 10 total

(* ---- mlp ----------------------------------------------------------------------- *)

let test_mlp_learns_xor () =
  let xs = [| [| 0.; 0. |]; [| 0.; 1. |]; [| 1.; 0. |]; [| 1.; 1. |] |] in
  let ys = [| [| 0. |]; [| 1. |]; [| 1. |]; [| 0. |] |] in
  let net = Mlp.create ~seed:3 ~layers:[ 2; 8; 1 ] ~activation:Mlp.Tanh () in
  let losses = Mlp.fit ~epochs:800 ~lr:0.05 ~batch_size:4 net xs ys in
  let final = List.nth losses (List.length losses - 1) in
  checkb "converged" true (final < 0.05);
  Array.iteri
    (fun i x ->
      let p = (Mlp.predict net x).(0) in
      checkb "classifies" true (Float.abs (p -. ys.(i).(0)) < 0.4))
    xs

let test_mlp_regression () =
  (* y = 2a - b + 1 *)
  let rng = Rng.create 17 in
  let xs = Array.init 200 (fun _ -> [| Rng.float rng; Rng.float rng |]) in
  let ys = Array.map (fun x -> [| (2.0 *. x.(0)) -. x.(1) +. 1.0 |]) xs in
  let net = Mlp.create ~seed:4 ~layers:[ 2; 8; 1 ] ~activation:Mlp.Relu () in
  ignore (Mlp.fit ~epochs:200 ~lr:0.02 net xs ys);
  let pred = Array.map (fun x -> (Mlp.predict net x).(0)) xs in
  let truth = Array.map (fun y -> y.(0)) ys in
  checkb "r2 high" true (Metrics.r2 pred truth > 0.95)

let test_mlp_loss_decreases () =
  let rng = Rng.create 23 in
  let xs = Array.init 100 (fun _ -> [| Rng.float rng |]) in
  let ys = Array.map (fun x -> [| sin (6.0 *. x.(0)) |]) xs in
  let net = Mlp.create ~seed:6 ~layers:[ 1; 16; 1 ] ~activation:Mlp.Tanh () in
  let losses = Mlp.fit ~epochs:150 ~lr:0.05 net xs ys in
  let first = List.hd losses and last = List.nth losses (List.length losses - 1) in
  checkb "loss decreased" true (last < first /. 2.0)

let test_mlp_flops () =
  let net = Mlp.create ~layers:[ 10; 20; 5 ] ~activation:Mlp.Relu () in
  Alcotest.check Alcotest.int "flops" (2 * ((10 * 20) + (20 * 5)))
    (Mlp.inference_flops net)

(* ---- linreg -------------------------------------------------------------------- *)

let test_linreg_exact () =
  let xs = Array.init 50 (fun i -> [| float_of_int i; float_of_int (i * i) |]) in
  let ys = Array.map (fun x -> (3.0 *. x.(0)) -. (0.5 *. x.(1)) +. 2.0) xs in
  let m = Linreg.fit xs ys in
  checkf 1e-6 "w0" 3.0 m.Linreg.weights.(0);
  checkf 1e-6 "w1" (-0.5) m.Linreg.weights.(1);
  checkf 1e-4 "bias" 2.0 m.Linreg.bias

(* ---- metrics ------------------------------------------------------------------- *)

let test_metrics_basic () =
  let pred = [| 1.0; 2.0; 3.0 |] and truth = [| 1.0; 1.0; 5.0 |] in
  checkf 1e-9 "mae" 1.0 (Metrics.mae pred truth);
  checkf 1e-9 "mse" (5.0 /. 3.0) (Metrics.mse pred truth);
  checkf 1e-9 "perfect r2" 1.0 (Metrics.r2 truth truth)

let test_imbalance_asymmetry () =
  let truth = [| 10.0 |] in
  let over = Metrics.imbalance_cost [| 11.0 |] truth in
  let under = Metrics.imbalance_cost [| 9.0 |] truth in
  checkb "over-forecast costlier" true (over > under)

let test_confusion () =
  let pred = [| 1.0; 1.0; 0.0; 0.0 |] and truth = [| 1.0; 0.0; 1.0; 0.0 |] in
  let c = Metrics.exceedance_confusion ~threshold:0.5 pred truth in
  Alcotest.check Alcotest.int "tp" 1 c.Metrics.tp;
  Alcotest.check Alcotest.int "fp" 1 c.Metrics.fp;
  Alcotest.check Alcotest.int "fn" 1 c.Metrics.fn;
  Alcotest.check Alcotest.int "tn" 1 c.Metrics.tn;
  checkf 1e-9 "f1" 0.5 (Metrics.f1 c)

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  checkf 1e-9 "median" 3.0 (Metrics.percentile xs 0.5);
  checkf 1e-9 "min" 1.0 (Metrics.percentile xs 0.0);
  checkf 1e-9 "max" 5.0 (Metrics.percentile xs 1.0)

let () =
  Alcotest.run "everest_ml"
    [
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "uniform" `Quick test_rng_uniform_range;
          Alcotest.test_case "gaussian" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "int" `Quick test_rng_int_bounds ] );
      ( "linalg",
        [ Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "solve" `Quick test_solve;
          Alcotest.test_case "singular" `Quick test_solve_singular;
          QCheck_alcotest.to_alcotest prop_solve_inverts ] );
      ( "dataset",
        [ Alcotest.test_case "normalize" `Quick test_normalization;
          Alcotest.test_case "batches" `Quick test_batches_cover_all ] );
      ( "mlp",
        [ Alcotest.test_case "xor" `Slow test_mlp_learns_xor;
          Alcotest.test_case "regression" `Quick test_mlp_regression;
          Alcotest.test_case "loss decreases" `Quick test_mlp_loss_decreases;
          Alcotest.test_case "flops" `Quick test_mlp_flops ] );
      ("linreg", [ Alcotest.test_case "exact recovery" `Quick test_linreg_exact ]);
      ( "metrics",
        [ Alcotest.test_case "basic" `Quick test_metrics_basic;
          Alcotest.test_case "imbalance" `Quick test_imbalance_asymmetry;
          Alcotest.test_case "confusion" `Quick test_confusion;
          Alcotest.test_case "percentile" `Quick test_percentile ] );
    ]
