(* Tests for everest_dsl: shape inference, evaluation, cost model,
   annotations, workflow graphs, and lowering-to-IR semantics. *)

open Everest_dsl
module Ir = Everest_ir.Ir
module Interp = Everest_ir.Interp
module Verify = Everest_ir.Verify

let () = Everest_ir.Registry.register_all ()

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let t22 v = Tensor_expr.tensor [ 2; 2 ] v

(* ---- shape inference -------------------------------------------------------- *)

let test_shapes () =
  let a = Tensor_expr.input "a" [ 2; 3 ] in
  let b = Tensor_expr.input "b" [ 3; 4 ] in
  let m = Tensor_expr.matmul a b in
  checkb "matmul shape" true (Tensor_expr.shape m = [ 2; 4 ]);
  let t = Tensor_expr.transpose m in
  checkb "transpose shape" true (Tensor_expr.shape t = [ 4; 2 ]);
  let r = Tensor_expr.reshape [ 8 ] m in
  checkb "reshape shape" true (Tensor_expr.shape r = [ 8 ]);
  checkb "reduce scalar" true (Tensor_expr.shape (Tensor_expr.sum m) = [])

let test_shape_errors () =
  let a = Tensor_expr.input "a" [ 2; 3 ] in
  let b = Tensor_expr.input "b" [ 2; 3 ] in
  (match Tensor_expr.matmul a b with
  | exception Tensor_expr.Shape_error _ -> ()
  | _ -> Alcotest.fail "matmul should reject 2x3 @ 2x3");
  (match Tensor_expr.add a (Tensor_expr.input "c" [ 3; 2 ]) with
  | exception Tensor_expr.Shape_error _ -> ()
  | _ -> Alcotest.fail "add should reject mismatched shapes");
  (match Tensor_expr.reshape [ 5 ] a with
  | exception Tensor_expr.Shape_error _ -> ()
  | _ -> Alcotest.fail "reshape should reject element mismatch");
  match Tensor_expr.contract "ij,jk->iq" [ a; Tensor_expr.input "d" [ 3; 4 ] ] with
  | exception Tensor_expr.Shape_error _ -> ()
  | _ -> Alcotest.fail "contract should reject unbound output label"

(* ---- evaluation -------------------------------------------------------------- *)

let test_eval () =
  let open Tensor_expr.O in
  let a = Tensor_expr.input "a" [ 2; 2 ] in
  let b = Tensor_expr.input "b" [ 2; 2 ] in
  let e = Tensor_expr.relu ((a * b) - Tensor_expr.const ~shape:[ 2; 2 ] 2.0) in
  let r =
    Tensor_expr.eval
      [ ("a", t22 [| 1.; 2.; 3.; 4. |]); ("b", t22 [| 2.; 2.; 2.; 0.5 |]) ]
      e
  in
  checkb "relu((a*b)-2)" true (r.Tensor_expr.data = [| 0.; 2.; 4.; 0. |])

let test_eval_matmul_contract_agree () =
  let a = Tensor_expr.input "a" [ 2; 3 ] in
  let b = Tensor_expr.input "b" [ 3; 2 ] in
  let env =
    [ ("a", Tensor_expr.tensor [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |]);
      ("b", Tensor_expr.tensor [ 3; 2 ] [| 7.; 8.; 9.; 10.; 11.; 12. |]) ]
  in
  let mm = Tensor_expr.eval env (Tensor_expr.matmul a b) in
  let ein = Tensor_expr.eval env (Tensor_expr.contract "ij,jk->ik" [ a; b ]) in
  checkb "matmul = einsum" true (mm.Tensor_expr.data = ein.Tensor_expr.data)

let test_eval_reduce () =
  let a = Tensor_expr.input "a" [ 4 ] in
  let env = [ ("a", Tensor_expr.tensor [ 4 ] [| 1.; 2.; 3.; 4. |]) ] in
  checkf "sum" 10.0 (Tensor_expr.eval env (Tensor_expr.sum a)).Tensor_expr.data.(0);
  checkf "max" 4.0
    (Tensor_expr.eval env (Tensor_expr.reduce Tensor_expr.Rmax a)).Tensor_expr.data.(0)

(* ---- cost model --------------------------------------------------------------- *)

let test_flops () =
  let a = Tensor_expr.input "a" [ 8; 16 ] in
  let b = Tensor_expr.input "b" [ 16; 4 ] in
  checki "matmul flops" (2 * 8 * 4 * 16) (Tensor_expr.flops (Tensor_expr.matmul a b));
  checki "add flops" (8 * 16) (Tensor_expr.flops (Tensor_expr.add a a));
  checkb "intensity positive" true
    (Tensor_expr.intensity (Tensor_expr.matmul a b) > 0.0);
  checki "bytes" (8 * ((8 * 16) + (16 * 4) + (8 * 4)))
    (Tensor_expr.bytes_moved (Tensor_expr.matmul a b))

let test_inputs_dedup () =
  let a = Tensor_expr.input "a" [ 2; 2 ] in
  let e = Tensor_expr.add a (Tensor_expr.mul a a) in
  checki "single input" 1 (List.length (Tensor_expr.inputs e))

(* ---- annotations ---------------------------------------------------------------- *)

let test_annot_roundtrip () =
  let anns =
    [ Annot.Access (Annot.Strided 8); Annot.Size_hint 4096;
      Annot.Element_range (-1.0, 1.0); Annot.Locality "edge:lyon";
      Annot.Security Everest_ir.Dialect_sec.Confidential;
      Annot.Latency_bound_ms 5.0; Annot.Reuse_factor 3; Annot.Batch 32 ]
  in
  let attrs = Annot.to_attrs anns in
  let back = Annot.of_attrs attrs in
  checki "all annotations survive" (List.length anns) (List.length back);
  checkb "strided access" true (Annot.access back = Some (Annot.Strided 8));
  checkb "security" true
    (Annot.security_level back = Everest_ir.Dialect_sec.Confidential);
  checkb "latency" true (Annot.latency_bound back = Some 5.0)

(* ---- lowering ------------------------------------------------------------------- *)

let lower_and_compare e env =
  let ctx = Ir.ctx () in
  let f = Lower.lower_expr ctx e in
  (match Verify.verify_func f with
  | [] -> ()
  | ds -> Alcotest.failf "lowered kernel invalid: %s" (Verify.errors_to_string ds));
  let args = List.map (fun (n, _) -> List.assoc n env) (Tensor_expr.inputs e) in
  let lowered, _ = Lower.run_lowered ctx f args in
  let direct = Tensor_expr.eval env e in
  checkb "lowered = direct" true
    (lowered.Tensor_expr.dims = direct.Tensor_expr.dims
    && Array.for_all2
         (fun a b -> Float.abs (a -. b) < 1e-9)
         lowered.Tensor_expr.data direct.Tensor_expr.data)

let test_lower_simple () =
  let open Tensor_expr.O in
  let a = Tensor_expr.input "a" [ 2; 2 ] in
  let b = Tensor_expr.input "b" [ 2; 2 ] in
  lower_and_compare
    (Tensor_expr.relu ((a * b) + Tensor_expr.const ~shape:[ 2; 2 ] 1.0))
    [ ("a", t22 [| 1.; -2.; 3.; -4. |]); ("b", t22 [| 2.; 2.; 2.; 2. |]) ]

let test_lower_matmul_chain () =
  let a = Tensor_expr.input "a" [ 2; 3 ] in
  let b = Tensor_expr.input "b" [ 3; 2 ] in
  let e = Tensor_expr.sum (Tensor_expr.matmul a (Tensor_expr.transpose (Tensor_expr.transpose b))) in
  lower_and_compare e
    [ ("a", Tensor_expr.tensor [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |]);
      ("b", Tensor_expr.tensor [ 3; 2 ] [| 7.; 8.; 9.; 10.; 11.; 12. |]) ]

let test_lower_contract () =
  let a = Tensor_expr.input "a" [ 2; 3 ] in
  let b = Tensor_expr.input "b" [ 3; 4 ] in
  lower_and_compare
    (Tensor_expr.contract "ij,jk->ik" [ a; b ])
    [ ("a", Tensor_expr.tensor [ 2; 3 ] (Array.init 6 float_of_int));
      ("b", Tensor_expr.tensor [ 3; 4 ] (Array.init 12 float_of_int)) ]

let test_lower_scalar_result () =
  let a = Tensor_expr.input "a" [ 4 ] in
  lower_and_compare
    (Tensor_expr.scale 2.0 (Tensor_expr.sum a))
    [ ("a", Tensor_expr.tensor [ 4 ] [| 1.; 2.; 3.; 4. |]) ]

(* property: random well-shaped expressions lower correctly *)
let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ return (Tensor_expr.input "a" [ 4; 4 ]);
              return (Tensor_expr.input "b" [ 4; 4 ]);
              map (fun v -> Tensor_expr.const ~shape:[ 4; 4 ] (float_of_int v))
                (int_range (-4) 4) ]
        else
          let sub = self (n / 2) in
          oneof
            [ map2 Tensor_expr.add sub sub;
              map2 Tensor_expr.sub sub sub;
              map2 Tensor_expr.mul sub sub;
              map2 Tensor_expr.matmul sub sub;
              map Tensor_expr.transpose sub;
              map Tensor_expr.relu sub;
              map (Tensor_expr.scale 0.5) sub ]))

let prop_lowering_preserves_semantics =
  QCheck.Test.make ~count:60 ~name:"lowering preserves DSL semantics"
    (QCheck.make ~print:Tensor_expr.to_string gen_expr) (fun e ->
      let env =
        [ ("a", Tensor_expr.tensor [ 4; 4 ] (Array.init 16 (fun i -> float_of_int (i mod 5) -. 2.0)));
          ("b", Tensor_expr.tensor [ 4; 4 ] (Array.init 16 (fun i -> 0.5 *. float_of_int (7 - i)))) ]
      in
      let ctx = Ir.ctx () in
      let f = Lower.lower_expr ctx e in
      let args = List.map (fun (n, _) -> List.assoc n env) (Tensor_expr.inputs e) in
      let lowered, _ = Lower.run_lowered ctx f args in
      let direct = Tensor_expr.eval env e in
      lowered.Tensor_expr.dims = direct.Tensor_expr.dims
      && Array.for_all2
           (fun a b ->
             Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a))
           lowered.Tensor_expr.data direct.Tensor_expr.data)

(* ---- model import ------------------------------------------------------------------ *)

let model_text =
  {|# small regression model
input    features 1x4
dense    l1 4x8 relu
dense    out 8x1 linear
scale    0.5
|}

let test_import_shapes () =
  let e = Model_import.import model_text in
  checkb "output shape" true (Tensor_expr.shape e = [ 1; 1 ]);
  let ins = Tensor_expr.inputs e in
  checkb "three inputs (data + 2 weights)" true (List.length ins = 3);
  checkb "weights listed" true
    (Model_import.weights (Model_import.parse_layers model_text)
    = [ ("l1", [ 4; 8 ]); ("out", [ 8; 1 ]) ]);
  checkb "layer sizes" true
    (Model_import.layer_sizes (Model_import.parse_layers model_text) = [ 4; 8; 1 ])

let test_import_evaluates () =
  let e = Model_import.import model_text in
  let env =
    [ ("features", Tensor_expr.tensor [ 1; 4 ] [| 1.; -1.; 0.5; 2. |]);
      ("l1", Tensor_expr.tensor [ 4; 8 ] (Array.init 32 (fun i -> 0.1 *. float_of_int (i mod 5))));
      ("out", Tensor_expr.tensor [ 8; 1 ] (Array.make 8 0.25)) ]
  in
  let r = Tensor_expr.eval env e in
  checkb "finite output" true (Float.is_finite r.Tensor_expr.data.(0));
  (* same model through the IR interpreter *)
  let ctx = Ir.ctx () in
  let f = Lower.lower_expr ctx e in
  let args = List.map (fun (n, _) -> List.assoc n env) (Tensor_expr.inputs e) in
  let lowered, _ = Lower.run_lowered ctx f args in
  checkb "IR path agrees" true
    (Float.abs (lowered.Tensor_expr.data.(0) -. r.Tensor_expr.data.(0)) < 1e-9)

let test_import_errors () =
  let bad cases =
    List.iter
      (fun src ->
        match Model_import.import src with
        | exception Model_import.Import_error _ -> ()
        | _ -> Alcotest.failf "should reject %S" src)
      cases
  in
  bad
    [ "dense l1 4x8 relu";  (* no input *)
      "input x 1x4\ndense l1 5x8 relu";  (* dim mismatch *)
      "input x 1x4\ndense l1 4x8 bogus";  (* unknown activation *)
      "input x 1xfour";  (* bad shape *)
      "input x 1x4\nfrobnicate";  (* unknown directive *) ]

let test_import_compiles () =
  let e = Model_import.import model_text in
  let g = Dataflow.create "model" in
  let src = Dataflow.source g "in" ~bytes:1024 in
  let _ = Dataflow.task g "infer" (Dataflow.Tensor_kernel e) ~deps:[ src ] in
  match Dataflow.validate g with
  | Ok () -> ()
  | Error es -> Alcotest.failf "graph invalid: %s" (String.concat ";" es)

(* ---- particles ---------------------------------------------------------------------- *)

let test_particles_layout_equivalence () =
  let aos = Particles.random_system ~seed:3 ~layout:Particles.Aos ~n:64 ~box:10.0 () in
  let soa = Particles.with_layout aos Particles.Soa in
  checkb "same contents after relayout" true (Particles.equal_contents aos soa);
  (* run the same simulation step under both layouts *)
  let force dx dy d2 =
    let inv = 1.0 /. (d2 +. 0.01) in
    (dx *. inv, dy *. inv)
  in
  let i1 = Particles.step aos ~cutoff:2.0 ~force in
  let i2 = Particles.step soa ~cutoff:2.0 ~force in
  checki "same interactions" i1 i2;
  checkb "same trajectories" true (Particles.equal_contents aos soa)

let test_particles_map_kernel () =
  let s = Particles.create ~n:4 [ "x"; "v" ] in
  List.iteri (fun p v -> Particles.set s p "x" v) [ 1.0; 2.0; 3.0; 4.0 ];
  Particles.map_kernel s ~reads:[ "x" ] ~writes:[ "v" ]
    (fun vals -> [ 2.0 *. List.hd vals ]);
  checkb "doubled into v" true
    (List.for_all (fun p -> Particles.get s p "v" = 2.0 *. Particles.get s p "x")
       [ 0; 1; 2; 3 ])

let test_particles_pairwise_cutoff () =
  let s = Particles.create ~n:3 Particles.standard_attrs in
  (* particles at 0, 1 and 100: only the first pair interacts at cutoff 2 *)
  Particles.set s 0 "x" 0.0;
  Particles.set s 1 "x" 1.0;
  Particles.set s 2 "x" 100.0;
  let pairs = Particles.pairwise_kernel s ~cutoff:2.0 (fun dx _ _ -> (dx, 0.0)) in
  checki "one pair in range" 1 pairs;
  (* symmetric forces: total momentum change is zero *)
  let total_fx =
    Particles.get s 0 "fx" +. Particles.get s 1 "fx" +. Particles.get s 2 "fx"
  in
  checkb "forces symmetric" true (Float.abs total_fx < 1e-12)

let test_particles_layout_model () =
  let s = Particles.create ~n:1000 Particles.standard_attrs in
  (* a kernel touching 2 of 8 fields: SoA should win clearly *)
  let sp = Particles.soa_speedup s ~reads:[ "x" ] ~writes:[ "x" ] in
  checkb "SoA wins sparse-field kernels" true (sp > 2.0);
  checkb "recommends SoA" true
    (Particles.recommend_layout s ~reads:[ "x" ] ~writes:[ "x" ] = Particles.Soa);
  (* touching every field: AoS is fine *)
  let all = s.Particles.attrs in
  checkb "AoS ok for dense kernels" true
    (Particles.recommend_layout s ~reads:all ~writes:all = Particles.Aos)

(* ---- dataflow graphs -------------------------------------------------------------- *)

let build_pipeline () =
  let g = Dataflow.create "wind" in
  let raw =
    Dataflow.source g "ensemble" ~bytes:(1 lsl 20)
      ~annots:[ Annot.Access Annot.Streaming; Annot.Locality "cloud" ]
  in
  let hist = Dataflow.source g "history" ~bytes:(1 lsl 22) in
  let a = Tensor_expr.input "x" [ 64; 64 ] in
  let feat =
    Dataflow.task g "features"
      (Dataflow.Tensor_kernel (Tensor_expr.relu (Tensor_expr.matmul a a)))
      ~deps:[ raw ]
  in
  let train =
    Dataflow.task g "train"
      (Dataflow.Ai_model { layers = [ 64; 32; 1 ]; activation = "relu" })
      ~deps:[ feat; hist ]
      ~annots:[ Annot.Security Everest_ir.Dialect_sec.Confidential ]
  in
  let post =
    Dataflow.task g "post"
      (Dataflow.External { lang = "c++"; est_flops = 10_000; est_bytes = 512 })
      ~deps:[ train ]
  in
  Dataflow.sink g "forecast" post;
  g

let test_graph_build () =
  let g = build_pipeline () in
  checki "5 nodes" 5 (Dataflow.size g);
  (match Dataflow.validate g with
  | Ok () -> ()
  | Error es -> Alcotest.failf "validate: %s" (String.concat "; " es));
  checkb "find" true (Dataflow.find g "train" <> None);
  checkb "flops positive" true (Dataflow.total_flops g > 0);
  let cp = Dataflow.critical_path g (fun n -> float_of_int (Dataflow.node_flops n)) in
  checkb "critical path >= train cost" true
    (cp >= float_of_int (2 * 64 * 32) +. float_of_int (2 * 32 * 1))

let test_graph_duplicate_names () =
  let g = Dataflow.create "dup" in
  let _ = Dataflow.source g "x" ~bytes:8 in
  let _ = Dataflow.source g "x" ~bytes:8 in
  match Dataflow.validate g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate names must be rejected"

let test_graph_lowering () =
  let g = build_pipeline () in
  let ctx = Ir.ctx () in
  let m = Lower.lower_graph ctx g in
  (match Verify.check_module m with
  | Ok () -> ()
  | Error ds -> Alcotest.failf "module invalid: %s" (Verify.errors_to_string ds));
  (* one kernel func for the tensor kernel + main *)
  checki "two functions" 2 (List.length m.Ir.funcs);
  (* round-trip the whole module through the printer/parser *)
  let s = Everest_ir.Printer.module_to_string m in
  let m2 = Everest_ir.Parser.parse_module (Ir.ctx ()) s in
  Alcotest.check Alcotest.string "module roundtrip" s
    (Everest_ir.Printer.module_to_string m2)

let () =
  Alcotest.run "everest_dsl"
    [
      ( "shapes",
        [ Alcotest.test_case "inference" `Quick test_shapes;
          Alcotest.test_case "errors" `Quick test_shape_errors ] );
      ( "eval",
        [ Alcotest.test_case "composite" `Quick test_eval;
          Alcotest.test_case "matmul=contract" `Quick test_eval_matmul_contract_agree;
          Alcotest.test_case "reduce" `Quick test_eval_reduce ] );
      ( "cost",
        [ Alcotest.test_case "flops" `Quick test_flops;
          Alcotest.test_case "inputs dedup" `Quick test_inputs_dedup ] );
      ("annot", [ Alcotest.test_case "roundtrip" `Quick test_annot_roundtrip ]);
      ( "lower",
        [ Alcotest.test_case "elementwise" `Quick test_lower_simple;
          Alcotest.test_case "matmul chain" `Quick test_lower_matmul_chain;
          Alcotest.test_case "contract" `Quick test_lower_contract;
          Alcotest.test_case "scalar result" `Quick test_lower_scalar_result;
          QCheck_alcotest.to_alcotest prop_lowering_preserves_semantics ] );
      ( "model-import",
        [ Alcotest.test_case "shapes" `Quick test_import_shapes;
          Alcotest.test_case "evaluates" `Quick test_import_evaluates;
          Alcotest.test_case "errors" `Quick test_import_errors;
          Alcotest.test_case "compiles" `Quick test_import_compiles ] );
      ( "particles",
        [ Alcotest.test_case "layout equivalence" `Quick test_particles_layout_equivalence;
          Alcotest.test_case "map kernel" `Quick test_particles_map_kernel;
          Alcotest.test_case "pairwise cutoff" `Quick test_particles_pairwise_cutoff;
          Alcotest.test_case "layout model" `Quick test_particles_layout_model ] );
      ( "dataflow",
        [ Alcotest.test_case "build+validate" `Quick test_graph_build;
          Alcotest.test_case "duplicate names" `Quick test_graph_duplicate_names;
          Alcotest.test_case "lower graph" `Quick test_graph_lowering ] );
    ]
