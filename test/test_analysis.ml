(* Tests for everest_analysis: the dataflow engine, the built-in analyses
   (liveness, reaching definitions, constant propagation, memref
   lifetimes, call graph) and the lint rule catalog, plus the pipeline's
   pre-flight lint gate. *)

open Everest_analysis
module Ir = Everest_ir.Ir
module Types = Everest_ir.Types
module Attr = Everest_ir.Attr
module Loc = Everest_ir.Loc
module Arith = Everest_ir.Dialect_arith
module Memref = Everest_ir.Dialect_memref
module Scf = Everest_ir.Dialect_scf
module Func = Everest_ir.Dialect_func
module Df = Everest_ir.Dialect_df
module Sec = Everest_ir.Dialect_sec
module Interp = Everest_ir.Interp
module Dsl = Everest_dsl

let () = Everest_ir.Registry.register_all ()

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let r = Ir.result

(* ---- constant propagation ----------------------------------------------- *)

let test_constprop_straight () =
  let ctx = Ir.ctx () in
  let c2 = Arith.const_i ctx 2 in
  let c3 = Arith.const_i ctx 3 in
  let add = Arith.addi ctx (r c2) (r c3) in
  let mul = Arith.muli ctx (r add) (r add) in
  let f = Ir.func "f" [] [ Types.i64 ] [ c2; c3; add; mul; Func.return ctx [ r mul ] ] in
  let res = Constprop.analyze f in
  checkb "add is 5" true (Constprop.fact res (r add) = Constprop.Known (Constprop.CInt 5));
  checkb "mul is 25" true (Constprop.fact res (r mul) = Constprop.Known (Constprop.CInt 25));
  checki "two foldable ops" 2 (List.length (Constprop.foldable f))

let test_constprop_div_by_zero_not_folded () =
  let ctx = Ir.ctx () in
  let c1 = Arith.const_i ctx 1 in
  let c0 = Arith.const_i ctx 0 in
  let dv = Arith.divi ctx (r c1) (r c0) in
  let f = Ir.func "f" [] [ Types.i64 ] [ c1; c0; dv; Func.return ctx [ r dv ] ] in
  let res = Constprop.analyze f in
  checkb "division by zero stays varying" true
    (Constprop.fact res (r dv) = Constprop.Varying);
  checki "not foldable" 0 (List.length (Constprop.foldable f))

let test_constprop_const_branch () =
  (* scf.if on a constant condition: only the taken arm feeds the result *)
  let ctx = Ir.ctx () in
  let ct = Arith.const_i ~ty:Types.i1 ctx 1 in
  let iff =
    Scf.if_ ~ret_types:[ Types.i64 ] ctx (r ct)
      (fun ctx ->
        let c7 = Arith.const_i ctx 7 in
        ([ c7 ], [ r c7 ]))
      (fun ctx ->
        let c9 = Arith.const_i ctx 9 in
        ([ c9 ], [ r c9 ]))
  in
  let f = Ir.func "f" [] [ Types.i64 ] [ ct; iff; Func.return ctx [ r iff ] ] in
  let res = Constprop.analyze f in
  checkb "const branch picks the then-arm" true
    (Constprop.fact res (r iff) = Constprop.Known (Constprop.CInt 7))

let test_constprop_varying_branch () =
  let ctx = Ir.ctx () in
  let cond = Ir.fresh_value ctx Types.i1 in
  let iff =
    Scf.if_ ~ret_types:[ Types.i64 ] ctx cond
      (fun ctx ->
        let c7 = Arith.const_i ctx 7 in
        ([ c7 ], [ r c7 ]))
      (fun ctx ->
        let c9 = Arith.const_i ctx 9 in
        ([ c9 ], [ r c9 ]))
  in
  let f =
    Ir.func "f" [ cond ] [ Types.i64 ] [ iff; Func.return ctx [ r iff ] ]
  in
  let res = Constprop.analyze f in
  checkb "joining 7 and 9 is varying" true
    (Constprop.fact res (r iff) = Constprop.Varying)

let test_constprop_loop_invariant () =
  (* an iteration argument whose yield is the same constant as its init
     survives the loop fixpoint as a known constant *)
  let ctx = Ir.ctx () in
  let lo = Arith.const_index ctx 0 in
  let hi = Arith.const_index ctx 8 in
  let st = Arith.const_index ctx 1 in
  let c5 = Arith.const_i ctx 5 in
  let loop =
    Scf.for_ ~iter_args:[ r c5 ] ctx (r lo) (r hi) (r st)
      (fun _ctx _iv iters -> ([], iters))
  in
  let f =
    Ir.func "f" [] [ Types.i64 ]
      [ lo; hi; st; c5; loop; Func.return ctx [ r loop ] ]
  in
  let res = Constprop.analyze f in
  checkb "invariant iter arg stays 5" true
    (Constprop.fact res (r loop) = Constprop.Known (Constprop.CInt 5))

let test_constprop_loop_varying () =
  (* an accumulator that changes each iteration must not be folded *)
  let ctx = Ir.ctx () in
  let lo = Arith.const_index ctx 0 in
  let hi = Arith.const_index ctx 8 in
  let st = Arith.const_index ctx 1 in
  let c1 = Arith.const_i ctx 1 in
  let loop =
    Scf.for_ ~iter_args:[ r c1 ] ctx (r lo) (r hi) (r st)
      (fun ctx _iv iters ->
        let acc = List.hd iters in
        let two = Arith.const_i ctx 2 in
        let next = Arith.muli ctx (r two) acc in
        ([ two; next ], [ r next ]))
  in
  let f =
    Ir.func "f" [] [ Types.i64 ]
      [ lo; hi; st; c1; loop; Func.return ctx [ r loop ] ]
  in
  let res = Constprop.analyze f in
  checkb "doubling accumulator is varying" true
    (Constprop.fact res (r loop) = Constprop.Varying)

(* ---- liveness and dead ops ---------------------------------------------- *)

let test_dead_op_chain () =
  let ctx = Ir.ctx () in
  let a = Ir.fresh_value ctx Types.f64 in
  let live = Arith.addf ctx a a in
  let d1 = Arith.mulf ctx a a in
  let d2 = Arith.addf ctx (r d1) a in (* only feeds d1's dead chain *)
  let f =
    Ir.func "f" [ a ] [ Types.f64 ] [ live; d1; d2; Func.return ctx [ r live ] ]
  in
  let dead = Liveness.dead_ops f in
  checki "the whole unused chain is dead" 2 (List.length dead);
  checkb "live op survives" true
    (not (List.exists (fun (o : Ir.op) -> o == live) dead))

let test_liveness_impure_not_dead () =
  let ctx = Ir.ctx () in
  let buf = Memref.alloc ctx Types.F64 [ 4 ] in
  let free = Memref.dealloc ctx (r buf) in
  let f = Ir.func "f" [] [] [ buf; free; Func.return ctx [] ] in
  checki "allocation is not dead code" 0 (List.length (Liveness.dead_ops f))

(* ---- reaching definitions ----------------------------------------------- *)

let test_undominated_use () =
  (* a value defined inside one scf.if arm used after the op: defined on
     only one path, so the definition does not dominate the use *)
  let ctx = Ir.ctx () in
  let cond = Ir.fresh_value ctx Types.i1 in
  let inner = Arith.const_i ctx 7 in
  let iff =
    Ir.op ctx "scf.if" [ cond ] []
      ~regions:
        [ Ir.simple_region [ inner; Scf.yield ctx [] ];
          Ir.simple_region [ Scf.yield ctx [] ] ]
  in
  let use = Arith.addi ctx (r inner) (r inner) in
  let f =
    Ir.func "f" [ cond ] [ Types.i64 ] [ iff; use; Func.return ctx [ r use ] ]
  in
  let us = Reaching.undominated_uses f in
  checki "one offending use" 1 (List.length us);
  checkb "names the value" true
    ((List.hd us).Reaching.u_vid = (r inner).Ir.vid);
  (* straight-line defs dominate their uses *)
  let ctx = Ir.ctx () in
  let c = Arith.const_i ctx 1 in
  let u = Arith.addi ctx (r c) (r c) in
  let g = Ir.func "g" [] [ Types.i64 ] [ c; u; Func.return ctx [ r u ] ] in
  checki "no false positives" 0 (List.length (Reaching.undominated_uses g))

(* ---- memref lifetimes ---------------------------------------------------- *)

let has_kind p issues = List.exists (fun (i : Memlife.issue) -> p i.Memlife.kind) issues

let test_memlife_families () =
  let ctx = Ir.ctx () in
  let buf = Memref.alloc ctx Types.F64 [ 4; 4 ] in
  let c0 = Arith.const_index ctx 0 in
  let c9 = Arith.const_index ctx 9 in
  let f1 = Memref.dealloc ctx (r buf) in
  let uaf = Memref.load ctx (r buf) [ r c9; r c0 ] in
  let f2 = Memref.dealloc ctx (r buf) in
  let leaked = Memref.alloc ctx Types.F64 [ 8 ] in
  let st = Memref.store ctx (r uaf) (r leaked) [ r c0 ] in
  let f =
    Ir.func "f" [] [] [ buf; c0; c9; f1; uaf; f2; leaked; st; Func.return ctx [] ]
  in
  let issues = Memlife.analyze f in
  checkb "use after free" true
    (has_kind (function Memlife.Use_after_free { definite = true } -> true | _ -> false) issues);
  checkb "double free" true
    (has_kind (function Memlife.Double_free { definite = true } -> true | _ -> false) issues);
  checkb "leak" true (has_kind (function Memlife.Leak -> true | _ -> false) issues);
  checkb "out of bounds" true
    (has_kind
       (function
         | Memlife.Out_of_bounds { index = 9; axis = 0; dim = 4 } -> true
         | _ -> false)
       issues)

let test_memlife_clean () =
  let ctx = Ir.ctx () in
  let buf = Memref.alloc ctx Types.F64 [ 4 ] in
  let c0 = Arith.const_index ctx 0 in
  let ld = Memref.load ctx (r buf) [ r c0 ] in
  let st = Memref.store ctx (r ld) (r buf) [ r c0 ] in
  let fr = Memref.dealloc ctx (r buf) in
  let f =
    Ir.func "f" [] [] [ buf; c0; ld; st; fr; Func.return ctx [] ]
  in
  checki "clean function has no issues" 0 (List.length (Memlife.analyze f))

let test_memlife_conditional_free () =
  (* dealloc in only one scf.if arm: later use is a "possible" finding *)
  let ctx = Ir.ctx () in
  let cond = Ir.fresh_value ctx Types.i1 in
  let buf = Memref.alloc ctx Types.F64 [ 4 ] in
  let c0 = Arith.const_index ctx 0 in
  let iff =
    Scf.if_ ctx cond
      (fun ctx -> ([ Memref.dealloc ctx (r buf) ], []))
      (fun _ctx -> ([], []))
  in
  let ld = Memref.load ctx (r buf) [ r c0 ] in
  let st = Memref.store ctx (r ld) (r buf) [ r c0 ] in
  let f =
    Ir.func "f" [ cond ] [] [ buf; c0; iff; ld; st; Func.return ctx [] ]
  in
  let issues = Memlife.analyze f in
  checkb "maybe-freed use reported as possible" true
    (has_kind (function Memlife.Use_after_free { definite = false } -> true | _ -> false) issues);
  checkb "no definite use-after-free" true
    (not (has_kind (function Memlife.Use_after_free { definite = true } -> true | _ -> false) issues))

(* ---- call graph ----------------------------------------------------------- *)

let test_callgraph () =
  let ctx = Ir.ctx () in
  let mk_leaf name = Ir.func name [] [] [ Func.return ctx [] ] in
  let call_to callee = Func.call ctx callee [] [] in
  let main = Ir.func "main" [] [] [ call_to "helper"; Func.return ctx [] ] in
  let helper = mk_leaf "helper" in
  let orphan = mk_leaf "orphan" in
  (* dead_end is referenced, but only from orphan *)
  let orphan =
    { orphan with Ir.fbody = call_to "dead_end" :: orphan.Ir.fbody }
  in
  let dead_end = mk_leaf "dead_end" in
  let m = Ir.modul "m" [ main; helper; orphan; dead_end ] in
  checkb "helper reachable" true
    (Callgraph.SSet.mem "helper" (Callgraph.reachable m ~roots:[ "main" ]));
  let unused = List.map (fun (f : Ir.func) -> f.Ir.fname) (Callgraph.unused m) in
  let unreachable =
    List.map (fun (f : Ir.func) -> f.Ir.fname) (Callgraph.unreachable m)
  in
  checkb "orphan unused" true (List.mem "orphan" unused);
  checkb "dead_end not unused (it is referenced)" true
    (not (List.mem "dead_end" unused));
  checkb "dead_end unreachable" true (List.mem "dead_end" unreachable)

(* ---- lint ----------------------------------------------------------------- *)

(* A module seeded with one defect per rule family (mirrors the CLI
   --demo module). *)
let seeded_module () =
  let ctx = Ir.ctx () in
  let at l (o : Ir.op) = { o with Ir.loc = Loc.file "seeded.mlir" l } in
  let karg = Ir.fresh_value ctx Types.f64 in
  let k_proc = Ir.func "k_proc" [ karg ] [ Types.f64 ] [ Func.return ctx [ karg ] ] in
  let orphan = Ir.func "orphan" [] [] [ Func.return ctx [] ] in
  let src = at 11 (Df.source ctx "records" (Types.tensor Types.F64 [ 64 ])) in
  let cls = at 12 (Sec.classify ctx (r src) Everest_ir.Dialect_sec.Secret) in
  let snk = at 13 (Df.sink ctx "public_out" (r cls)) in
  let placed =
    at 14
      (Df.task ctx ~kernel:"k_proc"
         ~attrs:
           [ ("everest.security", Attr.str "secret");
             ("everest.locality", Attr.str "edge:0") ]
         [ r cls ]
         [ Types.tensor Types.F64 [ 64 ] ])
  in
  let secrets =
    Ir.func "secrets" [] [] [ src; cls; snk; placed; Func.return ctx [] ]
  in
  let buf = at 19 (Memref.alloc ctx Types.F64 [ 4; 4 ]) in
  let c0 = at 20 (Arith.const_index ctx 0) in
  let c9 = at 21 (Arith.const_index ctx 9) in
  let f1 = at 22 (Memref.dealloc ctx (r buf)) in
  let uaf = at 23 (Memref.load ctx (r buf) [ r c9; r c0 ]) in
  let f2 = at 24 (Memref.dealloc ctx (r buf)) in
  let k2 = at 27 (Arith.const_i ctx 2) in
  let k3 = at 28 (Arith.const_i ctx 3) in
  let dead = at 29 (Arith.muli ctx (r k2) (r k3)) in
  let call = at 30 (Func.call ctx "secrets" [] []) in
  let main =
    Ir.func "main" [] []
      [ buf; c0; c9; f1; uaf; f2; k2; k3; dead; call; Func.return ctx [] ]
  in
  Ir.modul "seeded" [ k_proc; orphan; secrets; main ]

let test_lint_seeded_codes () =
  let ds = Lint.run (seeded_module ()) in
  let codes = List.map (fun (d : Lint.diag) -> d.Lint.code) ds in
  List.iter
    (fun c -> checkb ("reports " ^ c) true (List.mem c codes))
    [ "EV010"; "EV011"; "EV013"; "EV030"; "EV031"; "EV033"; "EV040"; "EV041" ];
  checkb "has errors" true (Lint.has_errors ds);
  (* every seeded diagnostic carries a real location *)
  List.iter
    (fun (d : Lint.diag) ->
      checkb ("diag " ^ d.Lint.code ^ " has a location") true
        (d.Lint.loc <> Loc.Unknown))
    ds

let test_lint_deterministic () =
  let m = seeded_module () in
  let a = Lint.render_text (Lint.run m) in
  let b = Lint.render_text (Lint.run m) in
  checks "two runs render identically" a b

let test_lint_only_filter () =
  let ds = Lint.run ~only:[ "EV040" ] (seeded_module ()) in
  checkb "non-empty" true (ds <> []);
  List.iter
    (fun (d : Lint.diag) -> checks "only the requested rule" "EV040" d.Lint.code)
    ds

let test_lint_clean_lowered_graph () =
  let g = Dsl.Dataflow.create "clean" in
  let src = Dsl.Dataflow.source g "in" ~bytes:4096 in
  let x = Dsl.Tensor_expr.input "x" [ 16; 16 ] in
  let t =
    Dsl.Dataflow.task g "mm"
      (Dsl.Dataflow.Tensor_kernel (Dsl.Tensor_expr.matmul x x))
      ~deps:[ src ]
  in
  Dsl.Dataflow.sink g "out" t;
  let m = Dsl.Lower.lower_graph (Ir.ctx ()) g in
  let ds = Lint.run m in
  checkb "lowered module lints clean" true (not (Lint.has_errors ds));
  checki "no diagnostics at all" 0 (List.length ds)

let test_lint_verify_bridge () =
  (* an unregistered op surfaces as an EV001 error with its location *)
  let ctx = Ir.ctx () in
  let bogus =
    Ir.op ~loc:(Loc.file "bogus.mlir" 3) ctx "nope.nope" [] []
  in
  let m = Ir.modul "m" [ Ir.func "f" [] [] [ bogus; Func.return ctx [] ] ] in
  let errs = Lint.errors (Lint.run m) in
  checkb "EV001 reported" true
    (List.exists (fun (d : Lint.diag) -> d.Lint.code = "EV001") errs);
  checkb "location preserved" true
    (List.exists
       (fun (d : Lint.diag) -> d.Lint.loc = Loc.file "bogus.mlir" 3)
       errs)

(* ---- pipeline gate --------------------------------------------------------- *)

let bad_placement_graph () =
  let g = Dsl.Dataflow.create "bad_placement" in
  let src = Dsl.Dataflow.source g "sensor" ~bytes:4096 in
  let x = Dsl.Tensor_expr.input "x" [ 16; 16 ] in
  let t =
    Dsl.Dataflow.task g "model"
      (Dsl.Dataflow.Tensor_kernel (Dsl.Tensor_expr.matmul x x))
      ~deps:[ src ]
      ~annots:
        [ Dsl.Annot.Security Everest_ir.Dialect_sec.Secret;
          Dsl.Annot.Locality "edge:7" ]
  in
  Dsl.Dataflow.sink g "out" t;
  g

let test_pipeline_rejects_lint_errors () =
  (match Everest_compiler.Pipeline.compile (bad_placement_graph ()) with
  | exception Everest_compiler.Pipeline.Compile_error msg ->
      checkb "message names the rule" true
        (Astring.String.is_infix ~affix:"EV041" msg)
  | _ -> Alcotest.fail "secret-on-edge placement must not compile");
  (* the gate can be switched off *)
  let app =
    Everest_compiler.Pipeline.compile ~lint:false (bad_placement_graph ())
  in
  checkb "lint disabled compiles" true
    (app.Everest_compiler.Pipeline.app_name = "bad_placement")

let test_pipeline_clean_carries_lint () =
  let g = Dsl.Dataflow.create "ok" in
  let src = Dsl.Dataflow.source g "in" ~bytes:4096 in
  let x = Dsl.Tensor_expr.input "x" [ 16; 16 ] in
  let t =
    Dsl.Dataflow.task g "mm"
      (Dsl.Dataflow.Tensor_kernel (Dsl.Tensor_expr.matmul x x))
      ~deps:[ src ]
  in
  Dsl.Dataflow.sink g "out" t;
  let app = Everest_compiler.Pipeline.compile g in
  checkb "no error diagnostics on a clean app" true
    (not (Lint.has_errors app.Everest_compiler.Pipeline.lint))

let test_pass_lint_each_hook () =
  let module Pass = Everest_ir.Pass in
  let ctx = Ir.ctx () in
  let c = Arith.const_i ctx 1 in
  let f = Ir.func "main" [] [ Types.i64 ] [ c; Func.return ctx [ r c ] ] in
  let m = Ir.modul "hooked" [ f ] in
  let pipeline =
    [ Pass.make "nop1" (fun _ m -> m); Pass.make "nop2" (fun _ m -> m) ]
  in
  let seen = ref [] in
  let hook name _m = seen := name :: !seen in
  ignore (Pass.run_pipeline ~lint_each:hook ctx pipeline m);
  Alcotest.(check (list string))
    "hook runs after every pass" [ "nop1"; "nop2" ] (List.rev !seen);
  (* a raising hook aborts the pipeline *)
  let ran = ref 0 in
  let abort name _m =
    incr ran;
    if String.equal name "nop1" then failwith "lint gate tripped"
  in
  (match Pass.run_pipeline ~lint_each:abort ctx pipeline m with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "raising lint_each must abort run_pipeline");
  checki "aborting hook fired once" 1 !ran

(* ---- properties ------------------------------------------------------------ *)

let prop_liveness_args =
  QCheck.Test.make ~count:100 ~name:"live-in is exactly the used arguments"
    QCheck.(list_of_size Gen.(int_range 1 15) (pair (int_range 0 2) (int_range 0 20)))
    (fun spec ->
      let ctx = Ir.ctx () in
      let args = List.init 3 (fun _ -> Ir.fresh_value ctx Types.f64) in
      let vals = ref args in
      let pick n = List.nth !vals (n mod List.length !vals) in
      let ops =
        List.map
          (fun (k, n) ->
            let o =
              (match k with 0 -> Arith.addf | 1 -> Arith.mulf | _ -> Arith.subf)
                ctx (pick n) (pick (n + 1))
            in
            vals := !vals @ [ r o ];
            o)
          spec
      in
      let last = List.nth !vals (List.length !vals - 1) in
      let f = Ir.func "p" args [ Types.f64 ] (ops @ [ Func.return ctx [ last ] ]) in
      let live = Liveness.live_in f in
      let arg_ids =
        Lattice.IntSet.of_list (List.map (fun (v : Ir.value) -> v.Ir.vid) args)
      in
      let used_args = Lattice.IntSet.inter (Liveness.used f) arg_ids in
      Lattice.IntSet.subset live arg_ids && Lattice.IntSet.equal live used_args)

let prop_constprop_agrees_with_interp =
  QCheck.Test.make ~count:100
    ~name:"constant propagation agrees with the interpreter"
    QCheck.(
      pair
        (pair (int_range (-50) 50) (int_range (-50) 50))
        (list_of_size Gen.(int_range 1 10) (pair (int_range 0 2) (int_range 0 20))))
    (fun ((a, b), spec) ->
      let ctx = Ir.ctx () in
      let ca = Arith.const_i ctx a in
      let cb = Arith.const_i ctx b in
      let vals = ref [ r ca; r cb ] in
      let pick n = List.nth !vals (n mod List.length !vals) in
      let ops =
        List.map
          (fun (k, n) ->
            let o =
              (match k with 0 -> Arith.addi | 1 -> Arith.muli | _ -> Arith.subi)
                ctx (pick n) (pick (n + 1))
            in
            vals := !vals @ [ r o ];
            o)
          spec
      in
      let last = List.nth !vals (List.length !vals - 1) in
      let f =
        Ir.func "p" [] [ Types.i64 ]
          ((ca :: cb :: ops) @ [ Func.return ctx [ last ] ])
      in
      let m = Ir.modul "p" [ f ] in
      let rets, _ = Interp.run_func ctx m "p" [] in
      let expected = match rets with [ Interp.RInt n ] -> n | _ -> assert false in
      Constprop.fact (Constprop.analyze f) last
      = Constprop.Known (Constprop.CInt expected))

let prop_lint_deterministic =
  QCheck.Test.make ~count:20 ~name:"lint output is deterministic"
    QCheck.unit
    (fun () ->
      let m = seeded_module () in
      String.equal (Lint.render_json (Lint.run m)) (Lint.render_json (Lint.run m)))

let () =
  Alcotest.run "everest_analysis"
    [
      ( "constprop",
        [ Alcotest.test_case "straight line" `Quick test_constprop_straight;
          Alcotest.test_case "div by zero" `Quick test_constprop_div_by_zero_not_folded;
          Alcotest.test_case "const branch" `Quick test_constprop_const_branch;
          Alcotest.test_case "varying branch" `Quick test_constprop_varying_branch;
          Alcotest.test_case "loop invariant" `Quick test_constprop_loop_invariant;
          Alcotest.test_case "loop varying" `Quick test_constprop_loop_varying;
          QCheck_alcotest.to_alcotest prop_constprop_agrees_with_interp ] );
      ( "liveness",
        [ Alcotest.test_case "dead chain" `Quick test_dead_op_chain;
          Alcotest.test_case "impure kept" `Quick test_liveness_impure_not_dead;
          QCheck_alcotest.to_alcotest prop_liveness_args ] );
      ( "reaching",
        [ Alcotest.test_case "undominated use" `Quick test_undominated_use ] );
      ( "memlife",
        [ Alcotest.test_case "defect families" `Quick test_memlife_families;
          Alcotest.test_case "clean" `Quick test_memlife_clean;
          Alcotest.test_case "conditional free" `Quick test_memlife_conditional_free ] );
      ( "callgraph",
        [ Alcotest.test_case "unused/unreachable" `Quick test_callgraph ] );
      ( "lint",
        [ Alcotest.test_case "seeded codes" `Quick test_lint_seeded_codes;
          Alcotest.test_case "deterministic" `Quick test_lint_deterministic;
          Alcotest.test_case "only filter" `Quick test_lint_only_filter;
          Alcotest.test_case "clean lowered graph" `Quick test_lint_clean_lowered_graph;
          Alcotest.test_case "verify bridge" `Quick test_lint_verify_bridge;
          QCheck_alcotest.to_alcotest prop_lint_deterministic ] );
      ( "pipeline-gate",
        [ Alcotest.test_case "rejects lint errors" `Quick test_pipeline_rejects_lint_errors;
          Alcotest.test_case "clean carries lint" `Quick test_pipeline_clean_carries_lint;
          Alcotest.test_case "lint_each hook" `Quick test_pass_lint_each_hook ] );
    ]
