(* Tests for Everest_workflow.Planlint: the static plan sanitizer.

   The mutation tests are the heart: every EV1xx defect class is seeded
   into an otherwise-valid plan and the analyzer must flag it with the
   right code (no false negatives), while QCheck asserts all four shipped
   schedulers produce lint-clean plans over random generated DAGs (no
   false positives on anything the system itself emits). *)

open Everest_workflow
open Everest_platform
module Lint = Everest_analysis.Lint
module Slo = Everest_observe.Slo

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let cpu = Dag.Cpu { flops = 1e9; bytes = 4096.0; threads = 1 }

let est =
  { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
    cycles = 100_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 5.0 }

let fpga b =
  Dag.Fpga { bitstream = b; estimate = est; in_bytes = 4096; out_bytes = 1024 }

let chain n =
  Dag.create "chain"
    (List.init n (fun i ->
         Dag.task ~id:i ~name:(Printf.sprintf "c%d" i)
           ~inputs:(if i = 0 then [] else [ i - 1 ])
           ~out_bytes:4096 ~impls:[ cpu ] ()))

let demonstrator () = Cluster.everest_demonstrator ()

let plan_of ?(policy = "round-robin") c d =
  match Scheduler.by_name policy with
  | Some f -> f c d
  | None -> Alcotest.failf "unknown policy %s" policy

let has_code code ds = List.exists (fun d -> String.equal d.Lint.code code) ds

let has_error_code code ds =
  List.exists
    (fun d -> String.equal d.Lint.code code && d.Lint.severity = Lint.Error)
    ds

(* a plan whose dag was swapped out from under its assignments (the
   mutation vector every structural test uses) *)
let with_dag plan dag = { plan with Scheduler.dag = dag }

(* ---- reachability index ---------------------------------------------------- *)

let test_reach_chain () =
  let c = demonstrator () in
  let plan = plan_of c (chain 6) in
  let r = Planlint.Reach.build plan in
  checki "tasks" 6 (Planlint.Reach.tasks r);
  checkb "0 before 5" true (Planlint.Reach.reaches r 0 5);
  checkb "3 before 4" true (Planlint.Reach.reaches r 3 4);
  checkb "never before itself" false (Planlint.Reach.reaches r 2 2);
  checkb "no backwards order" false (Planlint.Reach.reaches r 5 0)

let test_reach_diamond_siblings_unordered () =
  (* 0 -> {1, 2} -> 3 with the two branches on different nodes: nothing
     orders 1 against 2 *)
  let d =
    Dag.create "diamond"
      [ Dag.task ~id:0 ~name:"s" ~inputs:[] ~out_bytes:64 ~impls:[ cpu ] ();
        Dag.task ~id:1 ~name:"l" ~inputs:[ 0 ] ~out_bytes:64 ~impls:[ cpu ] ();
        Dag.task ~id:2 ~name:"r" ~inputs:[ 0 ] ~out_bytes:64 ~impls:[ cpu ] ();
        Dag.task ~id:3 ~name:"j" ~inputs:[ 1; 2 ] ~out_bytes:64
          ~impls:[ cpu ] () ]
  in
  let mk n = { Scheduler.node = n; impl = cpu } in
  let plan =
    { Scheduler.dag = d;
      assignments = [| mk "ep0"; mk "ep1"; mk "ep2"; mk "ep3" |];
      policy = "manual" }
  in
  let r = Planlint.Reach.build plan in
  checkb "source before join" true (Planlint.Reach.reaches r 0 3);
  checkb "siblings unordered l-r" false (Planlint.Reach.reaches r 1 2);
  checkb "siblings unordered r-l" false (Planlint.Reach.reaches r 2 1);
  (* co-locating the branches serializes them *)
  let plan2 =
    { plan with
      Scheduler.assignments = [| mk "ep0"; mk "ep1"; mk "ep1"; mk "ep3" |] }
  in
  let r2 = Planlint.Reach.build plan2 in
  checkb "co-located branches ordered" true
    (Planlint.Reach.reaches r2 1 2 || Planlint.Reach.reaches r2 2 1)

(* The index must agree with a naive transitive closure of the plan-order
   graph (deduped data edges + per-node chain succession) on random DAGs. *)
let prop_reach_matches_naive =
  QCheck.Test.make ~count:30 ~name:"Reach = naive closure of plan order"
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, kind) ->
      let d =
        match kind with
        | 0 ->
            Dag.layered ~seed ~layers:(2 + (seed mod 4))
              ~width:(1 + (seed mod 6)) ~flops:1e9 ~bytes:1e5 ()
        | 1 ->
            Dag.fork_join ~width:(2 + (seed mod 12)) ~worker_flops:1e9
              ~worker_bytes:1e5 ~chunk_bytes:4096 ()
        | _ ->
            Dag.ensemble ~seed ~members:(1 + (seed mod 5))
              ~stages:(1 + (seed mod 4)) ~stage_flops:1e9 ~stage_bytes:1e4 ()
      in
      let c = demonstrator () in
      let plan = plan_of ~policy:"round-robin" c d in
      let n = Dag.size d in
      (* plan-order adjacency: data edges + chain succession *)
      let succ = Array.make n [] in
      Array.iteri
        (fun i (t : Dag.task) ->
          List.iter
            (fun j -> succ.(j) <- i :: succ.(j))
            (List.sort_uniq compare t.Dag.inputs))
        d.Dag.tasks;
      let last = Hashtbl.create 16 in
      Array.iteri
        (fun i (a : Scheduler.assignment) ->
          (match Hashtbl.find_opt last a.Scheduler.node with
          | Some p -> succ.(p) <- i :: succ.(p)
          | None -> ());
          Hashtbl.replace last a.Scheduler.node i)
        plan.Scheduler.assignments;
      let reach_from u =
        let seen = Array.make n false in
        let rec go v =
          List.iter
            (fun w ->
              if not seen.(w) then begin
                seen.(w) <- true;
                go w
              end)
            succ.(v)
        in
        go u;
        seen
      in
      let r = Planlint.Reach.build plan in
      List.for_all
        (fun u ->
          let seen = reach_from u in
          List.for_all
            (fun v -> Planlint.Reach.reaches r u v = seen.(v))
            (List.init n Fun.id))
        (List.init n Fun.id))

(* ---- shipped plans are clean ------------------------------------------------ *)

let prop_shipped_schedulers_lint_clean =
  QCheck.Test.make ~count:25 ~name:"all shipped schedulers lint clean"
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, kind) ->
      let d =
        match kind with
        | 0 ->
            Dag.layered ~seed ~layers:(2 + (seed mod 6))
              ~width:(1 + (seed mod 8)) ~flops:2e9 ~bytes:1e6 ()
        | 1 ->
            Dag.fork_join ~width:(2 + (seed mod 30)) ~worker_flops:1e9
              ~worker_bytes:1e6 ~chunk_bytes:8192 ()
        | _ ->
            Dag.ensemble ~seed ~members:(1 + (seed mod 8))
              ~stages:(1 + (seed mod 6)) ~stage_flops:1e9 ~stage_bytes:1e5 ()
      in
      let c = demonstrator () in
      List.for_all
        (fun policy -> Planlint.check c (plan_of ~policy c d) = [])
        [ "round-robin"; "min-load"; "heft"; "heft-locality" ])

(* ---- structural mutations --------------------------------------------------- *)

(* build a valid plan, then swap in a dag whose task [i] was rewritten
   (functional update, bypassing Dag.create validation like buggy callers
   would) *)
let mutate_task d i f =
  let tasks = Array.copy d.Dag.tasks in
  tasks.(i) <- f tasks.(i);
  { d with Dag.tasks = tasks }

let test_ev100_dangling_input () =
  let c = demonstrator () in
  let d = chain 3 in
  let plan = plan_of c d in
  let bad = mutate_task d 2 (fun t -> { t with Dag.inputs = [ 99 ] }) in
  let ds = Planlint.check c (with_dag plan bad) in
  checkb "EV100 flagged" true (has_error_code "EV100" ds);
  (* id/index disagreement is also EV100 *)
  let bad2 = mutate_task d 1 (fun t -> { t with Dag.id = 7 }) in
  let ds2 = Planlint.check c (with_dag plan bad2) in
  checkb "id mismatch flagged" true (has_error_code "EV100" ds2)

let test_ev101_duplicate_input () =
  let c = demonstrator () in
  let d = chain 3 in
  let plan = plan_of c d in
  let bad = mutate_task d 2 (fun t -> { t with Dag.inputs = [ 1; 1 ] }) in
  let ds = Planlint.check c (with_dag plan bad) in
  checkb "EV101 flagged" true (has_error_code "EV101" ds)

let test_ev102_cycle () =
  let c = demonstrator () in
  let d = chain 4 in
  let plan = plan_of c d in
  let bad =
    mutate_task
      (mutate_task d 1 (fun t -> { t with Dag.inputs = [ 0; 3 ] }))
      3
      (fun t -> { t with Dag.inputs = [ 2 ] })
  in
  let ds = Planlint.check c (with_dag plan bad) in
  checkb "EV102 flagged" true (has_error_code "EV102" ds)

let test_ev103_stale_rev_adj () =
  let c = demonstrator () in
  (* in-place mutation poisons the cache: error *)
  let d = chain 4 in
  ignore (Dag.consumers d 0) (* force the cache *);
  let plan = plan_of c d in
  d.Dag.tasks.(3) <- { (d.Dag.tasks.(3)) with Dag.inputs = [ 0 ] };
  let ds = Planlint.check c plan in
  checkb "in-place mutation is an error" true (has_error_code "EV103" ds);
  (* functional update leaves a superseded cache: Info only *)
  let d2 = chain 4 in
  let fresh = mutate_task d2 3 (fun t -> { t with Dag.inputs = [ 2; 1 ] }) in
  let ds2 = Planlint.check c (with_dag (plan_of c d2) fresh) in
  checkb "superseded cache is info" true
    (List.exists
       (fun d ->
         String.equal d.Lint.code "EV103" && d.Lint.severity = Lint.Info)
       ds2);
  checkb "superseded cache is not an error" false (has_error_code "EV103" ds2)

let test_ev110_ev111_edge_drop () =
  let c = demonstrator () in
  let full = chain 3 in
  let cut = mutate_task full 2 (fun t -> { t with Dag.inputs = [] }) in
  let plan = plan_of c cut in
  let ds = Planlint.check ~dag:full c plan in
  checkb "EV110 flagged" true (has_error_code "EV110" ds);
  (* round-robin spreads the chain across nodes, so the dropped edge is
     not even transitively recovered *)
  checkb "EV111 flagged" true (has_error_code "EV111" ds);
  (* the same reference dag over the intact plan is clean *)
  checki "intact plan clean" 0
    (List.length (Planlint.check ~dag:full c (plan_of c full)))

let test_ev111_transitively_recovered_edge () =
  (* drop edge 1->2 but co-locate everything on one node: the chain
     serialization still orders 1 before 2, so only EV110 fires *)
  let full = chain 3 in
  let cut = mutate_task full 2 (fun t -> { t with Dag.inputs = [] }) in
  let plan =
    { Scheduler.dag = cut;
      assignments =
        Array.init 3 (fun _ -> { Scheduler.node = "ep0"; impl = cpu });
      policy = "manual" }
  in
  let c = demonstrator () in
  let ds = Planlint.check ~dag:full c plan in
  checkb "EV110 still flagged" true (has_error_code "EV110" ds);
  checkb "EV111 satisfied by chain order" false (has_code "EV111" ds)

let test_ev112_shape_mismatch () =
  let c = demonstrator () in
  let plan = plan_of c (chain 4) in
  let short =
    { plan with
      Scheduler.assignments = Array.sub plan.Scheduler.assignments 0 2 }
  in
  let ds = Planlint.check c short in
  checkb "EV112 flagged" true (has_error_code "EV112" ds)

(* ---- placement mutations ---------------------------------------------------- *)

let pinned_pair () =
  Dag.create "pinned"
    [ Dag.task ~id:0 ~name:"src" ~pinned:(Some "ep0") ~inputs:[]
        ~out_bytes:4096 ~impls:[ cpu ] ();
      Dag.task ~id:1 ~name:"sink" ~inputs:[ 0 ] ~out_bytes:64 ~impls:[ cpu ]
        () ]

let test_ev120_off_pin () =
  let c = demonstrator () in
  let plan = plan_of ~policy:"heft" c (pinned_pair ()) in
  let assignments = Array.copy plan.Scheduler.assignments in
  assignments.(0) <- { (assignments.(0)) with Scheduler.node = "cf0" };
  let mutated = { plan with Scheduler.assignments; policy = "mutated" } in
  let ds = Planlint.check c mutated in
  checkb "EV120 flagged" true (has_error_code "EV120" ds);
  (* when the pin is excluded, moving off it was the only option *)
  let ds2 = Planlint.check ~excluded:[ "ep0" ] c mutated in
  checkb "off excluded pin is a warning" true
    (List.exists
       (fun d ->
         String.equal d.Lint.code "EV120" && d.Lint.severity = Lint.Warning)
       ds2);
  checkb "not an error" false (has_error_code "EV120" ds2)

let test_ev121_unknown_and_excluded_nodes () =
  let c = demonstrator () in
  let plan = plan_of c (chain 2) in
  let assignments = Array.copy plan.Scheduler.assignments in
  assignments.(1) <- { (assignments.(1)) with Scheduler.node = "ghost" };
  let ds =
    Planlint.check c { plan with Scheduler.assignments; policy = "mutated" }
  in
  checkb "unknown node flagged" true (has_error_code "EV121" ds);
  let victim = plan.Scheduler.assignments.(0).Scheduler.node in
  let ds2 = Planlint.check ~excluded:[ victim ] c plan in
  checkb "excluded node flagged" true (has_error_code "EV121" ds2)

let test_ev122_ev123_capability_mismatch () =
  let c = demonstrator () in
  let d =
    Dag.create "cap"
      [ Dag.task ~id:0 ~name:"k" ~inputs:[] ~out_bytes:1024
          ~impls:[ fpga "k" ] () ]
  in
  let plan =
    { Scheduler.dag = d;
      assignments = [| { Scheduler.node = "ep0"; impl = fpga "k" } |];
      policy = "manual" }
  in
  let ds = Planlint.check c plan in
  checkb "EV122 error while FPGA nodes exist" true (has_error_code "EV122" ds);
  (* an implementation the task does not offer *)
  let plan2 =
    { plan with
      Scheduler.assignments =
        [| { Scheduler.node = "cf0"; impl = fpga "other" } |] }
  in
  checkb "EV123 flagged" true (has_error_code "EV123" (Planlint.check c plan2));
  (* a pin forcing the FPGA-less placement is the executor's designed
     degradation path, so only a warning *)
  let d3 =
    Dag.create "cap-pinned"
      [ Dag.task ~id:0 ~name:"k" ~pinned:(Some "ep0") ~inputs:[]
          ~out_bytes:1024 ~impls:[ fpga "k" ] () ]
  in
  let plan3 =
    { Scheduler.dag = d3;
      assignments = [| { Scheduler.node = "ep0"; impl = fpga "k" } |];
      policy = "manual" }
  in
  let ds3 = Planlint.check c plan3 in
  checkb "degrade-by-design is a warning" true
    (List.exists
       (fun d ->
         String.equal d.Lint.code "EV122" && d.Lint.severity = Lint.Warning)
       ds3);
  checkb "degrade-by-design not an error" false (has_error_code "EV122" ds3)

let test_ev130_ev131_slot_oversubscription () =
  let c = demonstrator () in
  let width = 8 in
  let workers =
    List.init width (fun i ->
        Dag.task ~id:(i + 1)
          ~name:(Printf.sprintf "w%d" i)
          ~inputs:[ 0 ] ~out_bytes:1024
          ~impls:[ fpga (Printf.sprintf "bit%d" i) ]
          ())
  in
  let d =
    Dag.create "wide"
      (Dag.task ~id:0 ~name:"src" ~inputs:[] ~out_bytes:4096 ~impls:[ cpu ] ()
      :: workers)
  in
  let assignments =
    Array.init (width + 1) (fun i ->
        if i = 0 then { Scheduler.node = "ep0"; impl = cpu }
        else
          { Scheduler.node = "cf0";
            impl = fpga (Printf.sprintf "bit%d" (i - 1)) })
  in
  let ds =
    Planlint.check c { Scheduler.dag = d; assignments; policy = "manual" }
  in
  checkb "EV130 flagged" true (has_code "EV130" ds);
  checkb "EV131 flagged" true (has_code "EV131" ds);
  checkb "warnings, not errors" false (Lint.has_errors ds)

let test_ev140_infeasible_deadline () =
  let c = demonstrator () in
  let d =
    Dag.create "heavy"
      [ Dag.task ~id:0 ~name:"h" ~inputs:[] ~out_bytes:64
          ~impls:[ Dag.Cpu { flops = 1e13; bytes = 1e6; threads = 1 } ]
          () ]
  in
  let plan = plan_of ~policy:"heft" c d in
  checkb "deadline flagged" true
    (has_error_code "EV140" (Planlint.check ~deadline_s:1e-6 c plan));
  let slos =
    [ { Slo.slo_name = "p99-latency";
        objective = Slo.Latency_quantile { q = 0.99; limit_s = 1e-6 } } ]
  in
  checkb "SLO deadline flagged" true
    (has_error_code "EV140" (Planlint.check ~slos c plan));
  let loose =
    [ { Slo.slo_name = "loose";
        objective = Slo.Latency_quantile { q = 0.99; limit_s = 1e9 } } ]
  in
  checki "feasible SLO clean" 0
    (List.length (Planlint.check ~slos:loose c plan))

(* ---- analyzer plumbing ------------------------------------------------------ *)

let test_summary_fields () =
  let c = demonstrator () in
  let s = Planlint.analyze c (plan_of ~policy:"heft" c (chain 5)) in
  checki "tasks" 5 s.Planlint.pl_tasks;
  checki "edges" 4 s.Planlint.pl_edges;
  checkb "chains positive" true (s.Planlint.pl_chains >= 1);
  checkb "cp bound positive" true (s.Planlint.pl_cp_lower_s > 0.0);
  checki "clean" 0 (List.length s.Planlint.pl_diags)

let test_diag_cap () =
  let c = demonstrator () in
  let n = 200 in
  let d = chain n in
  let plan = plan_of c d in
  let tasks =
    Array.map (fun (t : Dag.task) -> { t with Dag.inputs = [] }) d.Dag.tasks
  in
  let tasks =
    Array.mapi
      (fun i (t : Dag.task) ->
        if i = 0 then t else { t with Dag.inputs = [ n + i ] })
      tasks
  in
  let bad = { d with Dag.tasks = tasks } in
  let ds = Planlint.check ~dag:d c (with_dag plan bad) in
  let ev100 =
    List.filter (fun x -> String.equal x.Lint.code "EV100") ds
  in
  (* 199 dangling inputs, capped at 50 instances + one suppression note *)
  checki "capped" 51 (List.length ev100);
  checkb "suppression note" true
    (List.exists
       (fun x ->
         String.equal x.Lint.code "EV100" && x.Lint.severity = Lint.Info)
       ev100)

let test_gate_raises_and_opt_out () =
  let c = demonstrator () in
  let plan = plan_of ~policy:"heft" c (pinned_pair ()) in
  let assignments = Array.copy plan.Scheduler.assignments in
  assignments.(0) <- { (assignments.(0)) with Scheduler.node = "cf0" };
  let mutated = { plan with Scheduler.assignments; policy = "mutated" } in
  (match Executor.execute c mutated with
  | exception Planlint.Plan_invalid { plan = name; diags } ->
      checkb "diag list non-empty" true (diags <> []);
      checkb "name carries dag/policy" true
        (String.equal name "pinned/mutated")
  | _ -> Alcotest.fail "gate must reject the off-pin plan");
  (* the same defective plan is executable when the gate is waived: the
     executor itself never checks pins *)
  let stats = Executor.execute ~plan_lint:false c mutated in
  checkb "opt-out executes" true (stats.Executor.makespan > 0.0)

let test_codes_table_consistent () =
  (* every emitted code in this file's scenarios appears in the catalog *)
  let catalog = List.map (fun (c, _, _) -> c) Planlint.codes in
  List.iter
    (fun c -> checkb (c ^ " documented") true (List.mem c catalog))
    [ "EV100"; "EV101"; "EV102"; "EV103"; "EV110"; "EV111"; "EV112";
      "EV120"; "EV121"; "EV122"; "EV123"; "EV130"; "EV131"; "EV140" ]

(* ---- Lint.promote_warnings (the --strict mode) ------------------------------ *)

let test_promote_warnings () =
  let c = demonstrator () in
  let plan = plan_of ~policy:"heft" c (pinned_pair ()) in
  let assignments = Array.copy plan.Scheduler.assignments in
  assignments.(0) <- { (assignments.(0)) with Scheduler.node = "cf0" };
  let mutated = { plan with Scheduler.assignments; policy = "mutated" } in
  (* off an excluded pin: warning normally, error under strict *)
  let ds = Planlint.check ~excluded:[ "ep0" ] c mutated in
  checkb "warning before" false (Lint.has_errors ds);
  checkb "error after promote" true
    (Lint.has_errors (Lint.promote_warnings ds));
  (* infos survive promotion untouched *)
  let info =
    { Lint.code = "EVXXX"; severity = Lint.Info; in_func = "f";
      op_name = "o"; message = "m"; loc = Everest_ir.Loc.name "l" }
  in
  checkb "info untouched" true
    (List.for_all
       (fun d -> d.Lint.severity = Lint.Info)
       (Lint.promote_warnings [ info ]))

let suite =
  [ ( "reach",
      [ Alcotest.test_case "chain ordering" `Quick test_reach_chain;
        Alcotest.test_case "diamond siblings" `Quick
          test_reach_diamond_siblings_unordered;
        QCheck_alcotest.to_alcotest prop_reach_matches_naive ] );
    ( "clean-plans",
      [ QCheck_alcotest.to_alcotest prop_shipped_schedulers_lint_clean ] );
    ( "structural",
      [ Alcotest.test_case "EV100 dangling input" `Quick
          test_ev100_dangling_input;
        Alcotest.test_case "EV101 duplicate input" `Quick
          test_ev101_duplicate_input;
        Alcotest.test_case "EV102 cycle" `Quick test_ev102_cycle;
        Alcotest.test_case "EV103 stale rev_adj" `Quick
          test_ev103_stale_rev_adj;
        Alcotest.test_case "EV110/EV111 edge drop" `Quick
          test_ev110_ev111_edge_drop;
        Alcotest.test_case "EV111 transitively recovered" `Quick
          test_ev111_transitively_recovered_edge;
        Alcotest.test_case "EV112 shape mismatch" `Quick
          test_ev112_shape_mismatch ] );
    ( "placement",
      [ Alcotest.test_case "EV120 off-pin" `Quick test_ev120_off_pin;
        Alcotest.test_case "EV121 unknown/excluded node" `Quick
          test_ev121_unknown_and_excluded_nodes;
        Alcotest.test_case "EV122/EV123 capability" `Quick
          test_ev122_ev123_capability_mismatch;
        Alcotest.test_case "EV130/EV131 slots" `Quick
          test_ev130_ev131_slot_oversubscription;
        Alcotest.test_case "EV140 infeasible SLO" `Quick
          test_ev140_infeasible_deadline ] );
    ( "plumbing",
      [ Alcotest.test_case "summary fields" `Quick test_summary_fields;
        Alcotest.test_case "per-code cap" `Quick test_diag_cap;
        Alcotest.test_case "executor gate" `Quick
          test_gate_raises_and_opt_out;
        Alcotest.test_case "code catalog" `Quick test_codes_table_consistent;
        Alcotest.test_case "promote warnings" `Quick test_promote_warnings ]
    ) ]

let () = Alcotest.run "everest_planlint" suite
