(* Tests for everest_platform: event engine, resources, node/link models and
   the canonical EVEREST demonstrator topology. *)

open Everest_platform

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)

(* ---- desim ------------------------------------------------------------------- *)

let test_event_ordering () =
  let sim = Desim.create () in
  let log = ref [] in
  Desim.schedule sim 3.0 (fun () -> log := "c" :: !log);
  Desim.schedule sim 1.0 (fun () -> log := "a" :: !log);
  Desim.schedule sim 2.0 (fun () -> log := "b" :: !log);
  Desim.run sim;
  checkb "time order" true (List.rev !log = [ "a"; "b"; "c" ]);
  checkf 1e-12 "clock at last event" 3.0 (Desim.now sim)

let test_fifo_ties () =
  let sim = Desim.create () in
  let log = ref [] in
  Desim.schedule sim 1.0 (fun () -> log := 1 :: !log);
  Desim.schedule sim 1.0 (fun () -> log := 2 :: !log);
  Desim.schedule sim 1.0 (fun () -> log := 3 :: !log);
  Desim.run sim;
  checkb "insertion order on ties" true (List.rev !log = [ 1; 2; 3 ])

let test_nested_scheduling () =
  let sim = Desim.create () in
  let finish = ref 0.0 in
  Desim.schedule sim 1.0 (fun () ->
      Desim.schedule sim 2.0 (fun () -> finish := Desim.now sim));
  Desim.run sim;
  checkf 1e-12 "nested delay accumulates" 3.0 !finish

let test_run_until () =
  let sim = Desim.create () in
  let fired = ref false in
  Desim.schedule sim 10.0 (fun () -> fired := true);
  Desim.run ~until:5.0 sim;
  checkb "future event not fired" false !fired;
  checkf 1e-12 "clock stopped at horizon" 5.0 (Desim.now sim);
  Desim.run sim;
  checkb "resumes past horizon" true !fired

let test_cancel () =
  let sim = Desim.create () in
  let log = ref [] in
  let h = Desim.schedule_cancellable sim 2.0 (fun () -> log := "x" :: !log) in
  Desim.schedule sim 1.0 (fun () -> log := "a" :: !log);
  Desim.schedule sim 3.0 (fun () -> log := "b" :: !log);
  checki "two live + one cancellable pending" 3 (Desim.pending sim);
  Desim.cancel sim h;
  checkb "marked cancelled" true (Desim.cancelled h);
  checki "pending excludes cancelled" 2 (Desim.pending sim);
  Desim.run sim;
  checkb "cancelled event never ran" true (List.rev !log = [ "a"; "b" ]);
  checkf 1e-12 "clock not advanced by skip" 3.0 (Desim.now sim);
  checki "cancelled event not counted" 2 (Desim.executed sim);
  (* cancelling after the fact is a no-op *)
  Desim.cancel sim h;
  checki "still two executed" 2 (Desim.executed sim)

let test_cancel_fired_noop () =
  let sim = Desim.create () in
  let fired = ref 0 in
  let h = Desim.schedule_cancellable sim 1.0 (fun () -> incr fired) in
  Desim.run sim;
  Desim.cancel sim h;  (* already fired: must not corrupt the accounting *)
  checkb "not reported cancelled" false (Desim.cancelled h);
  checki "fired exactly once" 1 !fired;
  checki "nothing pending" 0 (Desim.pending sim)

(* Mass cancellation must trigger in-place compaction so the heap doesn't
   retain O(n) dead entries, and the pop-side shrink must bring capacity
   back down after the burst — both invisible except through [pending]
   staying exact and ordering surviving. *)
let test_cancel_compaction () =
  let sim = Desim.create () in
  let survivors = ref [] in
  let handles =
    List.init 10_000 (fun i ->
        Desim.schedule_cancellable sim
          (1.0 +. float_of_int i)
          (fun () -> survivors := i :: !survivors))
  in
  (* cancel all but every 100th *)
  List.iteri
    (fun i h -> if i mod 100 <> 0 then Desim.cancel sim h)
    handles;
  checki "pending = survivors" 100 (Desim.pending sim);
  Desim.run sim;
  checki "all survivors ran" 100 (List.length !survivors);
  checkb "in order" true
    (List.rev !survivors = List.init 100 (fun i -> i * 100));
  checkf 1e-12 "clock at last survivor" (1.0 +. 9900.0) (Desim.now sim);
  checki "drained" 0 (Desim.pending sim)

let test_resource_serializes () =
  let sim = Desim.create () in
  let r = Desim.resource "unit" 1 in
  let ends = ref [] in
  for _ = 1 to 3 do
    Desim.with_resource sim r ~duration:2.0 (fun () ->
        ends := Desim.now sim :: !ends)
  done;
  Desim.run sim;
  checkb "serialized completions" true (List.rev !ends = [ 2.0; 4.0; 6.0 ])

let test_resource_parallelism () =
  let sim = Desim.create () in
  let r = Desim.resource "dual" 2 in
  let ends = ref [] in
  for _ = 1 to 4 do
    Desim.with_resource sim r ~duration:2.0 (fun () ->
        ends := Desim.now sim :: !ends)
  done;
  Desim.run sim;
  checkb "two at a time" true (List.rev !ends = [ 2.0; 2.0; 4.0; 4.0 ])

(* ---- spec models ----------------------------------------------------------------- *)

let test_cpu_roofline () =
  (* compute-bound: tiny data, many flops *)
  let t_compute = Spec.cpu_time Spec.power9 ~flops:1e12 ~bytes:1e3 ~threads:16 in
  (* memory-bound: huge data, few flops *)
  let t_memory = Spec.cpu_time Spec.power9 ~flops:1e6 ~bytes:1e12 ~threads:16 in
  checkb "compute-bound time from flops" true
    (Float.abs (t_compute -. (1e12 /. Spec.cpu_peak_flops Spec.power9)) < 1e-6);
  checkb "memory-bound time from bandwidth" true
    (Float.abs (t_memory -. (1e12 /. (Spec.power9.Spec.mem_bw_gbs *. 1e9))) < 1e-3)

let test_threads_speedup () =
  let t1 = Spec.cpu_time Spec.power9 ~flops:1e10 ~bytes:1.0 ~threads:1 in
  let t8 = Spec.cpu_time Spec.power9 ~flops:1e10 ~bytes:1.0 ~threads:8 in
  checkf 1e-9 "8x scaling when compute-bound" (t1 /. 8.0) t8

let test_link_models () =
  (* small message: latency-dominated; OpenCAPI must beat TCP by orders *)
  let oc = Spec.transfer_time Spec.opencapi ~bytes:64 in
  let tcp = Spec.transfer_time Spec.eth100_tcp ~bytes:64 in
  checkb "coherent wins small transfers" true (oc *. 10.0 < tcp);
  (* huge transfer: bandwidth-dominated; 100GbE ~ half of OpenCAPI *)
  let oc_big = Spec.transfer_time Spec.opencapi ~bytes:(1 lsl 30) in
  let tcp_big = Spec.transfer_time Spec.eth100_tcp ~bytes:(1 lsl 30) in
  checkb "bandwidth ratio bounded" true (tcp_big < oc_big *. 4.0);
  checkb "wan slowest" true
    (Spec.transfer_time Spec.wan ~bytes:(1 lsl 20)
    > Spec.transfer_time Spec.eth10_tcp ~bytes:(1 lsl 20))

(* ---- nodes ------------------------------------------------------------------------- *)

let test_cpu_contention () =
  let sim = Desim.create () in
  let node = Node.create ~name:"n" ~tier:Spec.Cloud { Spec.power9 with Spec.cores = 2 } in
  let done_times = ref [] in
  (* 4 single-thread tasks of 1e9 flops on 2 cores: two waves *)
  for _ = 1 to 4 do
    Node.run_cpu sim node ~flops:1e9 ~bytes:1.0 ~threads:1 (fun () ->
        done_times := Desim.now sim :: !done_times)
  done;
  Desim.run sim;
  checki "all ran" 4 node.Node.tasks_run;
  let ts = List.sort compare !done_times in
  checkb "two waves" true
    (List.nth ts 3 > List.nth ts 0 *. 1.5)

let test_fpga_reconfig_and_cache () =
  let sim = Desim.create () in
  let node = Cluster.power9_node ~n_fpgas:1 "p9" in
  let dev = List.hd node.Node.fpgas in
  let est =
    { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
      cycles = 25_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 10.0 }
  in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Node.run_fpga sim node dev ~bitstream:"k1" ~estimate:est
    ~host_link:Spec.opencapi ~in_bytes:4096 ~out_bytes:4096 (fun () ->
      t1 := Desim.now sim;
      (* second run: bitstream cached, no reconfiguration *)
      Node.run_fpga sim node dev ~bitstream:"k1" ~estimate:est
        ~host_link:Spec.opencapi ~in_bytes:4096 ~out_bytes:4096 (fun () ->
          t2 := Desim.now sim))
  ;
  Desim.run sim;
  checki "one reconfiguration" 1 dev.Node.reconfigs;
  checkb "cached run faster" true (!t2 -. !t1 < !t1);
  checkb "first run includes reconfig" true (!t1 >= Spec.bus_fpga.Spec.reconfig_s)

let test_fpga_slot_contention () =
  let sim = Desim.create () in
  let node = Cluster.power9_node ~n_fpgas:1 "p9" in
  let dev = List.hd node.Node.fpgas in
  let est =
    { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
      cycles = 2_500_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 10.0 }
  in
  let completions = ref 0 in
  (* 4 concurrent kernels on 2 role slots *)
  for i = 0 to 3 do
    Node.run_fpga sim node dev ~bitstream:(Printf.sprintf "k%d" (i mod 2))
      ~estimate:est ~host_link:Spec.opencapi ~in_bytes:0 ~out_bytes:0 (fun () ->
        incr completions)
  done;
  Desim.run sim;
  checki "all completed" 4 !completions;
  checkb "slots bounded concurrency" true
    (Desim.now sim >= 2.0 *. (0.01 (* 2.5e6 cycles at 250MHz *)))

let test_energy_accounting () =
  let sim = Desim.create () in
  let node = Node.create ~name:"n" ~tier:Spec.Cloud Spec.power9 in
  Node.run_cpu sim node ~flops:1e11 ~bytes:1.0 ~threads:4 (fun () -> ());
  Desim.run sim;
  let e = Node.total_energy node ~elapsed:(Desim.now sim) in
  checkb "energy positive" true (e > 0.0);
  checkb "active adds to idle" true
    (e > Spec.power9.Spec.idle_w *. Desim.now sim)

(* ---- cluster ------------------------------------------------------------------------ *)

let test_cluster_transfer () =
  let c = Cluster.everest_demonstrator () in
  let p9 = Cluster.find_node c "p9" in
  let cf0 = Cluster.find_node c "cf0" in
  let edge = Cluster.find_node c "edge0" in
  (* explicit DC link between p9 and cf0 *)
  let t_dc = Cluster.transfer_time c ~src:p9 ~dst:cf0 ~bytes:(1 lsl 20) in
  let t_wan = Cluster.transfer_time c ~src:p9 ~dst:edge ~bytes:(1 lsl 20) in
  checkb "DC link beats WAN" true (t_dc *. 10.0 < t_wan);
  let finished = ref false in
  Cluster.transfer c ~src:p9 ~dst:cf0 ~bytes:(1 lsl 20) (fun () -> finished := true);
  Cluster.run c;
  checkb "transfer completes" true !finished;
  checki "accounted" 1 c.Cluster.transfers

let test_same_node_free () =
  let c = Cluster.everest_demonstrator () in
  let p9 = Cluster.find_node c "p9" in
  checkf 1e-15 "no self transfer cost" 0.0
    (Cluster.transfer_time c ~src:p9 ~dst:p9 ~bytes:(1 lsl 30))

let test_demonstrator_shape () =
  let c = Cluster.everest_demonstrator ~cloud_fpgas:3 ~edges:2 ~endpoints:5 () in
  checki "node count" (1 + 3 + 2 + 5) (List.length c.Cluster.nodes);
  let p9 = Cluster.find_node c "p9" in
  checki "p9 has 2 bus FPGAs" 2 (List.length p9.Node.fpgas);
  checkb "bus attach" true
    ((List.hd p9.Node.fpgas).Node.fspec.Spec.attach = Spec.Bus_coherent);
  let cf = Cluster.find_node c "cf0" in
  checkb "network attach" true
    ((List.hd cf.Node.fpgas).Node.fspec.Spec.attach = Spec.Network_attached)

(* property: transfer time is monotone in bytes for every link *)
let prop_transfer_monotone =
  QCheck.Test.make ~count:50 ~name:"transfer time monotone in size"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      List.for_all
        (fun l -> Spec.transfer_time l ~bytes:lo <= Spec.transfer_time l ~bytes:hi)
        [ Spec.opencapi; Spec.pcie3; Spec.eth100_tcp; Spec.eth10_tcp;
          Spec.eth10_udp; Spec.wan ])

let () =
  Alcotest.run "everest_platform"
    [
      ( "desim",
        [ Alcotest.test_case "ordering" `Quick test_event_ordering;
          Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
          Alcotest.test_case "nested" `Quick test_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel after fire" `Quick test_cancel_fired_noop;
          Alcotest.test_case "mass cancel compaction" `Quick test_cancel_compaction;
          Alcotest.test_case "resource serializes" `Quick test_resource_serializes;
          Alcotest.test_case "resource parallel" `Quick test_resource_parallelism ] );
      ( "spec",
        [ Alcotest.test_case "cpu roofline" `Quick test_cpu_roofline;
          Alcotest.test_case "thread scaling" `Quick test_threads_speedup;
          Alcotest.test_case "links" `Quick test_link_models;
          QCheck_alcotest.to_alcotest prop_transfer_monotone ] );
      ( "node",
        [ Alcotest.test_case "cpu contention" `Quick test_cpu_contention;
          Alcotest.test_case "fpga reconfig cache" `Quick test_fpga_reconfig_and_cache;
          Alcotest.test_case "fpga slots" `Quick test_fpga_slot_contention;
          Alcotest.test_case "energy" `Quick test_energy_accounting ] );
      ( "cluster",
        [ Alcotest.test_case "transfers" `Quick test_cluster_transfer;
          Alcotest.test_case "same node free" `Quick test_same_node_free;
          Alcotest.test_case "demonstrator" `Quick test_demonstrator_shape ] );
    ]
