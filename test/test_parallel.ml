(* Tests for everest_parallel (domain pool, RNG, memo cache) and the
   compiler's use of them: shared estimation cache and the guarantee that
   parallel DSE returns bit-identical Pareto sets. *)

open Everest_parallel
module Comp = Everest_compiler
module TE = Everest_dsl.Tensor_expr

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---- pool ----------------------------------------------------------------------- *)

let test_map_matches_sequential () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Pool.with_pool ~domains:4 (fun p ->
      Alcotest.(check (list int))
        "parallel = sequential" (List.map f xs) (Pool.parallel_map p f xs))

let test_map_deterministic () =
  let xs = List.init 257 string_of_int in
  Pool.with_pool ~domains:4 (fun p ->
      let a = Pool.parallel_map p String.length xs in
      let b = Pool.parallel_map p String.length xs in
      Alcotest.(check (list int)) "two runs agree" a b)

let test_map_empty_and_single_domain () =
  Pool.with_pool ~domains:4 (fun p ->
      checki "empty list" 0 (List.length (Pool.parallel_map p succ [])));
  Pool.with_pool ~domains:1 (fun p ->
      checki "size-1 pool runs in caller" 1 (Pool.size p);
      Alcotest.(check (list int))
        "sequential fallback" [ 2; 3; 4 ]
        (Pool.parallel_map p succ [ 1; 2; 3 ]))

let test_exception_propagates () =
  Pool.with_pool ~domains:4 (fun p ->
      Alcotest.check_raises "task exception re-raised" (Failure "boom")
        (fun () ->
          ignore
            (Pool.parallel_map p
               (fun x -> if x = 13 then failwith "boom" else x)
               (List.init 64 (fun i -> i)))))

let test_reduce_in_order () =
  (* string concatenation is not commutative: order mistakes show *)
  let xs = List.init 50 string_of_int in
  Pool.with_pool ~domains:4 (fun p ->
      Alcotest.(check string)
        "non-commutative reduce matches fold"
        (List.fold_left ( ^ ) "" xs)
        (Pool.parallel_reduce p ~map:Fun.id ~combine:( ^ ) ~init:"" xs))

let test_stats_account_all_items () =
  Pool.with_pool ~domains:4 (fun p ->
      ignore (Pool.parallel_map p succ (List.init 200 (fun i -> i)));
      checki "every item attributed to a domain" 200
        (Array.fold_left ( + ) 0 (Pool.stats p)))

(* ---- rng ------------------------------------------------------------------------ *)

let test_rng_degenerate_seeds () =
  (* 0 and multiples of the modulus are absorbing states of the raw Lehmer
     recurrence; the seed guard must map them somewhere productive *)
  List.iter
    (fun seed ->
      let r = Rng.create seed in
      let a = Rng.next r and b = Rng.next r in
      checkb (Printf.sprintf "seed %d draws nonzero" seed) true
        (a > 0 && b > 0);
      checkb (Printf.sprintf "seed %d advances" seed) true (a <> b))
    [ 0; 0x7FFFFFFF; -0x7FFFFFFF; 2 * 0x7FFFFFFF ]

let test_rng_deterministic_and_compatible () =
  let a = Rng.create 17 and b = Rng.create 17 in
  let da = List.init 20 (fun _ -> Rng.next a) in
  let db = List.init 20 (fun _ -> Rng.next b) in
  Alcotest.(check (list int)) "same seed, same stream" da db;
  (* first draw matches the historical ad-hoc generators this replaced *)
  checki "Lehmer step for seed 17" (17 * 48271 mod 0x7FFFFFFF)
    (Rng.next (Rng.create 17))

let test_rng_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    checkb "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Everest_parallel.Rng.int: bound <= 0") (fun () ->
      ignore (Rng.int r 0))

(* ---- cache ---------------------------------------------------------------------- *)

let test_cache_counts () =
  let c = Cache.create ~name:"t" () in
  checki "computed once" 7 (Cache.find_or_compute c ~key:"k" (fun () -> 7));
  checki "served from cache" 7
    (Cache.find_or_compute c ~key:"k" (fun () -> Alcotest.fail "recomputed"));
  let s = Cache.stats c in
  checki "hits" 1 s.Cache.hits;
  checki "misses" 1 s.Cache.misses;
  checki "entries" 1 s.Cache.entries;
  Cache.clear c;
  checki "cleared" 0 (Cache.stats c).Cache.entries;
  checki "counters survive clear" 1 (Cache.stats c).Cache.hits

(* ---- estimation cache + DSE ----------------------------------------------------- *)

let matmul_expr n = TE.matmul (TE.input "a" [ n; n ]) (TE.input "b" [ n; n ])

let test_dse_cache_hits_on_repeat () =
  let cache = Comp.Estimate_cache.create () in
  let e = matmul_expr 64 in
  let r1 = Comp.Dse.exhaustive ~cache e in
  let cold = Comp.Estimate_cache.stats cache in
  checki "cold run misses everything" 0 cold.Cache.hits;
  checkb "cold run populates" true (cold.Cache.entries > 0);
  let r2 = Comp.Dse.exhaustive ~cache e in
  let warm = Comp.Estimate_cache.stats cache in
  checki "warm run hits everything" cold.Cache.misses warm.Cache.hits;
  checki "no new entries" cold.Cache.entries warm.Cache.entries;
  checki "same pareto size" (List.length r1.Comp.Dse.variants)
    (List.length r2.Comp.Dse.variants)

let same_variants a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Comp.Variants.variant) (y : Comp.Variants.variant) ->
         String.equal x.Comp.Variants.vname y.Comp.Variants.vname
         && x.Comp.Variants.time_s = y.Comp.Variants.time_s
         && x.Comp.Variants.energy_j = y.Comp.Variants.energy_j
         && x.Comp.Variants.area_luts = y.Comp.Variants.area_luts)
       a b

let test_parallel_dse_bit_identical () =
  let e = matmul_expr 128 in
  let seq =
    Pool.with_pool ~domains:1 (fun pool ->
        Comp.Dse.exhaustive ~pool ~cache:(Comp.Estimate_cache.create ()) e)
  in
  let par =
    Pool.with_pool ~domains:4 (fun pool ->
        Comp.Dse.exhaustive ~pool ~cache:(Comp.Estimate_cache.create ()) e)
  in
  checki "same exploration count" seq.Comp.Dse.explored par.Comp.Dse.explored;
  checkb "bit-identical pareto set" true
    (same_variants seq.Comp.Dse.variants par.Comp.Dse.variants)

(* ---- pareto: fast sweep vs naive reference -------------------------------------- *)

let variant_of (t, e, a) =
  { Comp.Variants.vname = Printf.sprintf "v-%g-%g-%d" t e a;
    impl =
      Comp.Variants.Sw
        { Comp.Cost_model.tile = None; layout = Comp.Cost_model.Aos;
          threads = 1 };
    time_s = t; energy_j = e; area_luts = a }

(* small value grids so duplicates and per-axis ties actually occur *)
let variant_gen =
  QCheck.Gen.(
    list_size (int_bound 60)
      (map variant_of
         (triple
            (map (fun i -> float_of_int i) (int_range 1 4))
            (map (fun i -> float_of_int i) (int_range 1 4))
            (int_range 0 3))))

let pareto_equiv =
  QCheck.Test.make ~count:500 ~name:"pareto sweep = naive filter"
    (QCheck.make variant_gen) (fun vs ->
      same_variants (Comp.Variants.pareto vs) (Comp.Variants.pareto_naive vs))

let () =
  Alcotest.run "everest_parallel"
    [ ( "pool",
        [ Alcotest.test_case "map = sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "deterministic" `Quick test_map_deterministic;
          Alcotest.test_case "empty + size-1" `Quick
            test_map_empty_and_single_domain;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "ordered reduce" `Quick test_reduce_in_order;
          Alcotest.test_case "stats" `Quick test_stats_account_all_items ] );
      ( "rng",
        [ Alcotest.test_case "degenerate seeds" `Quick
            test_rng_degenerate_seeds;
          Alcotest.test_case "determinism + compat" `Quick
            test_rng_deterministic_and_compatible;
          Alcotest.test_case "bounds" `Quick test_rng_bounds ] );
      ( "cache",
        [ Alcotest.test_case "hit/miss accounting" `Quick test_cache_counts ] );
      ( "dse",
        [ Alcotest.test_case "repeat exploration hits cache" `Quick
            test_dse_cache_hits_on_repeat;
          Alcotest.test_case "parallel = sequential pareto" `Quick
            test_parallel_dse_bit_identical ] );
      ( "pareto",
        [ QCheck_alcotest.to_alcotest pareto_equiv ] ) ]
