(* Tests for everest_serving: seeded workload generation, admission
   control (token buckets + SLO burn gate), routing policies, batching,
   worker auto-allocation, and the end-to-end fabric — including the
   same-seed byte-identity property the serving drill and CI pin. *)

open Everest_serving
module Slo = Everest_observe.Slo
module Faults = Everest_resilience.Faults
module Metrics = Everest_telemetry.Metrics
module Orch = Everest_runtime.Orchestrator

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checks = Alcotest.check Alcotest.string

(* ---- workload ------------------------------------------------------------- *)

let acme ?burst ?(rate = 200.0) () =
  Workload.open_tenant ~name:"acme" ~kernel:"mm" ~rate_rps:rate
    ~diurnal_amplitude:0.3 ~diurnal_period_s:1.0 ?burst
    ~features:(fun seq -> [ ("size", float_of_int (1024 + (seq mod 7))) ])
    ()

let globex () =
  Workload.closed_tenant ~name:"globex" ~kernel:"mm" ~users:4 ~think_s:0.05 ()

let test_workload_deterministic () =
  let gen () = Workload.generate ~seed:42 ~horizon:1.0 [ acme () ] in
  let a = gen () and b = gen () in
  checki "same length" (List.length a) (List.length b);
  List.iter2
    (fun (x : Workload.request) y ->
      checki "id" x.Workload.rq_id y.Workload.rq_id;
      checkf "arrival" x.Workload.rq_arrival_s y.Workload.rq_arrival_s)
    a b;
  let c = Workload.generate ~seed:43 ~horizon:1.0 [ acme () ] in
  checkb "different seed differs" true
    (List.map (fun r -> r.Workload.rq_arrival_s) a
    <> List.map (fun r -> r.Workload.rq_arrival_s) c)

let test_workload_shape () =
  let reqs =
    Workload.generate ~seed:7 ~horizon:1.0
      [ acme (); acme ~rate:50.0 () ]
  in
  checkb "non-empty" true (reqs <> []);
  List.iteri
    (fun i (r : Workload.request) ->
      checki "dense ids" i r.Workload.rq_id;
      checkb "inside horizon" true
        (r.Workload.rq_arrival_s >= 0.0 && r.Workload.rq_arrival_s < 1.0))
    reqs;
  let rec sorted = function
    | (a : Workload.request) :: (b :: _ as rest) ->
        a.Workload.rq_arrival_s <= b.Workload.rq_arrival_s && sorted rest
    | _ -> true
  in
  checkb "sorted by arrival" true (sorted reqs);
  (* rough rate sanity: 200 rps for 1 s should land within a wide band *)
  let n = List.length (Workload.generate ~seed:7 ~horizon:1.0 [ acme () ]) in
  checkb "plausible count" true (n > 100 && n < 400)

let test_workload_burst_raises_rate () =
  let burst =
    { Workload.burst_factor = 8.0; mean_calm_s = 0.05; mean_burst_s = 0.05 }
  in
  let calm = Workload.generate ~seed:3 ~horizon:2.0 [ acme ~rate:50.0 () ] in
  let bursty =
    Workload.generate ~seed:3 ~horizon:2.0 [ acme ~burst ~rate:50.0 () ]
  in
  checkb "burst overlay adds arrivals" true
    (List.length bursty > List.length calm)

let test_workload_closed_users () =
  let users = Workload.closed_users ~seed:5 [ globex () ] in
  checki "population" 4 (List.length users);
  List.iter
    (fun u ->
      checks "tenant" "globex" (Workload.user_tenant u);
      checkb "staggered start" true
        (Workload.first_arrival u >= 0.0 && Workload.first_arrival u <= 0.05);
      checkb "think positive" true (Workload.next_think u > 0.0))
    users;
  checkb "open tenants contribute no users" true
    (Workload.closed_users ~seed:5 [ acme () ] = [])

let test_workload_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Workload.open_tenant ~name:"x" ~kernel:"k" ~rate_rps:0.0 ());
  expect_invalid (fun () ->
      Workload.open_tenant ~name:"x" ~kernel:"k" ~rate_rps:1.0
        ~diurnal_amplitude:1.5 ());
  expect_invalid (fun () ->
      Workload.closed_tenant ~name:"x" ~kernel:"k" ~users:0 ~think_s:1.0 ());
  expect_invalid (fun () ->
      Workload.generate ~horizon:0.0 [ acme () ])

(* ---- admission ------------------------------------------------------------ *)

let test_admission_token_bucket () =
  let config =
    { Admission.buckets = [ ("t", { Admission.rate_rps = 10.0; burst = 2.0 }) ];
      default_bucket = Admission.unlimited; burn_threshold = 0.0 }
  in
  let adm = Admission.create config ~tenants:[ "t" ] ~monitors:(fun _ -> []) in
  checkb "first admit" true (Admission.decide adm ~tenant:"t" ~now:0.0 = Admit);
  checkb "second admit" true (Admission.decide adm ~tenant:"t" ~now:0.0 = Admit);
  checkb "bucket empty" true
    (Admission.decide adm ~tenant:"t" ~now:0.0
    = Reject Admission.Rate_limited);
  (* 10 rps refill: one token back after 0.1 s *)
  checkb "refilled" true (Admission.decide adm ~tenant:"t" ~now:0.11 = Admit);
  checki "admitted count" 3 (Admission.admitted adm ~tenant:"t");
  checki "rejected count" 1 (Admission.rejected adm ~tenant:"t")

let test_admission_sheds_on_burned_budget () =
  (* deliberately burn the error budget: a 99% availability SLO fed
     nothing but failures must close the gate on both windows *)
  let m = Slo.monitor (Slo.availability "avail" 0.99) in
  for i = 0 to 19 do
    Slo.observe m ~now:(0.01 *. float_of_int i) ~ok:false ()
  done;
  let adm =
    Admission.create Admission.default_config ~tenants:[ "t" ]
      ~monitors:(fun _ -> [ m ])
  in
  (match Admission.decide adm ~tenant:"t" ~now:0.2 with
  | Reject Admission.Slo_burning -> ()
  | Admit -> Alcotest.fail "burned tenant must be shed"
  | Reject r -> Alcotest.failf "wrong reason %s" (Admission.reason_name r));
  (* pull-based recovery: once the bad events age out of the slow window
     the tenant is re-admitted without any new observations *)
  checkb "recovers after the slow window" true
    (Admission.decide adm ~tenant:"t" ~now:10.0 = Admit);
  let by_reason = Admission.rejections_by_reason adm ~tenant:"t" in
  checki "one burn rejection" 1
    (List.assoc Admission.Slo_burning by_reason)

let test_admission_disabled_gate () =
  let m = Slo.monitor (Slo.availability "avail" 0.99) in
  Slo.observe m ~now:0.0 ~ok:false ();
  let config = { Admission.default_config with burn_threshold = 0.0 } in
  let adm = Admission.create config ~tenants:[ "t" ] ~monitors:(fun _ -> [ m ]) in
  checkb "threshold <= 0 disables the gate" true
    (Admission.decide adm ~tenant:"t" ~now:0.0 = Admit)

(* ---- balancer ------------------------------------------------------------- *)

let all_routable _ = true
let no_load _ = 0

let test_balancer_round_robin () =
  let b = Balancer.create Balancer.Round_robin ~n_shards:3 in
  let pick () =
    Balancer.route b ~tenant:"t" ~routable:all_routable ~outstanding:no_load
  in
  let p1 = pick () in
  let p2 = pick () in
  let p3 = pick () in
  let p4 = pick () in
  checkb "cycles" true ([ p1; p2; p3; p4 ] = [ Some 0; Some 1; Some 2; Some 0 ]);
  let only_two i = i <> 1 in
  checkb "skips unroutable" true
    (Balancer.route b ~tenant:"t" ~routable:only_two ~outstanding:no_load
    <> Some 1);
  checkb "none routable" true
    (Balancer.route b ~tenant:"t" ~routable:(fun _ -> false)
       ~outstanding:no_load
    = None)

let test_balancer_least_outstanding () =
  let b = Balancer.create Balancer.Least_outstanding ~n_shards:3 in
  let load = function 0 -> 5 | 1 -> 2 | _ -> 9 in
  checkb "fewest outstanding" true
    (Balancer.route b ~tenant:"t" ~routable:all_routable ~outstanding:load
    = Some 1);
  checkb "lowest id on ties" true
    (Balancer.route b ~tenant:"t" ~routable:all_routable ~outstanding:no_load
    = Some 0)

let test_balancer_affinity () =
  let b = Balancer.create (Balancer.Tenant_affinity { vnodes = 64 }) ~n_shards:4 in
  let route tenant routable =
    Balancer.route b ~tenant ~routable ~outstanding:no_load
  in
  let home = route "acme" all_routable in
  checkb "has a home" true (home <> None);
  checkb "sticky" true
    (List.for_all (fun _ -> route "acme" all_routable = home) [ 1; 2; 3 ]);
  checkb "matches affinity_home" true
    (home = Balancer.affinity_home b ~tenant:"acme");
  (* spread: 32 tenants over 4 shards should touch more than one shard *)
  let shards =
    List.sort_uniq compare
      (List.filter_map
         (fun i -> route (Printf.sprintf "tenant%d" i) all_routable)
         (List.init 32 Fun.id))
  in
  checkb "ring spreads tenants" true (List.length shards > 1);
  (* incident: the home shard going unroutable degrades to next-on-ring *)
  let without_home i = Some i <> home in
  let fallback = route "acme" without_home in
  checkb "walks past unroutable home" true
    (fallback <> None && fallback <> home)

let test_balancer_parse () =
  checkb "rr" true (Balancer.policy_of_string "rr" = Some Balancer.Round_robin);
  checkb "lo" true
    (Balancer.policy_of_string "least-outstanding"
    = Some Balancer.Least_outstanding);
  checkb "affinity" true
    (match Balancer.policy_of_string "affinity" with
    | Some (Balancer.Tenant_affinity _) -> true
    | _ -> false);
  checkb "junk" true (Balancer.policy_of_string "nope" = None)

(* ---- batcher -------------------------------------------------------------- *)

let req ?(kernel = "mm") id t =
  { Workload.rq_id = id; rq_tenant = "t"; rq_kernel = kernel; rq_user = -1;
    rq_seq = id; rq_arrival_s = t; rq_features = [] }

let test_batcher_size_trigger () =
  let b =
    Batcher.create { Batcher.max_batch = 3; max_delay_s = 1.0; marginal_cost = 0.25 }
  in
  checkb "first two pend" true
    (Batcher.add b ~now:0.0 (req 0 0.0) = None
    && Batcher.add b ~now:0.0 (req 1 0.0) = None);
  (match Batcher.add b ~now:0.0 (req 2 0.0) with
  | Some batch ->
      checki "full batch" 3 (Batcher.size batch);
      checkb "oldest first" true
        (List.map (fun (r : Workload.request) -> r.Workload.rq_id)
           batch.Batcher.b_requests
        = [ 0; 1; 2 ])
  | None -> Alcotest.fail "size trigger must fire");
  checki "drained" 0 (Batcher.pending b)

let test_batcher_deadline_and_greedy () =
  let b =
    Batcher.create
      { Batcher.max_batch = 8; max_delay_s = 0.01; marginal_cost = 0.25 }
  in
  ignore (Batcher.add b ~now:0.0 (req 0 0.0));
  ignore (Batcher.add b ~now:0.002 (req ~kernel:"fft" 1 0.002));
  checkb "not due yet" true (Batcher.flush_due b ~now:0.005 = []);
  (match Batcher.flush_due b ~now:0.011 with
  | [ batch ] -> checks "oldest key flushes" "mm" batch.Batcher.b_key
  | _ -> Alcotest.fail "exactly the aged key must flush");
  (match Batcher.flush_oldest b ~now:0.011 with
  | Some batch -> checks "greedy drains the rest" "fft" batch.Batcher.b_key
  | None -> Alcotest.fail "fft still pending");
  checkb "empty now" true (Batcher.flush_oldest b ~now:1.0 = None)

let test_batcher_amortization () =
  let c = { Batcher.max_batch = 8; max_delay_s = 0.01; marginal_cost = 0.25 } in
  checkf "size 1 pays full" 1.0 (Batcher.service_time c ~single_s:1.0 ~size:1);
  checkf "amortized" 1.75 (Batcher.service_time c ~single_s:1.0 ~size:4)

(* ---- autoscale ------------------------------------------------------------ *)

let test_autoscale_spawn_and_retire () =
  let t =
    Autoscale.create
      { Autoscale.default_config with
        min_workers = 1; max_workers = 4; target_queue_per_worker = 2.0;
        retire_idle_ticks = 2 }
  in
  (match Autoscale.tick t ~depth:8 ~busy:1 ~backlog_age_s:0.0 with
  | Autoscale.Spawn n ->
      checkb "spawns toward target" true (n >= 1);
      checki "requested counted" (1 + n) (Autoscale.effective_workers t)
  | _ -> Alcotest.fail "overload must spawn");
  (* spawns in flight: the controller must not double-request *)
  (match Autoscale.tick t ~depth:8 ~busy:1 ~backlog_age_s:0.0 with
  | Autoscale.Spawn n -> checkb "bounded" true (Autoscale.effective_workers t <= 4 && n >= 0)
  | _ -> ());
  while Autoscale.effective_workers t > Autoscale.workers t do
    Autoscale.worker_up t
  done;
  checkb "workers up" true (Autoscale.workers t > 1);
  let spawned = Autoscale.spawned_total t in
  checkb "spawned recorded" true (spawned >= 1);
  (* drain: idle ticks retire one worker at a time down to min *)
  let rec drain () =
    if Autoscale.workers t > 1 then begin
      ignore (Autoscale.tick t ~depth:0 ~busy:0 ~backlog_age_s:0.0);
      drain ()
    end
  in
  drain ();
  checki "back to min" 1 (Autoscale.workers t);
  checki "retired it all" (spawned) (Autoscale.retired_total t)

let test_autoscale_backlog_age_trigger () =
  let t =
    Autoscale.create
      { Autoscale.default_config with max_backlog_age_s = 0.01 }
  in
  (match Autoscale.tick t ~depth:1 ~busy:1 ~backlog_age_s:0.5 with
  | Autoscale.Spawn _ -> ()
  | _ -> Alcotest.fail "stale backlog must spawn");
  checkb "fixed pool never scales" true
    (Autoscale.tick (Autoscale.create (Autoscale.fixed 2)) ~depth:100 ~busy:2
       ~backlog_age_s:1.0
    = Autoscale.Hold)

(* ---- fabric --------------------------------------------------------------- *)

let run_fabric ?(config_f = Fun.id) ~n_shards ~seed () =
  let config = config_f (Fabric.default_config ~n_shards) in
  Fabric.run ~registry:(Metrics.create_registry ())
    { config with Fabric.seed }
    ~deploy:(Fabric.demo_deploy ())
    ~tenants:[ acme ~rate:150.0 (); globex () ]
    ~horizon:0.3

let test_fabric_serves_the_workload () =
  let r = run_fabric ~n_shards:2 ~seed:11 () in
  checkb "served some" true (Fabric.served_ok r > 20);
  checkf "healthy availability" 1.0 (Fabric.availability r);
  checkb "closed loop contributed" true
    (List.exists
       (fun x -> String.equal x.Fabric.sr_tenant "globex")
       r.Fabric.f_log);
  checkb "makespan past horizon start" true (r.Fabric.f_makespan_s > 0.0);
  (* every request resolves exactly once, ids dense *)
  let ids = List.map (fun x -> x.Fabric.sr_id) r.Fabric.f_log in
  checkb "log sorted by id, no duplicates" true
    (ids = List.sort_uniq compare ids);
  (* both shards took traffic *)
  let shards =
    List.sort_uniq compare
      (List.filter_map
         (fun x -> if x.Fabric.sr_shard >= 0 then Some x.Fabric.sr_shard else None)
         r.Fabric.f_log)
  in
  checkb "load spread over shards" true (List.length shards = 2)

let test_fabric_same_seed_identical () =
  let a = run_fabric ~n_shards:2 ~seed:5 ()
  and b = run_fabric ~n_shards:2 ~seed:5 () in
  checks "request logs byte-identical" (Fabric.render_log a)
    (Fabric.render_log b);
  checks "slo outcomes byte-identical" (Fabric.render_slos a)
    (Fabric.render_slos b);
  let c = run_fabric ~n_shards:2 ~seed:6 () in
  checkb "different seed differs" true
    (Fabric.render_log a <> Fabric.render_log c)

let prop_same_seed_identical =
  QCheck.Test.make ~count:4 ~name:"same seed + shards => identical serving"
    QCheck.(pair (int_range 1 1000) (int_range 1 3))
    (fun (seed, n_shards) ->
      let a = run_fabric ~n_shards ~seed ()
      and b = run_fabric ~n_shards ~seed () in
      String.equal (Fabric.render_log a) (Fabric.render_log b)
      && String.equal (Fabric.render_slos a) (Fabric.render_slos b))

let test_fabric_batches_under_load () =
  let r =
    Fabric.run ~registry:(Metrics.create_registry ())
      { (Fabric.default_config ~n_shards:1) with
        Fabric.seed = 3;
        autoscale = Autoscale.fixed 1;
        batcher = { Batcher.max_batch = 8; max_delay_s = 0.01; marginal_cost = 0.2 } }
      ~deploy:(Fabric.demo_deploy ())
      ~tenants:[ acme ~rate:400.0 () ]
      ~horizon:0.2
  in
  checkb "coalesced under load" true (Fabric.batched_requests r > 0);
  checkb "batch sizes recorded" true
    (List.exists (fun x -> x.Fabric.sr_batch > 1) r.Fabric.f_log)

let test_fabric_drains_dead_shard () =
  let faults =
    Faults.plan
      ~windows:[ { Faults.w_node = "shard0"; w_down = 0.05; w_up = None } ]
      ()
  in
  let r =
    Fabric.run ~registry:(Metrics.create_registry ())
      { (Fabric.default_config ~n_shards:2) with Fabric.seed = 9; faults }
      ~deploy:(Fabric.demo_deploy ())
      ~tenants:[ acme ~rate:150.0 () ]
      ~horizon:0.3
  in
  checkb "survivor carries the load" true
    (List.for_all
       (fun x ->
         x.Fabric.sr_outcome <> Fabric.Served
         || x.Fabric.sr_done_s <= 0.06
         || x.Fabric.sr_shard = 1)
       r.Fabric.f_log);
  checkb "nothing lost" true (Fabric.availability r >= 0.99);
  checkb "still serving" true (Fabric.served_ok r > 10)

(* A shard dying mid-batch must not drop the batch's members: work in
   flight when the window opens fails, is re-routed to the survivor
   (bounded by [max_reroutes]) and eventually resolves — the log holds
   exactly the arrivals of the fault-free same-seed run, with no
   [Failed "shard-crash"] leaking through. *)
let test_fabric_evacuates_inflight_mid_batch () =
  let config =
    { (Fabric.default_config ~n_shards:2) with
      Fabric.seed = 5;
      autoscale = Autoscale.fixed 1;
      batcher =
        { Batcher.max_batch = 8; max_delay_s = 0.02; marginal_cost = 0.2 } }
  in
  let run faults =
    Fabric.run ~registry:(Metrics.create_registry ())
      { config with Fabric.faults }
      ~deploy:(Fabric.demo_deploy ())
      ~tenants:[ acme ~rate:6000.0 () ]
      ~horizon:0.4
  in
  let calm = run Faults.none in
  let r =
    run
      (Faults.plan
         ~windows:[ { Faults.w_node = "shard0"; w_down = 0.1; w_up = Some 0.2 } ]
         ())
  in
  checkb "batches actually formed" true
    (List.exists (fun x -> x.Fabric.sr_batch > 1) r.Fabric.f_log);
  checkb "in-flight work re-routed" true (r.Fabric.f_reroutes > 0);
  (* arrivals are seed-driven: the crashed run resolves every one of them *)
  checki "no request dropped" (List.length calm.Fabric.f_log)
    (List.length r.Fabric.f_log);
  let ids = List.map (fun x -> x.Fabric.sr_id) r.Fabric.f_log in
  checkb "each resolved exactly once" true (ids = List.sort_uniq compare ids);
  checkb "no crash failure leaks to a client" true
    (List.for_all
       (fun x -> x.Fabric.sr_outcome <> Fabric.Failed "shard-crash")
       r.Fabric.f_log);
  (* while shard0 is down, completions come from the survivor *)
  checkb "survivor serves during the outage" true
    (List.for_all
       (fun x ->
         x.Fabric.sr_outcome <> Fabric.Served
         || x.Fabric.sr_done_s <= 0.1
         || x.Fabric.sr_done_s >= 0.2
         || x.Fabric.sr_shard = 1)
       r.Fabric.f_log)

let test_fabric_sheds_when_everything_is_down () =
  let faults =
    Faults.plan
      ~windows:[ { Faults.w_node = "shard0"; w_down = 0.05; w_up = None } ]
      ()
  in
  let r =
    Fabric.run ~registry:(Metrics.create_registry ())
      { (Fabric.default_config ~n_shards:1) with Fabric.seed = 9; faults }
      ~deploy:(Fabric.demo_deploy ())
      ~tenants:[ acme ~rate:150.0 () ]
      ~horizon:0.3
  in
  checkb "later arrivals shed or failed" true
    (Fabric.shed r + Fabric.failed r > 0);
  checkb "typed unavailability recorded" true
    (List.exists
       (fun x ->
         match x.Fabric.sr_outcome with
         | Fabric.Rejected Admission.Unavailable -> true
         | _ -> false)
       r.Fabric.f_log)

let test_shard_draining_on_open_breaker () =
  let shard =
    Shard.create ~id:0 ~batcher:Batcher.default_config
      ~autoscale:(Autoscale.fixed 1)
      ~deploy:
        (Fabric.demo_deploy
           ~breaker:
             { Everest_resilience.Breaker.failure_threshold = 2;
               cooldown_s = 10.0; half_open_probes = 1 }
           ())
      ()
  in
  checkb "healthy at start" false (Shard.draining shard);
  (* hardware-only failures trip the hw breaker and the shard drains *)
  ignore
    (Orch.serve shard.Shard.s_orch ~kernel:"mm" ~n:6 ~policy:Orch.Adaptive
       ~fail:(fun ~req:_ ~variant ~attempt:_ -> String.equal variant "hw")
       ~max_attempts:2 ());
  checkb "draining with open breaker" true (Shard.draining shard)

let () =
  Alcotest.run "everest_serving"
    [ ( "workload",
        [ Alcotest.test_case "deterministic under a seed" `Quick
            test_workload_deterministic;
          Alcotest.test_case "dense sorted arrivals" `Quick
            test_workload_shape;
          Alcotest.test_case "burst overlay raises the rate" `Quick
            test_workload_burst_raises_rate;
          Alcotest.test_case "closed-loop users" `Quick
            test_workload_closed_users;
          Alcotest.test_case "validation" `Quick test_workload_validation ] );
      ( "admission",
        [ Alcotest.test_case "token bucket" `Quick test_admission_token_bucket;
          Alcotest.test_case "sheds on burned budget" `Quick
            test_admission_sheds_on_burned_budget;
          Alcotest.test_case "gate can be disabled" `Quick
            test_admission_disabled_gate ] );
      ( "balancer",
        [ Alcotest.test_case "round robin" `Quick test_balancer_round_robin;
          Alcotest.test_case "least outstanding" `Quick
            test_balancer_least_outstanding;
          Alcotest.test_case "tenant affinity ring" `Quick
            test_balancer_affinity;
          Alcotest.test_case "policy parsing" `Quick test_balancer_parse ] );
      ( "batcher",
        [ Alcotest.test_case "size trigger" `Quick test_batcher_size_trigger;
          Alcotest.test_case "deadline and greedy flush" `Quick
            test_batcher_deadline_and_greedy;
          Alcotest.test_case "amortization model" `Quick
            test_batcher_amortization ] );
      ( "autoscale",
        [ Alcotest.test_case "spawn and retire" `Quick
            test_autoscale_spawn_and_retire;
          Alcotest.test_case "backlog age trigger" `Quick
            test_autoscale_backlog_age_trigger ] );
      ( "fabric",
        [ Alcotest.test_case "serves the workload" `Quick
            test_fabric_serves_the_workload;
          Alcotest.test_case "same seed is byte-identical" `Quick
            test_fabric_same_seed_identical;
          Alcotest.test_case "batches under load" `Quick
            test_fabric_batches_under_load;
          Alcotest.test_case "drains a dead shard" `Quick
            test_fabric_drains_dead_shard;
          Alcotest.test_case "evacuates in-flight work mid-batch" `Quick
            test_fabric_evacuates_inflight_mid_batch;
          Alcotest.test_case "sheds when everything is down" `Quick
            test_fabric_sheds_when_everything_is_down;
          Alcotest.test_case "open breaker drains the shard" `Quick
            test_shard_draining_on_open_breaker;
          QCheck_alcotest.to_alcotest prop_same_seed_identical ] ) ]
