(* Tests for everest_recovery and the crash-consistent checkpoint/restore
   paths built on it: the token codec, the versioned snapshot envelope,
   write-ahead journal segments (including torn tails), the on-disk store
   (fingerprint checks, snapshot fallback), and the headline invariant —
   a run killed at a random journal point and resumed produces reports
   byte-identical to the uninterrupted same-seed run, for both the
   serving fabric (snapshot + tail replay) and the workflow executor
   (journaled re-execution with snapshot anchors). *)

module Codec = Everest_recovery.Codec
module Snapshot = Everest_recovery.Snapshot
module Journal = Everest_recovery.Journal
module Store = Everest_recovery.Store
module Fabric = Everest_serving.Fabric
module Workload = Everest_serving.Workload
module Faults = Everest_resilience.Faults
module Metrics = Everest_telemetry.Metrics
module Executor = Everest_workflow.Executor
module Checkpoint = Everest_workflow.Checkpoint
module Dag = Everest_workflow.Dag
module Scheduler = Everest_workflow.Scheduler
module Cluster = Everest_platform.Cluster

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let tmp_dir name =
  Filename.concat (Filename.get_temp_dir_name ()) ("everest-recovery-" ^ name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* ---- codec ---------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let w = Codec.writer () in
  Codec.int w 0;
  Codec.int w (-42);
  Codec.int w max_int;
  Codec.float w 0.0;
  Codec.float w (1.0 /. 3.0);
  Codec.float w (-1.7976931348623157e308);
  Codec.float w 5e-324;
  Codec.bool w true;
  Codec.bool w false;
  List.iter (Codec.str w)
    [ ""; "%"; "plain"; "a b"; "line\nbreak"; "\x00\xff\x7f~"; "100%" ];
  Codec.list w [ 1; 2; 3 ] ~item:Codec.int;
  Codec.assoc_floats w [ ("size", 1024.0); ("alpha", 0.5) ];
  let r = Codec.reader (Codec.contents w) in
  checki "int 0" 0 (Codec.r_int r);
  checki "int neg" (-42) (Codec.r_int r);
  checki "int max" max_int (Codec.r_int r);
  checkb "float 0" true (Codec.r_float r = 0.0);
  checkb "float third" true (Codec.r_float r = 1.0 /. 3.0);
  checkb "float -max" true (Codec.r_float r = -1.7976931348623157e308);
  checkb "float denormal" true (Codec.r_float r = 5e-324);
  checkb "bool t" true (Codec.r_bool r);
  checkb "bool f" false (Codec.r_bool r);
  List.iter
    (fun s -> checks "str" s (Codec.r_str r))
    [ ""; "%"; "plain"; "a b"; "line\nbreak"; "\x00\xff\x7f~"; "100%" ];
  checkb "list" true (Codec.r_list r ~item:Codec.r_int = [ 1; 2; 3 ]);
  checkb "assoc" true
    (Codec.r_assoc_floats r = [ ("size", 1024.0); ("alpha", 0.5) ]);
  checkb "at end" true (Codec.at_end r)

let test_codec_is_deterministic () =
  let enc () =
    let w = Codec.writer () in
    Codec.float w (Float.atan 1.0);
    Codec.str w "x%y z";
    Codec.contents w
  in
  checks "same bytes" (enc ()) (enc ())

let test_codec_rejects_garbage () =
  checkb "bad int" true
    (match Codec.r_int (Codec.reader "nope") with
    | exception Codec.Decode _ -> true
    | _ -> false);
  checkb "truncated" true
    (match
       let r = Codec.reader "5" in
       let _ = Codec.r_int r in
       Codec.r_int r
     with
    | exception Codec.Decode _ -> true
    | _ -> false)

(* ---- snapshot envelope ---------------------------------------------------- *)

let test_snapshot_roundtrip () =
  let body = "state body \n with % bytes \x00\xff" in
  match Snapshot.decode (Snapshot.encode body) with
  | Ok got -> checks "body back" body got
  | Error e -> Alcotest.fail (Snapshot.error_to_string e)

let test_snapshot_detects_bitflip () =
  let raw = Snapshot.encode "some serious state" in
  let b = Bytes.of_string raw in
  let off = Bytes.length b - 3 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  match Snapshot.decode (Bytes.to_string b) with
  | Error (Snapshot.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "bit-flip accepted"
  | Error e -> Alcotest.fail ("wrong error: " ^ Snapshot.error_to_string e)

let test_snapshot_detects_truncation () =
  let raw = Snapshot.encode "some serious state" in
  match Snapshot.decode (String.sub raw 0 (String.length raw - 5)) with
  | Error (Snapshot.Truncated _) -> ()
  | Ok _ -> Alcotest.fail "truncation accepted"
  | Error e -> Alcotest.fail ("wrong error: " ^ Snapshot.error_to_string e)

let test_snapshot_detects_version_skew () =
  let raw = Snapshot.encode "state" in
  let skewed =
    "EVEREST-SNAP v9"
    ^ String.sub raw 15 (String.length raw - 15)
  in
  match Snapshot.decode skewed with
  | Error (Snapshot.Version_skew { found = 9; expected = 1 }) -> ()
  | Ok _ -> Alcotest.fail "version skew accepted"
  | Error e -> Alcotest.fail ("wrong error: " ^ Snapshot.error_to_string e)

(* ---- journal -------------------------------------------------------------- *)

let test_journal_record_roundtrip () =
  let payload = "17 0x1.91eb851eb851fp+1 A 42" in
  match Journal.decode_record (String.trim (Journal.encode_record payload)) with
  | Some got -> checks "payload back" payload got
  | None -> Alcotest.fail "record did not decode"

let test_journal_heals_torn_tail () =
  let dir = tmp_dir "torn" in
  let store = Store.open_store ~fresh:true ~dir ~fingerprint:"fp" () in
  Store.write_snapshot store ~index:0 "state-zero";
  Store.append store "rec-one";
  Store.append store "rec-two";
  Store.close store;
  (* simulate a crash mid-write: a half-record with no checksum *)
  let seg = Filename.concat dir "journal-000000.ejrnl" in
  write_file seg (read_file seg ^ "rec-three #ab");
  let store = Store.open_store ~dir ~fingerprint:"fp" () in
  let plan = Store.plan_resume store in
  checkb "torn detected" true plan.Store.r_torn;
  checkb "valid prefix kept" true (plan.Store.r_tail = [ "rec-one"; "rec-two" ]);
  Store.append store "rec-three";
  Store.close store;
  (* after healing + append the segment reads back clean *)
  let seg2 = Journal.read_segment seg in
  checkb "healed" false seg2.Journal.sg_torn;
  checkb "records" true
    (seg2.Journal.sg_records = [ "rec-one"; "rec-two"; "rec-three" ])

(* ---- store ---------------------------------------------------------------- *)

let test_store_rejects_config_mismatch () =
  let dir = tmp_dir "fp" in
  let store = Store.open_store ~fresh:true ~dir ~fingerprint:"alpha" () in
  Store.close store;
  checkb "mismatch rejected" true
    (match Store.open_store ~dir ~fingerprint:"beta" () with
    | exception Store.Recovery_error (Store.Config_mismatch _) -> true
    | _ -> false);
  (* same fingerprint reopens fine *)
  Store.close (Store.open_store ~dir ~fingerprint:"alpha" ())

let test_store_no_snapshot () =
  let dir = tmp_dir "empty" in
  let store = Store.open_store ~fresh:true ~dir ~fingerprint:"fp" () in
  checkb "no snapshot" true
    (match Store.plan_resume store with
    | exception Store.Recovery_error Store.No_snapshot -> true
    | _ -> false);
  Store.close store

let test_store_falls_back_over_corrupt_snapshot () =
  let dir = tmp_dir "fallback" in
  let store = Store.open_store ~fresh:true ~dir ~fingerprint:"fp" () in
  Store.write_snapshot store ~index:0 "state-zero";
  Store.append store "a";
  Store.append store "b";
  Store.write_snapshot store ~index:1 "state-one";
  Store.append store "c";
  Store.close store;
  (* flip a body byte of the newest snapshot *)
  let snap1 = Filename.concat dir "snap-000001.esnap" in
  let b = Bytes.of_string (read_file snap1) in
  Bytes.set b (Bytes.length b - 2) 'X';
  write_file snap1 (Bytes.to_string b);
  let store = Store.open_store ~dir ~fingerprint:"fp" () in
  let plan = Store.plan_resume store in
  checki "fell back to 0" 0 plan.Store.r_index;
  checki "one fallback" 1 plan.Store.r_fallbacks;
  checks "anchor body" "state-zero" plan.Store.r_state;
  (* the tail re-replays both segments *)
  checkb "tail spans segments" true (plan.Store.r_tail = [ "a"; "b"; "c" ]);
  (* the next snapshot index clears the rejected one *)
  checki "next index" 2 plan.Store.r_next_snapshot_index;
  Store.close store

(* ---- fabric crash/restore ------------------------------------------------- *)

let tenants =
  [ Workload.open_tenant ~diurnal_amplitude:0.3
      ~features:(fun seq -> [ ("size", float_of_int (1024 + (64 * (seq mod 4)))) ])
      ~name:"acme" ~kernel:"mm" ~rate_rps:60.0 ();
    Workload.closed_tenant ~name:"globex" ~kernel:"mm" ~users:4 ~think_s:0.05 () ]

let horizon = 1.2

let fabric_config ~seed =
  { (Fabric.default_config ~n_shards:2) with
    Fabric.seed;
    faults = Faults.plan ~seed:5 ~transient_prob:0.05 ~fpga_transient_prob:0.1 () }

let render r =
  Fabric.render_log r ^ "\n" ^ Fabric.render_slos r ^ "\n"
  ^ Fabric.render_summary r

let fabric_run ?recovery config =
  let registry = Metrics.create_registry () in
  Fabric.run ~registry ?recovery config ~deploy:(Fabric.demo_deploy ())
    ~tenants ~horizon

(* Full run with recovery on; returns the rendering and the journal size. *)
let fabric_baseline ~dir config =
  let fp = Fabric.fingerprint config ~tenants ~horizon in
  let store = Store.open_store ~fresh:true ~dir ~fingerprint:fp () in
  let recovery = { Fabric.rv_store = store; rv_snapshot_every_s = 0.3 } in
  let r = fabric_run ~recovery config in
  let records = store.Store.records_written in
  Store.close store;
  (render r, records)

let fabric_crash_resume ~dir config ~after =
  let fp = Fabric.fingerprint config ~tenants ~horizon in
  let store = Store.open_store ~fresh:true ~dir ~fingerprint:fp () in
  Store.arm_crash store ~after_records:after;
  let recovery = { Fabric.rv_store = store; rv_snapshot_every_s = 0.3 } in
  (try
     ignore (fabric_run ~recovery config);
     Alcotest.fail "armed crash did not fire"
   with Journal.Crashed -> ());
  Store.close store;
  let store = Store.open_store ~dir ~fingerprint:fp () in
  let recovery = { Fabric.rv_store = store; rv_snapshot_every_s = 0.3 } in
  let registry = Metrics.create_registry () in
  let r, report =
    Fabric.resume ~registry ~recovery config ~deploy:(Fabric.demo_deploy ())
      ~tenants ~horizon
  in
  Store.close store;
  (render r, report)

let test_fabric_journaling_is_transparent () =
  let config = fabric_config ~seed:7 in
  let plain = render (fabric_run config) in
  let journaled, records = fabric_baseline ~dir:(tmp_dir "transparent") config in
  checks "recovery on/off identical" plain journaled;
  checkb "journal non-trivial" true (records > 100)

let test_fabric_crash_resume_byte_identical () =
  let config = fabric_config ~seed:7 in
  let base, records = fabric_baseline ~dir:(tmp_dir "fab-base") config in
  List.iter
    (fun after ->
      let resumed, report =
        fabric_crash_resume ~dir:(tmp_dir "fab-crash") config ~after
      in
      checks
        (Printf.sprintf "crash@%d byte-identical" after)
        base resumed;
      checkb "replayed tail" true (report.Fabric.rr_replayed >= 0);
      checkb "no fallbacks" true (report.Fabric.rr_fallbacks = 0))
    [ 1; records / 3; records - 1 ]

let prop_fabric_crash_point_irrelevant =
  QCheck.Test.make ~count:4
    ~name:"fabric: resume from any crash point is byte-identical"
    QCheck.(pair (int_range 1 1000) (int_range 0 1_000_000))
    (fun (seed, crash_raw) ->
      let config = fabric_config ~seed in
      let base, records = fabric_baseline ~dir:(tmp_dir "fab-qbase") config in
      QCheck.assume (records > 1);
      let after = 1 + (crash_raw mod (records - 1)) in
      let resumed, _ =
        fabric_crash_resume ~dir:(tmp_dir "fab-qcrash") config ~after
      in
      String.equal base resumed)

let newest_snap dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".esnap")
  |> List.sort compare |> List.rev |> List.hd |> Filename.concat dir

let corrupt_flip path =
  let b = Bytes.of_string (read_file path) in
  let off = Bytes.length b - 7 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
  write_file path (Bytes.to_string b)

let corrupt_truncate path =
  let s = read_file path in
  write_file path (String.sub s 0 (String.length s / 2))

let corrupt_version path =
  let s = read_file path in
  write_file path ("EVEREST-SNAP v9" ^ String.sub s 15 (String.length s - 15))

let test_fabric_falls_back_over_corrupt_snapshot () =
  let config = fabric_config ~seed:11 in
  let fp = Fabric.fingerprint config ~tenants ~horizon in
  List.iter
    (fun (kind, corrupt) ->
      let dir = tmp_dir "fab-corrupt" in
      let base, records = fabric_baseline ~dir config in
      checkb "has snapshots beyond genesis" true (records > 0);
      corrupt (newest_snap dir);
      let store = Store.open_store ~dir ~fingerprint:fp () in
      let recovery = { Fabric.rv_store = store; rv_snapshot_every_s = 0.3 } in
      let registry = Metrics.create_registry () in
      let r, report =
        Fabric.resume ~registry ~recovery config
          ~deploy:(Fabric.demo_deploy ()) ~tenants ~horizon
      in
      Store.close store;
      checks (kind ^ ": still byte-identical") base (render r);
      checkb (kind ^ ": fell back") true (report.Fabric.rr_fallbacks >= 1);
      checkb (kind ^ ": reported why") true (report.Fabric.rr_skipped <> []))
    [ ("bit-flip", corrupt_flip); ("truncation", corrupt_truncate);
      ("version-skew", corrupt_version) ]

let test_fabric_all_snapshots_corrupt () =
  let config = fabric_config ~seed:13 in
  let fp = Fabric.fingerprint config ~tenants ~horizon in
  let dir = tmp_dir "fab-allcorrupt" in
  let _ = fabric_baseline ~dir config in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".esnap")
  |> List.iter (fun f -> corrupt_flip (Filename.concat dir f));
  let store = Store.open_store ~dir ~fingerprint:fp () in
  let recovery = { Fabric.rv_store = store; rv_snapshot_every_s = 0.3 } in
  checkb "typed refusal" true
    (match
       Fabric.resume ~recovery config ~deploy:(Fabric.demo_deploy ()) ~tenants
         ~horizon
     with
    | exception Store.Recovery_error Store.No_snapshot -> true
    | _ -> false);
  Store.close store

(* ---- executor crash/restore ----------------------------------------------- *)

let exec_faults =
  Faults.plan ~seed:3
    ~windows:[ { Faults.w_node = "p9"; w_down = 0.004; w_up = Some 0.02 } ]
    ~transient_prob:0.02 ()

let render_stats (s : Executor.stats) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "makespan=%.9f retries=%d timeouts=%d spec=%d recomp=%d bytes=%d xfers=%d\n"
       s.Executor.makespan s.Executor.retries s.Executor.timeouts
       s.Executor.speculative s.Executor.recomputed s.Executor.bytes_moved
       s.Executor.transfers);
  Array.iteri
    (fun i f -> Buffer.add_string buf (Printf.sprintf "%d=%.9f\n" i f))
    s.Executor.task_finish;
  List.iter
    (fun (n, k) -> Buffer.add_string buf (Printf.sprintf "%s:%d\n" n k))
    s.Executor.per_node_tasks;
  Buffer.contents buf

let exec_run ~seed ?checkpoint () =
  let d = Dag.layered ~seed ~layers:5 ~width:6 ~flops:1e9 ~bytes:1e6 () in
  let c = Cluster.everest_demonstrator () in
  let plan = Scheduler.heft c d in
  let registry = Metrics.create_registry () in
  Executor.execute ~faults:exec_faults ~registry ?checkpoint c plan

let test_executor_crash_resume_byte_identical () =
  let dir = tmp_dir "exec-base" in
  let store = Store.open_store ~fresh:true ~dir ~fingerprint:"exec" () in
  let base =
    render_stats (exec_run ~seed:5 ~checkpoint:(Checkpoint.create ~store ~every:7) ())
  in
  let records = store.Store.records_written in
  Store.close store;
  checki "one record per task" 30 records;
  List.iter
    (fun after ->
      let dir = tmp_dir "exec-crash" in
      let store = Store.open_store ~fresh:true ~dir ~fingerprint:"exec" () in
      Store.arm_crash store ~after_records:after;
      (try
         ignore (exec_run ~seed:5 ~checkpoint:(Checkpoint.create ~store ~every:7) ());
         Alcotest.fail "armed crash did not fire"
       with Journal.Crashed -> ());
      Store.close store;
      let store = Store.open_store ~dir ~fingerprint:"exec" () in
      let ck = Checkpoint.resume ~store ~every:7 in
      let resumed = render_stats (exec_run ~seed:5 ~checkpoint:ck ()) in
      Store.close store;
      checks (Printf.sprintf "crash@%d byte-identical" after) base resumed;
      checki
        (Printf.sprintf "crash@%d replayed whole prefix" after)
        after (Checkpoint.replayed ck))
    [ 1; 14; records - 1 ]

let prop_executor_crash_point_irrelevant =
  QCheck.Test.make ~count:6
    ~name:"executor: resume from any crash point is byte-identical"
    QCheck.(pair (int_range 1 1000) (int_range 0 1_000_000))
    (fun (seed, crash_raw) ->
      let dir = tmp_dir "exec-qbase" in
      let store = Store.open_store ~fresh:true ~dir ~fingerprint:"exec" () in
      let base =
        render_stats
          (exec_run ~seed ~checkpoint:(Checkpoint.create ~store ~every:5) ())
      in
      let records = store.Store.records_written in
      Store.close store;
      QCheck.assume (records > 1);
      let after = 1 + (crash_raw mod (records - 1)) in
      let dir = tmp_dir "exec-qcrash" in
      let store = Store.open_store ~fresh:true ~dir ~fingerprint:"exec" () in
      Store.arm_crash store ~after_records:after;
      (try ignore (exec_run ~seed ~checkpoint:(Checkpoint.create ~store ~every:5) ())
       with Journal.Crashed -> ());
      Store.close store;
      let store = Store.open_store ~dir ~fingerprint:"exec" () in
      let ck = Checkpoint.resume ~store ~every:5 in
      let resumed = render_stats (exec_run ~seed ~checkpoint:ck ()) in
      Store.close store;
      String.equal base resumed)

let test_executor_replay_detects_divergence () =
  (* resume under a different workload: replay must fault, not produce a
     quietly different report *)
  let dir = tmp_dir "exec-diverge" in
  let store = Store.open_store ~fresh:true ~dir ~fingerprint:"exec" () in
  Store.arm_crash store ~after_records:10;
  (try ignore (exec_run ~seed:5 ~checkpoint:(Checkpoint.create ~store ~every:7) ())
   with Journal.Crashed -> ());
  Store.close store;
  let store = Store.open_store ~dir ~fingerprint:"exec" () in
  let ck = Checkpoint.resume ~store ~every:7 in
  checkb "divergence detected" true
    (match exec_run ~seed:6 ~checkpoint:ck () with
    | exception Store.Recovery_error (Store.Replay_divergence _) -> true
    | _ -> false);
  Store.close store

let () =
  Alcotest.run "everest_recovery"
    [ ( "codec",
        [ Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_codec_is_deterministic;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage
        ] );
      ( "snapshot",
        [ Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "bit-flip" `Quick test_snapshot_detects_bitflip;
          Alcotest.test_case "truncation" `Quick test_snapshot_detects_truncation;
          Alcotest.test_case "version skew" `Quick
            test_snapshot_detects_version_skew ] );
      ( "journal",
        [ Alcotest.test_case "record round-trip" `Quick
            test_journal_record_roundtrip;
          Alcotest.test_case "torn tail healed" `Quick
            test_journal_heals_torn_tail ] );
      ( "store",
        [ Alcotest.test_case "config mismatch" `Quick
            test_store_rejects_config_mismatch;
          Alcotest.test_case "no snapshot" `Quick test_store_no_snapshot;
          Alcotest.test_case "snapshot fallback" `Quick
            test_store_falls_back_over_corrupt_snapshot ] );
      ( "fabric",
        [ Alcotest.test_case "journaling is transparent" `Quick
            test_fabric_journaling_is_transparent;
          Alcotest.test_case "crash/resume byte-identical" `Quick
            test_fabric_crash_resume_byte_identical;
          Alcotest.test_case "corrupt snapshot fallback" `Quick
            test_fabric_falls_back_over_corrupt_snapshot;
          Alcotest.test_case "all snapshots corrupt" `Quick
            test_fabric_all_snapshots_corrupt;
          QCheck_alcotest.to_alcotest prop_fabric_crash_point_irrelevant ] );
      ( "executor",
        [ Alcotest.test_case "crash/resume byte-identical" `Quick
            test_executor_crash_resume_byte_identical;
          Alcotest.test_case "replay detects divergence" `Quick
            test_executor_replay_detects_divergence;
          QCheck_alcotest.to_alcotest prop_executor_crash_point_irrelevant ] )
    ]
