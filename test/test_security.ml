(* Tests for everest_security: known-answer vectors for AES/SHA/HMAC, AEAD
   behaviour, information-flow tracking and anomaly monitors. *)

open Everest_security
module Ir = Everest_ir.Ir
module Types = Everest_ir.Types
module Sec = Everest_ir.Dialect_sec

let () = Everest_ir.Registry.register_all ()

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---- AES-128 ----------------------------------------------------------------- *)

let test_aes_fips197 () =
  let key = Aes.of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = Aes.of_hex "00112233445566778899aabbccddeeff" in
  let w = Aes.key_of_bytes key in
  let ct = Aes.encrypt_block w pt in
  checks "FIPS-197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (Aes.to_hex ct);
  checks "decrypt inverts" (Aes.to_hex pt) (Aes.to_hex (Aes.decrypt_block w ct))

let test_aes_sp800_38a () =
  let w = Aes.key_of_bytes (Aes.of_hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let ct = Aes.encrypt_block w (Aes.of_hex "6bc1bee22e409f96e93d7e117393172a") in
  checks "SP800-38A ECB block 1" "3ad77bb40d7a3660a89ecaf32466ef97" (Aes.to_hex ct)

let test_aes_ctr_roundtrip () =
  let w = Aes.key_of_string "0123456789abcdef" in
  let nonce = Bytes.of_string "\x00\x01\x02\x03\x04\x05\x06\x07" in
  let msg = Bytes.of_string "EVEREST moves computation closer to the data." in
  let ct = Aes.ctr_transform w ~nonce msg in
  checkb "ciphertext differs" true (not (Bytes.equal ct msg));
  checkb "roundtrip" true (Bytes.equal msg (Aes.ctr_transform w ~nonce ct))

let prop_ctr_roundtrip =
  QCheck.Test.make ~count:100 ~name:"AES-CTR roundtrips arbitrary data"
    QCheck.(string_of_size Gen.(int_range 0 200))
    (fun s ->
      let w = Aes.key_of_string "kkkkkkkkkkkkkkkk" in
      let nonce = Bytes.make 8 '\x42' in
      let data = Bytes.of_string s in
      Bytes.equal data (Aes.ctr_transform w ~nonce (Aes.ctr_transform w ~nonce data)))

(* ---- SHA-256 ----------------------------------------------------------------- *)

let test_sha256_vectors () =
  checks "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_hex "");
  checks "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_hex "abc");
  checks "two-block message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_long () =
  (* one million 'a' characters, FIPS 180-4 vector *)
  let s = String.make 1_000_000 'a' in
  checks "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex s)

(* ---- HMAC --------------------------------------------------------------------- *)

let test_hmac_rfc4231 () =
  checks "RFC 4231 TC2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.hmac_hex ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_verify () =
  let key = Bytes.of_string "secret" in
  let msg = Bytes.of_string "payload" in
  let tag = Hmac.hmac_sha256 ~key msg in
  checkb "valid tag" true (Hmac.verify ~key ~msg ~tag);
  let bad = Bytes.copy tag in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
  checkb "tampered tag" false (Hmac.verify ~key ~msg ~tag:bad)

(* ---- AEAD --------------------------------------------------------------------- *)

let test_seal_open () =
  let k = Cipher.derive_keys "master-password" in
  let msg = Bytes.of_string "wind farm production forecast: 41.7 MWh" in
  let s = Cipher.seal k msg in
  (match Cipher.open_ k s with
  | Ok pt -> checkb "opens" true (Bytes.equal pt msg)
  | Error _ -> Alcotest.fail "seal/open failed");
  (* tamper with the ciphertext *)
  let ct' = Bytes.copy s.Cipher.ct in
  Bytes.set ct' 3 'X';
  (match Cipher.open_ k { s with Cipher.ct = ct' } with
  | Error Cipher.Bad_tag -> ()
  | Ok _ -> Alcotest.fail "tamper must be detected");
  (* nonces are unique *)
  let s2 = Cipher.seal k msg in
  checkb "fresh nonce" true (not (Bytes.equal s.Cipher.nonce s2.Cipher.nonce));
  checkb "same msg, different ct" true (not (Bytes.equal s.Cipher.ct s2.Cipher.ct))

let test_crypto_cost_model () =
  let sw = Cipher.encryption_time_s ~bytes:1_000_000 ~accelerated:false ~clock_hz:2.5e9 in
  let hw = Cipher.encryption_time_s ~bytes:1_000_000 ~accelerated:true ~clock_hz:2.5e8 in
  checkb "acceleration wins on bulk data" true (hw < sw)

(* ---- IFT ---------------------------------------------------------------------- *)

let test_ift_detects_leak () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 8 ]) in
  let cls = Sec.classify ctx x Sec.Secret in
  let sink = Everest_ir.Dialect_df.sink ctx "out" (Ir.result cls) in
  let f = Ir.func "leak" [ x ] [] [ cls; sink; Everest_ir.Dialect_func.return ctx [] ] in
  let vs = Ift.analyze_func f in
  checki "one violation" 1 (List.length vs);
  checkb "secret source" true
    ((List.hd vs).Ift.source_level = Sec.Secret)

let test_ift_encrypt_declassifies () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 8 ]) in
  let key = Ir.fresh_value ctx Types.f64 in
  let cls = Sec.classify ctx x Sec.Secret in
  let enc = Sec.encrypt ctx (Ir.result cls) key in
  let sink = Everest_ir.Dialect_df.sink ctx "out" (Ir.result enc) in
  let f =
    Ir.func "ok" [ x; key ] [] [ cls; enc; sink; Everest_ir.Dialect_func.return ctx [] ]
  in
  checki "no violation after encryption" 0 (List.length (Ift.analyze_func f))

let test_ift_cleared_sink () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 8 ]) in
  let cls = Sec.classify ctx x Sec.Confidential in
  let sink =
    Everest_ir.Dialect_df.sink ctx "vault" (Ir.result cls)
      ~attrs:[ ("everest.security", Everest_ir.Attr.str "secret") ]
  in
  let f = Ir.func "ok" [ x ] [] [ cls; sink; Everest_ir.Dialect_func.return ctx [] ] in
  checki "cleared sink accepts confidential" 0 (List.length (Ift.analyze_func f))

let test_ift_propagates_through_compute () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 4; 4 ]) in
  let cls = Sec.classify ctx x Sec.Internal in
  let mm = Everest_ir.Dialect_tensor.matmul ctx (Ir.result cls) (Ir.result cls) in
  let sink = Everest_ir.Dialect_df.sink ctx "out" (Ir.result mm) in
  let f = Ir.func "flow" [ x ] [] [ cls; mm; sink; Everest_ir.Dialect_func.return ctx [] ] in
  let vs = Ift.analyze_func f in
  checki "internal level flows through matmul" 1 (List.length vs);
  checkb "level preserved" true ((List.hd vs).Ift.source_level = Sec.Internal)

let test_ift_decrypt_reclassifies () =
  (* encrypt declassifies, but decrypting brings the data back to
     Confidential: sinking the plaintext publicly must be flagged *)
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 8 ]) in
  let key = Ir.fresh_value ctx Types.f64 in
  let cls = Sec.classify ctx x Sec.Secret in
  let enc = Sec.encrypt ctx (Ir.result cls) key in
  let dec = Sec.decrypt ctx (Ir.result enc) key in
  let sink = Everest_ir.Dialect_df.sink ctx "out" (Ir.result dec) in
  let f =
    Ir.func "roundtrip" [ x; key ] []
      [ cls; enc; dec; sink; Everest_ir.Dialect_func.return ctx [] ]
  in
  let vs = Ift.analyze_func f in
  checki "plaintext leak flagged" 1 (List.length vs);
  checkb "confidential after decrypt" true
    ((List.hd vs).Ift.source_level = Sec.Confidential)

let test_ift_taint_check () =
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 8 ]) in
  (* tainted data hitting an uncleared check point is a violation *)
  let t1 = Sec.taint ctx x in
  let chk1 = Sec.check ctx (Ir.result t1) in
  let f1 =
    Ir.func "t1" [ x ] [] [ t1; chk1; Everest_ir.Dialect_func.return ctx [] ]
  in
  let vs = Ift.analyze_func f1 in
  checki "uncleared check fires" 1 (List.length vs);
  checkb "check is the sink" true
    (String.equal (List.hd vs).Ift.op_name "sec.check");
  (* a check point cleared for Confidential accepts the tainted data *)
  let ctx = Ir.ctx () in
  let y = Ir.fresh_value ctx (Types.tensor Types.F64 [ 8 ]) in
  let t2 = Sec.taint ctx y in
  let chk2 =
    Ir.with_attr "everest.security" (Everest_ir.Attr.str "confidential")
      (Sec.check ctx (Ir.result t2))
  in
  let f2 =
    Ir.func "t2" [ y ] [] [ t2; chk2; Everest_ir.Dialect_func.return ctx [] ]
  in
  checki "cleared check passes" 0 (List.length (Ift.analyze_func f2))

let test_ift_region_yield_join () =
  (* a value classified Secret inside one scf.if arm keeps its level when
     it flows out through scf.yield and into a public sink *)
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 8 ]) in
  let cond = Ir.fresh_value ctx Types.i1 in
  let iff =
    Everest_ir.Dialect_scf.if_ ~ret_types:[ Types.tensor Types.F64 [ 8 ] ] ctx
      cond
      (fun ctx ->
        let cls = Sec.classify ctx x Sec.Secret in
        ([ cls ], [ Ir.result cls ]))
      (fun _ctx -> ([], [ x ]))
  in
  let sink = Everest_ir.Dialect_df.sink ctx "out" (Ir.result iff) in
  let f =
    Ir.func "branchy" [ x; cond ] []
      [ iff; sink; Everest_ir.Dialect_func.return ctx [] ]
  in
  let vs = Ift.analyze_func f in
  checki "secret escapes through yield" 1 (List.length vs);
  checkb "secret source" true ((List.hd vs).Ift.source_level = Sec.Secret)

let test_ift_fattr_arg_levels () =
  (* arguments of a function annotated Security Secret are analyzed at
     that level without a caller-supplied arg_levels list *)
  let ctx = Ir.ctx () in
  let x = Ir.fresh_value ctx (Types.tensor Types.F64 [ 8 ]) in
  let sink = Everest_ir.Dialect_df.sink ctx "out" x in
  let f =
    Ir.func
      ~attrs:[ ("everest.security", Everest_ir.Attr.str "secret") ]
      "annotated" [ x ] []
      [ sink; Everest_ir.Dialect_func.return ctx [] ]
  in
  let vs = Ift.analyze_func f in
  checki "annotated arg leaks" 1 (List.length vs);
  checkb "secret from the fattr" true
    ((List.hd vs).Ift.source_level = Sec.Secret);
  (* positional arg_levels still wins over the attribute *)
  checki "positional override" 0
    (List.length (Ift.analyze_func ~arg_levels:[ Sec.Public ] f))

(* ---- monitors ------------------------------------------------------------------- *)

let test_timing_monitor () =
  let m = Monitor.timing ~threshold_sigma:4.0 () in
  (* train on ~N(10, 0.5) *)
  for i = 0 to 199 do
    Monitor.timing_train m (10.0 +. (0.5 *. sin (float_of_int i)))
  done;
  Monitor.timing_finalize m;
  checkb "normal sample passes" true (Monitor.timing_check m 10.2 = Monitor.Normal);
  checkb "outlier flagged" true
    (match Monitor.timing_check m 25.0 with Monitor.Anomalous _ -> true | _ -> false)

let test_range_monitor () =
  let m = Monitor.range ~margin:0.1 () in
  List.iter (Monitor.range_train m) [ 0.0; 1.0; 2.0; 5.0 ];
  Monitor.range_finalize m;
  checkb "in range" true (Monitor.range_check m 4.9 = Monitor.Normal);
  checkb "slack respected" true (Monitor.range_check m 5.3 = Monitor.Normal);
  checkb "far outlier flagged" true
    (match Monitor.range_check m 50.0 with Monitor.Anomalous _ -> true | _ -> false)

let test_access_monitor () =
  let m = Monitor.access ~burst_threshold:4 () in
  (* train: stride-1 scan *)
  for a = 0 to 63 do Monitor.access_train m a done;
  Monitor.access_finalize m;
  (* normal stride-1 accesses *)
  let all_normal = ref true in
  for a = 100 to 120 do
    if Monitor.access_check m a <> Monitor.Normal then all_normal := false
  done;
  checkb "sequential ok" true !all_normal;
  (* attack: random-looking large strides *)
  let fired = ref false in
  List.iter
    (fun a ->
      match Monitor.access_check m a with
      | Monitor.Anomalous _ -> fired := true
      | Monitor.Normal -> ())
    [ 1000; 13; 777; 20000; 5; 91234; 77; 4242 ];
  checkb "scanning detected" true !fired

let test_size_monitor () =
  let m = Monitor.size ~factor:3.0 () in
  List.iter (Monitor.size_train m) [ 100; 110; 95; 105; 98 ];
  Monitor.size_finalize m;
  checkb "typical ok" true (Monitor.size_check m 120 = Monitor.Normal);
  checkb "huge flagged" true
    (match Monitor.size_check m 1000 with Monitor.Anomalous _ -> true | _ -> false)

let test_policy () =
  let e = Monitor.classify_event "access" "burst" in
  let actions = Monitor.policy e in
  checkb "quarantines on scanning" true
    (List.mem Monitor.Quarantine_source actions);
  let e2 = Monitor.classify_event "timing" "z" in
  checkb "encrypts on side-channel suspicion" true
    (List.mem Monitor.Enable_encryption (Monitor.policy e2))

let prop_block_roundtrip =
  QCheck.Test.make ~count:100 ~name:"AES block decrypt inverts encrypt"
    QCheck.(pair (string_of_size (Gen.return 16)) (string_of_size (Gen.return 16)))
    (fun (k, blk) ->
      let w = Aes.key_of_string k in
      let b = Bytes.of_string blk in
      Bytes.equal b (Aes.decrypt_block w (Aes.encrypt_block w b)))

let prop_sha256_shape =
  QCheck.Test.make ~count:100 ~name:"SHA-256 digests are 32 bytes, deterministic"
    QCheck.(string_of_size Gen.(int_range 0 300))
    (fun s ->
      let d1 = Sha256.digest_string s and d2 = Sha256.digest_string s in
      Bytes.length d1 = 32 && Bytes.equal d1 d2)

let prop_hmac_distinguishes =
  QCheck.Test.make ~count:60 ~name:"HMAC differs on different messages"
    QCheck.(pair (string_of_size Gen.(int_range 1 50)) (string_of_size Gen.(int_range 1 50)))
    (fun (a, b) ->
      QCheck.assume (not (String.equal a b));
      let key = Bytes.of_string "k" in
      not
        (Bytes.equal
           (Hmac.hmac_sha256 ~key (Bytes.of_string a))
           (Hmac.hmac_sha256 ~key (Bytes.of_string b))))

let () =
  Alcotest.run "everest_security"
    [
      ( "aes",
        [ Alcotest.test_case "FIPS-197" `Quick test_aes_fips197;
          Alcotest.test_case "SP800-38A" `Quick test_aes_sp800_38a;
          Alcotest.test_case "CTR roundtrip" `Quick test_aes_ctr_roundtrip;
          QCheck_alcotest.to_alcotest prop_ctr_roundtrip;
          QCheck_alcotest.to_alcotest prop_block_roundtrip ] );
      ( "sha256",
        [ Alcotest.test_case "vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "long input" `Slow test_sha256_long;
          QCheck_alcotest.to_alcotest prop_sha256_shape ] );
      ( "hmac",
        [ Alcotest.test_case "RFC 4231" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          QCheck_alcotest.to_alcotest prop_hmac_distinguishes ] );
      ( "aead",
        [ Alcotest.test_case "seal/open" `Quick test_seal_open;
          Alcotest.test_case "cost model" `Quick test_crypto_cost_model ] );
      ( "ift",
        [ Alcotest.test_case "leak detected" `Quick test_ift_detects_leak;
          Alcotest.test_case "encrypt declassifies" `Quick test_ift_encrypt_declassifies;
          Alcotest.test_case "cleared sink" `Quick test_ift_cleared_sink;
          Alcotest.test_case "flows through compute" `Quick test_ift_propagates_through_compute;
          Alcotest.test_case "decrypt reclassifies" `Quick test_ift_decrypt_reclassifies;
          Alcotest.test_case "taint/check" `Quick test_ift_taint_check;
          Alcotest.test_case "region yield join" `Quick test_ift_region_yield_join;
          Alcotest.test_case "fattr arg levels" `Quick test_ift_fattr_arg_levels ] );
      ( "monitors",
        [ Alcotest.test_case "timing" `Quick test_timing_monitor;
          Alcotest.test_case "range" `Quick test_range_monitor;
          Alcotest.test_case "access pattern" `Quick test_access_monitor;
          Alcotest.test_case "size" `Quick test_size_monitor;
          Alcotest.test_case "policy" `Quick test_policy ] );
    ]
