(* Tests for everest_telemetry: span nesting and the bounded sink, histogram
   quantiles against known distributions, Chrome-trace JSON well-formedness,
   metrics-registry label handling, and closed-loop runs (executor and
   orchestrator) producing traces that agree with the stats. *)

open Everest_telemetry
open Everest_platform
open Everest_workflow
open Everest_runtime

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---- tracing ----------------------------------------------------------------- *)

let test_span_nesting () =
  let clk = Clock.manual () in
  let t = Trace.create ~clock:(Clock.of_manual clk) () in
  Trace.with_span t "outer" (fun outer ->
      Clock.advance clk 1.0;
      Trace.with_span t "inner" (fun _ ->
          Clock.advance clk 2.0;
          Trace.with_span t "leaf" (fun _ -> Clock.advance clk 0.5));
      Clock.advance clk 1.0;
      Trace.set_attr outer "k" (Trace.S "v"));
  checki "three spans" 3 (Trace.span_count t);
  let outer = Option.get (Trace.find t "outer") in
  let inner = Option.get (Trace.find t "inner") in
  let leaf = Option.get (Trace.find t "leaf") in
  checkb "outer is root" true (outer.Trace.parent = None);
  checkb "inner under outer" true (inner.Trace.parent = Some outer.Trace.id);
  checkb "leaf under inner" true (leaf.Trace.parent = Some inner.Trace.id);
  checkb "durations nest" true
    (Trace.duration leaf < Trace.duration inner
    && Trace.duration inner < Trace.duration outer);
  Alcotest.check (Alcotest.float 1e-9) "outer duration" 4.5
    (Trace.duration outer);
  checks "attr recorded" "v" (Option.get (Trace.attr_string outer "k"))

let test_explicit_parent_across_callbacks () =
  (* asynchronous nesting: the parent is closed-over, not on the stack *)
  let t = Trace.create ~clock:(fun () -> 0.0) () in
  let task = Trace.start t "task" in
  let xfer = Trace.start t ~parent:task.Trace.id "xfer" in
  Trace.finish t xfer;
  Trace.finish t task;
  checkb "explicit parent" true (xfer.Trace.parent = Some task.Trace.id);
  checki "both recorded" 2 (Trace.span_count t)

let test_bounded_sink () =
  let t = Trace.create ~capacity:10 ~clock:(fun () -> 0.0) () in
  for i = 0 to 24 do
    Trace.finish t (Trace.start t (Printf.sprintf "s%d" i))
  done;
  checki "capacity respected" 10 (Trace.span_count t);
  checki "overflow counted" 15 (Trace.dropped t);
  checki "listed = capacity" 10 (List.length (Trace.spans t))

let test_pooled_sink_views () =
  (* the pooled array sink must agree with both list views, in the right
     orders, and survive growth past the initial pool size *)
  let clock = ref 0.0 in
  let t = Trace.create ~clock:(fun () -> !clock) () in
  let n = 1000 in
  for i = 0 to n - 1 do
    clock := float_of_int i;
    Trace.finish t (Trace.start t (Printf.sprintf "s%d" i))
  done;
  checki "count" n (Trace.span_count t);
  let arr = Trace.to_array t in
  checki "array size" n (Array.length arr);
  checkb "array in start order" true
    (Array.for_all (fun i -> arr.(i).Trace.id = i) (Array.init n Fun.id));
  checkb "spans = array order" true
    (List.map (fun s -> s.Trace.id) (Trace.spans t)
    = Array.to_list (Array.map (fun s -> s.Trace.id) arr));
  checkb "spans_rev is newest first" true
    (List.map (fun s -> s.Trace.id) (Trace.spans_rev t)
    = List.rev (List.init n Fun.id));
  let seen = ref 0 in
  Trace.iter t (fun s ->
      if s.Trace.id = !seen then incr seen);
  checki "iter walks start order" n !seen;
  Trace.reset t;
  checki "reset empties" 0 (Trace.span_count t);
  checki "reset drops views" 0 (Array.length (Trace.to_array t));
  (* ids restart: new generation *)
  let s = Trace.start t "fresh" in
  checki "ids restart" 0 s.Trace.id

let test_noop_tracer_records_nothing () =
  Trace.with_span Trace.noop "x" (fun _ -> ());
  checki "noop stays empty" 0 (Trace.span_count Trace.noop);
  checkb "probe default disabled" false (Probe.enabled ())

(* ---- histogram quantiles ------------------------------------------------------ *)

let test_histogram_uniform () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r "lat" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  checki "count" 1000 (Metrics.hist_count h);
  Alcotest.check (Alcotest.float 1e-6) "sum" 500500.0 (Metrics.hist_sum h);
  Alcotest.check (Alcotest.float 1e-6) "mean" 500.5 (Metrics.hist_mean h);
  (* log-scale buckets at ratio 10^0.1: estimates within ~30% *)
  let within q lo hi =
    let v = Metrics.quantile h q in
    checkb (Printf.sprintf "p%02.0f=%g in [%g,%g]" (q *. 100.) v lo hi) true
      (v >= lo && v <= hi)
  in
  within 0.5 380.0 650.0;
  within 0.9 700.0 1100.0;
  within 0.99 850.0 1150.0

let test_histogram_constant () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r "c" in
  for _ = 1 to 500 do
    Metrics.observe h 0.004
  done;
  List.iter
    (fun q ->
      let v = Metrics.quantile h q in
      checkb
        (Printf.sprintf "constant p%g=%g within bucket" q v)
        true
        (v >= 0.004 /. 1.3 && v <= 0.004 *. 1.3))
    [ 0.5; 0.9; 0.99 ];
  checkb "max clamps estimate" true (Metrics.quantile h 1.0 <= 0.004 +. 1e-12)

let test_histogram_bimodal () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r "b" in
  for _ = 1 to 90 do Metrics.observe h 0.001 done;
  for _ = 1 to 10 do Metrics.observe h 1.0 done;
  let p50 = Metrics.quantile h 0.5 and p99 = Metrics.quantile h 0.99 in
  checkb "p50 in low mode" true (p50 < 0.01);
  checkb "p99 in high mode" true (p99 > 0.5)

(* ---- metrics registry --------------------------------------------------------- *)

let test_registry_labels () =
  let r = Metrics.create_registry () in
  let a = Metrics.counter ~registry:r ~labels:[ ("node", "p9") ] "tasks" in
  let b = Metrics.counter ~registry:r ~labels:[ ("node", "cf0") ] "tasks" in
  Metrics.inc a;
  Metrics.inc a;
  Metrics.inc b;
  checkb "distinct label sets are distinct cells" true
    (Metrics.counter_value a = 2.0 && Metrics.counter_value b = 1.0);
  (* identity is order-insensitive on label keys *)
  let c1 =
    Metrics.counter ~registry:r ~labels:[ ("x", "1"); ("y", "2") ] "multi"
  in
  Metrics.inc c1;
  let c2 =
    Metrics.counter ~registry:r ~labels:[ ("y", "2"); ("x", "1") ] "multi"
  in
  Metrics.inc c2;
  Alcotest.check (Alcotest.float 0.0) "same cell" 2.0
    (Metrics.counter_value c1);
  (* same name + labels as a different kind must be rejected *)
  (match Metrics.gauge ~registry:r ~labels:[ ("node", "p9") ] "tasks" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must be rejected");
  (* invalid names rejected *)
  (match Metrics.counter ~registry:r "bad name!" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid name must be rejected");
  (* counters never go down *)
  match Metrics.inc ~by:(-1.0) a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative increments must be rejected"

let test_render_formats () =
  let r = Metrics.create_registry () in
  Metrics.inc ~by:3.0 (Metrics.counter ~registry:r ~labels:[ ("w", "d") ] "t_total");
  Metrics.set (Metrics.gauge ~registry:r "g") 1.5;
  Metrics.observe (Metrics.histogram ~registry:r "h_s") 0.25;
  let text = Metrics.render_text r in
  checkb "text has counter" true
    (Astring.String.is_infix ~affix:"t_total{w=\"d\"} 3" text
     || Astring.String.is_infix ~affix:"t_total" text);
  let prom = Metrics.render_prometheus r in
  List.iter
    (fun affix ->
      checkb ("prom contains " ^ affix) true
        (Astring.String.is_infix ~affix prom))
    [ "# TYPE t_total counter"; "# TYPE g gauge"; "# TYPE h_s histogram";
      "h_s_count 1"; "h_s_sum 0.25"; "le=\"+Inf\"" ]

(* ---- chrome trace JSON well-formedness ----------------------------------------- *)

(* A minimal JSON reader: enough to verify the exporter emits valid JSON
   with the trace-event structure, without a json dependency. *)
module Json = struct
  type t =
    | Null | Bool of bool | Num of float | Str of string
    | Arr of t list | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail m = raise (Bad (Printf.sprintf "%s at %d" m !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (peek () = ' ' || peek () = '\n' || peek () = '\t'
                      || peek () = '\r')
      then (advance (); skip_ws ())
    in
    let expect c =
      if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
    in
    let literal lit v =
      if !pos + String.length lit <= n
         && String.sub s !pos (String.length lit) = lit
      then (pos := !pos + String.length lit; v)
      else fail ("expected " ^ lit)
    in
    let string_ () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match peek () with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              (match peek () with
              | '"' -> Buffer.add_char b '"'; advance ()
              | '\\' -> Buffer.add_char b '\\'; advance ()
              | '/' -> Buffer.add_char b '/'; advance ()
              | 'n' -> Buffer.add_char b '\n'; advance ()
              | 't' -> Buffer.add_char b '\t'; advance ()
              | 'r' -> Buffer.add_char b '\r'; advance ()
              | 'b' | 'f' -> advance ()
              | 'u' ->
                  advance ();
                  for _ = 1 to 4 do
                    (match peek () with
                    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
                    | _ -> fail "bad \\u escape")
                  done
              | _ -> fail "bad escape");
              go ()
          | c -> Buffer.add_char b c; advance (); go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
        || c = 'E'
      in
      while !pos < n && num_char (peek ()) do advance () done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (advance (); Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = string_ () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); members ((k, v) :: acc)
              | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or }"
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (advance (); Arr [])
          else
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); elements (v :: acc)
              | ']' -> advance (); Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            elements []
      | '"' -> Str (string_ ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> Num (number ())
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

let test_chrome_trace_wellformed () =
  let clk = Clock.manual () in
  let t = Trace.create ~clock:(Clock.of_manual clk) () in
  Trace.name_track t 1 "node \"p9\"";
  Trace.with_span t ~attrs:[ ("escaped", Trace.S "a\"b\\c\nd") ]
    "outer" (fun _ ->
      Clock.advance clk 0.5;
      Trace.with_span t "in,ner" (fun s ->
          Trace.set_attr s "bytes" (Trace.I 4096);
          Trace.set_attr s "ratio" (Trace.F 0.5);
          Trace.set_attr s "ok" (Trace.B true);
          Clock.advance clk 0.25));
  let js = Chrome_trace.to_string ~process_name:"exec" t in
  let parsed =
    match Json.parse js with
    | v -> v
    | exception Json.Bad m -> Alcotest.failf "invalid JSON: %s" m
  in
  let events =
    match Json.member "traceEvents" parsed with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  (* process metadata + thread name + 2 spans *)
  checki "event count" 4 (List.length events);
  let xs =
    List.filter
      (fun e -> Json.member "ph" e = Some (Json.Str "X"))
      events
  in
  checki "two complete events" 2 (List.length xs);
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          checkb (k ^ " present") true (Json.member k e <> None))
        [ "name"; "ts"; "dur"; "pid"; "tid"; "args" ])
    xs;
  (* the open-span case: unfinished spans must not be exported *)
  let t2 = Trace.create ~clock:(fun () -> 1.0) () in
  let _open = Trace.start t2 "never-finished" in
  let js2 = Chrome_trace.to_string t2 in
  (match Json.parse js2 with
  | v ->
      let evs =
        match Json.member "traceEvents" v with
        | Some (Json.Arr e) -> e
        | _ -> []
      in
      checki "only process metadata" 1 (List.length evs)
  | exception Json.Bad m -> Alcotest.failf "invalid JSON: %s" m)

(* ---- executor: trace/stats agreement ------------------------------------------- *)

let test_executor_trace_agrees_with_stats () =
  let registry = Metrics.create_registry () in
  let d = Dag.layered ~seed:5 ~layers:4 ~width:6 ~flops:5e9 ~bytes:1e6 () in
  let _, stats =
    Executor.run_on_demonstrator ~policy:"min-load"
      ~failures:[ ("cf0", 1e-4); ("cf1", 2e-4) ]
      ~tracer:`Sim ~registry d
  in
  checkb "trace non-empty" true (stats.Executor.span_log <> []);
  (* the injected failures must actually bite, or the retry/bytes agreement
     below degenerates to 0 = 0 *)
  checkb "failures actually retried" true (stats.Executor.retries > 0);
  checki "tasks from trace" (Dag.size d)
    (Executor.trace_tasks_completed stats.Executor.span_log);
  checki "retries from trace" stats.Executor.retries
    (Executor.trace_retries stats.Executor.span_log);
  checki "bytes from trace" stats.Executor.bytes_moved
    (Executor.trace_bytes_moved stats.Executor.span_log);
  (* and the metrics registry tells the same story *)
  let counter name =
    match Metrics.find ~registry ~labels:[ ("workflow", "layered") ] name with
    | Some { Metrics.value = Metrics.Counter c; _ } -> int_of_float !c
    | _ -> -1
  in
  checki "tasks metric" (Dag.size d) (counter "workflow_tasks_completed_total");
  checki "retries metric" stats.Executor.retries
    (counter "workflow_task_retries_total");
  checki "bytes metric" stats.Executor.bytes_moved
    (counter "workflow_bytes_moved_total");
  checki "transfers metric" stats.Executor.transfers
    (counter "workflow_transfers_total");
  (* spans are in simulated time: all within the makespan *)
  checkb "spans within makespan" true
    (List.for_all
       (fun s ->
         Trace.finished s
         && s.Trace.start_s >= 0.0
         && s.Trace.end_s <= stats.Executor.makespan +. 1e-9)
       stats.Executor.span_log)

let test_executor_default_is_untraced () =
  let d = Dag.fork_join ~width:4 ~worker_flops:1e9 ~worker_bytes:1e5 ~chunk_bytes:4096 () in
  let _, stats = Executor.run_on_demonstrator ~policy:"heft" d in
  checkb "no spans by default" true (stats.Executor.span_log = [])

(* ---- desim wait statistics ------------------------------------------------------ *)

let test_resource_wait_stats () =
  let sim = Desim.create () in
  let r = Desim.resource "dev" 1 in
  (* three jobs contend for one unit, 1s each: waits of 0, 1 and 2 s *)
  for _ = 1 to 3 do
    Desim.acquire sim r (fun () ->
        Desim.schedule sim 1.0 (fun () -> Desim.release sim r))
  done;
  Desim.run sim;
  let ws = Desim.wait_stats r in
  checki "peak" 1 ws.Desim.ws_peak;
  checki "two queued" 2 ws.Desim.ws_waits;
  Alcotest.check (Alcotest.float 1e-9) "total wait" 3.0 ws.Desim.ws_total_wait_s;
  Alcotest.check (Alcotest.float 1e-9) "mean wait" 1.5 ws.Desim.ws_mean_wait_s;
  (* the stats feed telemetry gauges *)
  let registry = Metrics.create_registry () in
  Desim.publish_resource ~registry r;
  (match
     Metrics.find ~registry ~labels:[ ("resource", "dev") ]
       "desim_resource_mean_wait_s"
   with
  | Some { Metrics.value = Metrics.Gauge g; _ } ->
      Alcotest.check (Alcotest.float 1e-9) "gauge mean wait" 1.5 !g
  | _ -> Alcotest.fail "gauge missing")

(* ---- orchestrator closed loop --------------------------------------------------- *)

let small_estimate cycles =
  { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area; cycles;
    ii = 1; clock_mhz = 250.0; dynamic_power_w = 8.0 }

let test_orchestrator_closed_loop_traced () =
  let registry = Metrics.create_registry () in
  let cluster = Cluster.create [ Cluster.power9_node "p9" ] in
  let tracer = Orchestrator.sim_tracer cluster in
  let orch = Orchestrator.create ~tracer ~registry cluster ~host_name:"p9" in
  let knowledge =
    Everest_autotune.Knowledge.create "k"
      [ { Everest_autotune.Knowledge.variant = "sw"; features = [];
          metrics = [ ("time_s", 0.01) ] };
        { Everest_autotune.Knowledge.variant = "hw"; features = [];
          metrics = [ ("time_s", 0.001) ] } ]
  in
  let _ =
    Orchestrator.deploy orch ~kname:"k"
      ~impls:
        [ ("sw", Orchestrator.Sw { flops = 5e8; bytes = 1e5; threads = 2 });
          ("hw",
           Orchestrator.Hw
             { bitstream = "k"; estimate = small_estimate 100_000;
               in_bytes = 4096; out_bytes = 4096 }) ]
      ~knowledge
      ~goal:(Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s"))
  in
  let n = 25 in
  let log =
    Orchestrator.serve orch ~kernel:"k" ~n ~policy:Orchestrator.Adaptive ()
  in
  checki "all requests served" n (List.length log);
  let spans = Trace.spans tracer in
  checkb "closed loop produced spans" true (spans <> []);
  let by_prefix p =
    List.filter
      (fun (s : Trace.span) ->
        String.length s.Trace.name >= String.length p
        && String.sub s.Trace.name 0 (String.length p) = p)
      spans
  in
  checki "one request span per request" n (List.length (by_prefix "request:"));
  checki "one select per request" n (List.length (by_prefix "select"));
  checki "one execute per request" n (List.length (by_prefix "execute:"));
  (* children point at their request span *)
  checkb "execute nests under request" true
    (List.for_all
       (fun (s : Trace.span) -> s.Trace.parent <> None)
       (by_prefix "execute:"));
  (* the metrics registry saw the loop *)
  let counter name =
    match Metrics.find ~registry ~labels:[ ("kernel", "k") ] name with
    | Some { Metrics.value = Metrics.Counter c; _ } -> int_of_float !c
    | _ -> -1
  in
  checki "requests counted" n (counter "orchestrator_requests_total");
  (* request latencies landed in the histogram *)
  (match
     Metrics.find ~registry ~labels:[ ("kernel", "k") ]
       "orchestrator_request_latency_s"
   with
  | Some { Metrics.value = Metrics.Histogram h; _ } ->
      checki "latency histogram count" n (Metrics.hist_count h)
  | _ -> Alcotest.fail "latency histogram missing")

(* ---- probe API ------------------------------------------------------------------ *)

let test_probe_scoped_tracer () =
  let t = Trace.create ~clock:Clock.wall () in
  Probe.with_tracer t (fun () ->
      checkb "enabled inside" true (Probe.enabled ());
      Probe.with_span "work" (fun () -> ()));
  checkb "disabled outside" false (Probe.enabled ());
  checki "span captured" 1 (Trace.span_count t)

let test_probe_time_block_observes () =
  let registry = Metrics.create_registry () in
  let r = Probe.time_block ~registry "stage" (fun () -> 42) in
  checki "result threaded" 42 r;
  match Metrics.find ~registry "stage_s" with
  | Some { Metrics.value = Metrics.Histogram h; _ } ->
      checki "one observation" 1 (Metrics.hist_count h)
  | _ -> Alcotest.fail "duration histogram missing"

let test_probe_time_block_uses_installed_clock () =
  (* time_block durations come from Probe's clock, not the wall — a
     manual clock makes the measured duration exact *)
  let registry = Metrics.create_registry () in
  let m = Clock.manual ~start:50.0 () in
  Probe.with_clock (Clock.of_manual m) (fun () ->
      Probe.time_block ~registry "sim_stage" (fun () -> Clock.advance m 2.5));
  (match Metrics.find ~registry "sim_stage_s" with
  | Some { Metrics.value = Metrics.Histogram h; _ } ->
      checki "one observation" 1 (Metrics.hist_count h);
      Alcotest.check (Alcotest.float 1e-12) "exact simulated duration" 2.5
        (Metrics.hist_sum h)
  | _ -> Alcotest.fail "duration histogram missing");
  (* the override is scoped: outside with_clock the wall is back *)
  checkb "restored" true (Probe.current_clock () == Clock.wall)

(* ---- reset semantics ------------------------------------------------------------- *)

let test_reset_restarts_ids () =
  let t = Trace.create ~clock:(fun () -> 0.0) () in
  Trace.name_track t 1 "node";
  let a = Trace.start t "a" in
  let b = Trace.start t "b" in
  Trace.finish t a;
  Trace.finish t b;
  checki "ids allocated monotonically" 1 (b.Trace.id - a.Trace.id);
  Trace.reset t;
  checki "log cleared" 0 (Trace.span_count t);
  checki "drop counter cleared" 0 (Trace.dropped t);
  checkb "track names cleared" true (Trace.named_tracks t = []);
  (* a reset starts a new id generation: ids restart at 0, so indexes built
     over the new log cannot alias spans from the old one *)
  let c = Trace.start t "c" in
  checki "ids restart at 0" 0 c.Trace.id;
  (* dropped spans still consume ids within a generation *)
  let t2 = Trace.create ~capacity:1 ~clock:(fun () -> 0.0) () in
  let x = Trace.start t2 "kept" in
  let _ = Trace.start t2 "dropped" in
  let y = Trace.start t2 "also-dropped" in
  checki "drops consume ids" 2 (y.Trace.id - x.Trace.id);
  Trace.reset t2;
  checki "new generation at 0" 0 (Trace.start t2 "fresh").Trace.id

(* ---- chrome trace duplicate keys ------------------------------------------------- *)

(* Every args object must bind each key once: shadowed attribute bindings
   (Trace.finish prepends) export as their newest value, and a user
   attribute named "parent" must not collide with the synthetic parent
   arg. *)
let test_chrome_trace_dedupes_args () =
  let t = Trace.create ~clock:(fun () -> 0.0) () in
  let s =
    Trace.start t
      ~attrs:[ ("status", Trace.S "running"); ("parent", Trace.S "user-attr") ]
      "task"
  in
  (* finish-time attrs shadow start-time attrs *)
  Trace.finish t ~attrs:[ ("status", Trace.S "ok") ] s;
  checki "raw attrs carry the duplicate" 3 (List.length s.Trace.attrs);
  let js = Chrome_trace.to_string t in
  let parsed =
    match Json.parse js with
    | v -> v
    | exception Json.Bad m -> Alcotest.failf "invalid JSON: %s" m
  in
  let args =
    match Json.member "traceEvents" parsed with
    | Some (Json.Arr evs) -> (
        match
          List.find_map
            (fun e ->
              if Json.member "ph" e = Some (Json.Str "X") then
                Json.member "args" e
              else None)
            evs
        with
        | Some (Json.Obj kvs) -> kvs
        | _ -> Alcotest.fail "span args missing")
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let keys = List.map fst args in
  checki "each key bound once"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  checkb "newest status wins" true
    (List.assoc_opt "status" args = Some (Json.Str "ok"));
  (* the synthetic parent wins over the user attribute of the same name *)
  checkb "parent is the synthetic arg" true
    (List.assoc_opt "parent" args = Some (Json.Num (-1.0)))

(* ---- clocks ---------------------------------------------------------------------- *)

let test_clock_monotonic () =
  let sample clock = Array.init 64 (fun _ -> clock ()) in
  let nondecreasing xs =
    let ok = ref true in
    Array.iteri (fun i x -> if i > 0 then ok := !ok && x >= xs.(i - 1)) xs;
    !ok
  in
  checkb "wall clock non-decreasing" true (nondecreasing (sample Clock.wall));
  checkb "monotonic clock non-decreasing" true
    (nondecreasing (sample Clock.monotonic));
  let m = Clock.manual ~start:5.0 () in
  let clk = Clock.of_manual m in
  Alcotest.check (Alcotest.float 0.0) "manual start" 5.0 (clk ());
  Clock.advance m 2.5;
  Alcotest.check (Alcotest.float 0.0) "manual advance" 7.5 (clk ());
  let backing = ref 1.0 in
  let f = Clock.of_fn (fun () -> !backing) in
  backing := 3.0;
  Alcotest.check (Alcotest.float 0.0) "of_fn reads live" 3.0 (f ())

let test_probe_under_manual_clock () =
  (* probe spans sample whatever clock the installed tracer carries, so a
     simulated clock flows through the global facade untouched *)
  let m = Clock.manual ~start:100.0 () in
  let t = Trace.create ~clock:(Clock.of_manual m) () in
  Probe.with_tracer t (fun () ->
      Probe.with_span "outer" (fun () ->
          Clock.advance m 3.0;
          Probe.with_span "inner" (fun () -> Clock.advance m 1.0)));
  let outer = Option.get (Trace.find t "outer") in
  let inner = Option.get (Trace.find t "inner") in
  Alcotest.check (Alcotest.float 1e-12) "outer start in sim time" 100.0
    outer.Trace.start_s;
  Alcotest.check (Alcotest.float 1e-12) "outer spans both advances" 4.0
    (Trace.duration outer);
  Alcotest.check (Alcotest.float 1e-12) "inner nested in sim time" 1.0
    (Trace.duration inner);
  checkb "inner under outer" true (inner.Trace.parent = Some outer.Trace.id)

(* ---- prometheus golden ----------------------------------------------------------- *)

let test_prometheus_golden () =
  let r = Metrics.create_registry () in
  Metrics.inc ~by:7.0
    (Metrics.counter ~registry:r ~labels:[ ("node", "p9") ]
       ~help:"tasks finished" "tasks_total");
  Metrics.set (Metrics.gauge ~registry:r "depth") 3.0;
  let h = Metrics.histogram ~registry:r "lat_s" in
  Metrics.observe h 0.004;
  Metrics.observe h 0.004;
  Metrics.observe h 2.0;
  let expected =
    "# TYPE depth gauge\n\
     depth 3\n\
     # TYPE lat_s histogram\n\
     lat_s_bucket{le=\"0.00501187\"} 2\n\
     lat_s_bucket{le=\"2.51189\"} 3\n\
     lat_s_bucket{le=\"+Inf\"} 3\n\
     lat_s_sum 2.008\n\
     lat_s_count 3\n\
     # HELP tasks_total tasks finished\n\
     # TYPE tasks_total counter\n\
     tasks_total{node=\"p9\"} 7\n"
  in
  checks "prometheus exposition" expected (Metrics.render_prometheus r)

(* The exposition format escapes exactly backslash, double quote and
   newline in label values; tabs and UTF-8 bytes must pass through
   verbatim (OCaml's %S would corrupt both). *)
let test_prometheus_label_escaping () =
  let r = Metrics.create_registry () in
  Metrics.set
    (Metrics.gauge ~registry:r
       ~labels:[ ("path", "C:\\tmp\\a\"b\nc") ]
       "esc")
    1.0;
  Metrics.set
    (Metrics.gauge ~registry:r ~labels:[ ("name", "caf\xc3\xa9\tbar") ] "utf8")
    2.0;
  let expected =
    "# TYPE esc gauge\n\
     esc{path=\"C:\\\\tmp\\\\a\\\"b\\nc\"} 1\n\
     # TYPE utf8 gauge\n\
     utf8{name=\"caf\xc3\xa9\tbar\"} 2\n"
  in
  checks "prometheus label escaping" expected (Metrics.render_prometheus r);
  checks "escaper on plain value" "plain"
    (Metrics.escape_label_value "plain")

(* ---- quantile properties --------------------------------------------------------- *)

(* Nearest-rank empirical quantile, matching the histogram's "first bucket
   with cumulative count >= q*n" scan. *)
let exact_quantile xs q =
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  arr.(max 0 (min (n - 1) (rank - 1)))

let prop_quantile_monotone_and_tight =
  (* values >= bucket_min: inside the log-scale range the estimate must sit
     within one bucket ratio (~26%) of the exact empirical quantile, and be
     monotone in q *)
  QCheck.Test.make ~count:50
    ~name:"histogram quantile monotone in q, within one bucket of exact"
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range 1e-6 1e3))
    (fun values ->
      QCheck.assume (values <> []);
      let r = Metrics.create_registry () in
      let h = Metrics.histogram ~registry:r "q" in
      List.iter (Metrics.observe h) values;
      let qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let ests = List.map (Metrics.quantile h) qs in
      let monotone =
        List.for_all2
          (fun a b -> a <= b +. 1e-12)
          (List.filteri (fun i _ -> i < List.length ests - 1) ests)
          (List.tl ests)
      in
      let tight =
        List.for_all
          (fun q ->
            let est = Metrics.quantile h q in
            let exact = exact_quantile values q in
            est <= exact *. Metrics.bucket_ratio +. 1e-12
            && est >= exact /. Metrics.bucket_ratio -. 1e-12)
          qs
      in
      monotone && tight)

let () =
  Alcotest.run "everest_telemetry"
    [
      ( "trace",
        [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "explicit parent" `Quick
            test_explicit_parent_across_callbacks;
          Alcotest.test_case "bounded sink" `Quick test_bounded_sink;
          Alcotest.test_case "pooled sink views" `Quick test_pooled_sink_views;
          Alcotest.test_case "noop tracer" `Quick
            test_noop_tracer_records_nothing ] );
      ( "histogram",
        [ Alcotest.test_case "uniform quantiles" `Quick test_histogram_uniform;
          Alcotest.test_case "constant" `Quick test_histogram_constant;
          Alcotest.test_case "bimodal" `Quick test_histogram_bimodal ] );
      ( "registry",
        [ Alcotest.test_case "labels" `Quick test_registry_labels;
          Alcotest.test_case "render formats" `Quick test_render_formats ] );
      ( "chrome-trace",
        [ Alcotest.test_case "well-formed JSON" `Quick
            test_chrome_trace_wellformed ] );
      ( "executor",
        [ Alcotest.test_case "trace agrees with stats" `Quick
            test_executor_trace_agrees_with_stats;
          Alcotest.test_case "untraced by default" `Quick
            test_executor_default_is_untraced ] );
      ( "desim",
        [ Alcotest.test_case "wait stats" `Quick test_resource_wait_stats ] );
      ( "orchestrator",
        [ Alcotest.test_case "closed loop traced" `Quick
            test_orchestrator_closed_loop_traced ] );
      ( "probe",
        [ Alcotest.test_case "scoped tracer" `Quick test_probe_scoped_tracer;
          Alcotest.test_case "time_block" `Quick
            test_probe_time_block_observes;
          Alcotest.test_case "time_block under a manual clock" `Quick
            test_probe_time_block_uses_installed_clock;
          Alcotest.test_case "manual clock flows through" `Quick
            test_probe_under_manual_clock ] );
      ( "reset",
        [ Alcotest.test_case "reset restarts ids" `Quick
            test_reset_restarts_ids ] );
      ( "chrome-args",
        [ Alcotest.test_case "args dedupe" `Quick
            test_chrome_trace_dedupes_args ] );
      ( "clock",
        [ Alcotest.test_case "monotonicity" `Quick test_clock_monotonic ] );
      ( "prometheus",
        [ Alcotest.test_case "golden exposition" `Quick
            test_prometheus_golden;
          Alcotest.test_case "label value escaping" `Quick
            test_prometheus_label_escaping ] );
      ( "quantile-props",
        [ QCheck_alcotest.to_alcotest prop_quantile_monotone_and_tight ] );
    ]
