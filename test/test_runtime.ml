(* Tests for everest_runtime: VMs, API remoting, vFPGA isolation, the data
   protection layer and the adaptive orchestrator. *)

open Everest_runtime
open Everest_platform

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let small_estimate cycles =
  { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area; cycles;
    ii = 1; clock_mhz = 250.0; dynamic_power_w = 8.0 }

(* ---- VMs ---------------------------------------------------------------------- *)

let test_vm_admission () =
  let node = Cluster.power9_node "p9" in
  let h = Vm.hypervisor node in
  let _a = Vm.spawn h ~name:"a" ~vcpus:16 in
  let _b = Vm.spawn h ~name:"b" ~vcpus:16 in
  (* 2x oversubscription limit = 32 vCPUs on 16 cores *)
  match Vm.spawn h ~name:"c" ~vcpus:1 with
  | exception Vm.Admission_failed _ -> ()
  | _ -> Alcotest.fail "oversubscription must be rejected"

let test_vm_overhead () =
  let sim = Desim.create () in
  let node = Node.create ~name:"n" ~tier:Spec.Cloud Spec.power9 in
  let h = Vm.hypervisor ~default_overhead:1.5 node in
  let vm = Vm.spawn h ~name:"g" ~vcpus:4 in
  let t_guest = ref 0.0 in
  Vm.run_guest sim vm ~flops:1e10 ~bytes:1.0 ~threads:1 (fun () ->
      t_guest := Desim.now sim);
  Desim.run sim;
  let t_native = Spec.cpu_time Spec.power9 ~flops:1e10 ~bytes:1.0 ~threads:1 in
  checkb "overhead applied" true
    (Float.abs (!t_guest -. (1.5 *. t_native)) < 1e-9)

let test_vm_stopped_rejects () =
  let sim = Desim.create () in
  let node = Node.create ~name:"n" ~tier:Spec.Cloud Spec.power9 in
  let h = Vm.hypervisor node in
  let vm = Vm.spawn h ~name:"g" ~vcpus:2 in
  Vm.stop vm;
  match Vm.run_guest sim vm ~flops:1.0 ~bytes:1.0 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stopped VM must reject work"

(* ---- remoting ------------------------------------------------------------------- *)

let test_remoting_batching () =
  let t = Remoting.virtio_default in
  let unbatched = Remoting.cost { t with Remoting.batch_limit = 1 } ~calls:64 ~bytes_per_call:1024 in
  let batched = Remoting.cost t ~calls:64 ~bytes_per_call:1024 in
  checkb "batching reduces cost" true (batched < unbatched);
  checkb "amortization > 2x" true
    (Remoting.amortization t ~calls:64 ~bytes_per_call:1024 > 2.0)

let test_remoting_passthrough_cheaper_per_call () =
  let c_remote = Remoting.cost Remoting.virtio_default ~calls:1 ~bytes_per_call:64 in
  let c_pass = Remoting.cost Remoting.passthrough ~calls:1 ~bytes_per_call:64 in
  checkb "passthrough cheaper for single calls" true (c_pass < c_remote)

(* ---- vFPGA ----------------------------------------------------------------------- *)

let test_vfpga_isolation () =
  let cluster = Cluster.create [ Cluster.power9_node "p9" ] in
  let host = Cluster.find_node cluster "p9" in
  let h = Vm.hypervisor host in
  let vm1 = Vm.spawn h ~name:"tenant1" ~vcpus:2 in
  let vm2 = Vm.spawn h ~name:"tenant2" ~vcpus:2 in
  let mgr = Vfpga.create () in
  let ctx1 = Vfpga.allocate mgr ~vm:vm1 in
  checki "one active ctx" 1 (Vfpga.active_contexts mgr);
  (* vm2 tries to use vm1's context *)
  (match
     Vfpga.launch mgr cluster.Cluster.sim ~vm:vm2 ~ctx:ctx1 ~bitstream:"x"
       ~estimate:(small_estimate 1000) ~in_bytes:0 ~out_bytes:0 (fun () -> ())
   with
  | exception Vfpga.Isolation_violation _ -> ()
  | _ -> Alcotest.fail "cross-tenant launch must be blocked");
  checki "denial recorded" 1 mgr.Vfpga.denied;
  (* legitimate launch works *)
  let ok = ref false in
  Vfpga.launch mgr cluster.Cluster.sim ~vm:vm1 ~ctx:ctx1 ~bitstream:"x"
    ~estimate:(small_estimate 1000) ~in_bytes:128 ~out_bytes:128 (fun () ->
      ok := true);
  Cluster.run cluster;
  checkb "owner can launch" true !ok;
  checki "launch counted" 1 ctx1.Vfpga.launches

let test_vfpga_no_fpga () =
  let cluster = Cluster.create [ Cluster.endpoint_node "ep" ] in
  let host = Cluster.find_node cluster "ep" in
  let h = Vm.hypervisor host in
  let vm = Vm.spawn h ~name:"t" ~vcpus:1 in
  match Vfpga.allocate (Vfpga.create ()) ~vm with
  | exception Vfpga.No_fpga _ -> ()
  | _ -> Alcotest.fail "endpoint has no FPGA"

(* ---- protection layer -------------------------------------------------------------- *)

let test_protection_quarantine () =
  let layer = Protection.create () in
  let s = Protection.register layer "fcd-stream" in
  (* train on clean traffic *)
  for i = 0 to 99 do
    Protection.train s
      ~values:[ 20.0 +. Float.of_int (i mod 5) ]
      ~bytes:1000 ~latency_s:0.010
  done;
  Protection.finalize s;
  (* clean batch passes *)
  (match Protection.admit layer s ~values:[ 21.5 ] ~bytes:1020 ~latency_s:0.011 with
  | Protection.Accepted -> ()
  | Protection.Rejected r -> Alcotest.failf "clean batch rejected: %s" r);
  (* poisoned values trigger range monitor -> eventually policy reaction *)
  let rec poison n =
    if n > 0 then begin
      ignore (Protection.admit layer s ~values:[ 9999.0 ] ~bytes:1010 ~latency_s:0.010);
      poison (n - 1)
    end
  in
  poison 3;
  checkb "alerts raised" true (layer.Protection.total_alerts > 0);
  checkb "encryption forced or hardened" true
    (s.Protection.force_encryption || s.Protection.hardened_variant <> None)

let test_protection_access_burst_quarantines () =
  let layer = Protection.create () in
  let s = Protection.register layer "sensor" in
  for _i = 0 to 49 do
    Protection.train s ~values:[ 1.0 ] ~bytes:100 ~latency_s:0.001
  done;
  Protection.finalize s;
  (* simulate an access-pattern attack event directly through the policy *)
  Protection.apply_actions layer s
    (Everest_security.Monitor.policy
       (Everest_security.Monitor.classify_event "access" "scan"));
  checkb "quarantined" true s.Protection.quarantined;
  match Protection.admit layer s ~values:[ 1.0 ] ~bytes:100 ~latency_s:0.001 with
  | Protection.Rejected _ -> ()
  | Protection.Accepted -> Alcotest.fail "quarantined stream must reject"

(* ---- orchestrator -------------------------------------------------------------------- *)

let knowledge_for_impls () =
  Everest_autotune.Knowledge.create "k"
    [ { Everest_autotune.Knowledge.variant = "sw"; features = [];
        metrics = [ ("time_s", 0.01) ] };
      { Everest_autotune.Knowledge.variant = "hw"; features = [];
        metrics = [ ("time_s", 0.001) ] } ]

let impls () =
  [ ("sw", Orchestrator.Sw { flops = 5e8; bytes = 1e5; threads = 2 });
    ("hw",
     Orchestrator.Hw
       { bitstream = "k"; estimate = small_estimate 100_000; in_bytes = 4096;
         out_bytes = 4096 }) ]

let fresh_orch () =
  let cluster = Cluster.create [ Cluster.power9_node "p9" ] in
  Orchestrator.create cluster ~host_name:"p9"

let test_orchestrator_fixed_policies () =
  let orch = fresh_orch () in
  let _ =
    Orchestrator.deploy orch ~kname:"k" ~impls:(impls ())
      ~knowledge:(knowledge_for_impls ())
      ~goal:(Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s"))
  in
  let log = Orchestrator.serve orch ~kernel:"k" ~n:10 ~policy:(Orchestrator.Fixed "sw") () in
  checki "10 requests" 10 (List.length log);
  checkb "all sw" true
    (List.for_all (fun r -> r.Orchestrator.variant = "sw") log)

let test_orchestrator_adaptive_prefers_hw () =
  let orch = fresh_orch () in
  let _ =
    Orchestrator.deploy orch ~kname:"k" ~impls:(impls ())
      ~knowledge:(knowledge_for_impls ())
      ~goal:(Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s"))
  in
  let log = Orchestrator.serve orch ~kernel:"k" ~n:20 ~policy:Orchestrator.Adaptive () in
  let hist = Orchestrator.variant_histogram log in
  let hw = Option.value ~default:0 (List.assoc_opt "hw" hist) in
  checkb "hw dominates" true (hw > 15)

let test_orchestrator_adapts_to_contention () =
  let orch = fresh_orch () in
  let _ =
    Orchestrator.deploy orch ~kname:"k" ~impls:(impls ())
      ~knowledge:(knowledge_for_impls ())
      ~goal:(Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s"))
  in
  (* after request 10, the FPGA becomes 100x slower (contention) *)
  let slowdown req variant =
    if req >= 10 && String.equal variant "hw" then 100.0 else 1.0
  in
  let log =
    Orchestrator.serve orch ~kernel:"k" ~n:40 ~policy:Orchestrator.Adaptive
      ~slowdown ()
  in
  let late = List.filteri (fun i _ -> i >= 30) log in
  checkb "switched away from hw under contention" true
    (List.for_all (fun r -> r.Orchestrator.variant = "sw") late);
  (* compare with stubborn policy *)
  let orch2 = fresh_orch () in
  let _ =
    Orchestrator.deploy orch2 ~kname:"k" ~impls:(impls ())
      ~knowledge:(knowledge_for_impls ())
      ~goal:(Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s"))
  in
  let log_fixed =
    Orchestrator.serve orch2 ~kernel:"k" ~n:40 ~policy:(Orchestrator.Fixed "hw")
      ~slowdown ()
  in
  checkb "adaptive beats stubborn hw" true
    (Orchestrator.total_latency log < Orchestrator.total_latency log_fixed)

let test_orchestrator_breaker_degrades () =
  (* the hw variant fails every attempt for a while: its breaker must open,
     requests degrade to sw, and after the cooldown a half-open probe
     succeeds and hw serves again *)
  let orch = fresh_orch () in
  let dk =
    Orchestrator.deploy orch
      ~breaker:
        { Everest_resilience.Breaker.failure_threshold = 2; cooldown_s = 0.01;
          half_open_probes = 1 }
      ~kname:"k" ~impls:(impls ())
      ~knowledge:(knowledge_for_impls ())
      ~goal:(Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s"))
  in
  (* hw attempts fail on the first 6 requests, then the fault clears *)
  let fail ~req ~variant ~attempt:_ = req < 6 && String.equal variant "hw" in
  let log =
    Orchestrator.serve orch ~kernel:"k" ~n:30 ~policy:(Orchestrator.Fixed "hw")
      ~fail ()
  in
  checki "every request answered" 30 (List.length log);
  checkb "requests degraded to sw during the outage" true
    (List.exists
       (fun r -> r.Orchestrator.degraded && r.Orchestrator.variant = "sw")
       log);
  let late = List.filteri (fun i _ -> i >= 10) log in
  checkb "hw back after the probe" true
    (List.for_all
       (fun r -> r.Orchestrator.variant = "hw" && r.Orchestrator.ok)
       late);
  checkb "breaker opened at least once" true
    (List.exists
       (fun (_, b) -> Everest_resilience.Breaker.opens b >= 1)
       dk.Orchestrator.breakers);
  checkb "breaker closed again" true
    (Orchestrator.breaker_state orch dk ~variant:"hw"
    = Some Everest_resilience.Breaker.Closed);
  checkb "availability accounts failures" true
    (Orchestrator.availability log <= 1.0
    && Orchestrator.degraded_requests log >= 1)

let test_orchestrator_random_policy () =
  let orch = fresh_orch () in
  let _ =
    Orchestrator.deploy orch ~kname:"k" ~impls:(impls ())
      ~knowledge:(knowledge_for_impls ())
      ~goal:(Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s"))
  in
  let log = Orchestrator.serve orch ~kernel:"k" ~n:30 ~policy:(Orchestrator.Random 7) () in
  let hist = Orchestrator.variant_histogram log in
  checkb "both variants explored" true (List.length hist = 2)

let () =
  Alcotest.run "everest_runtime"
    [
      ( "vm",
        [ Alcotest.test_case "admission" `Quick test_vm_admission;
          Alcotest.test_case "overhead" `Quick test_vm_overhead;
          Alcotest.test_case "stopped" `Quick test_vm_stopped_rejects ] );
      ( "remoting",
        [ Alcotest.test_case "batching" `Quick test_remoting_batching;
          Alcotest.test_case "passthrough" `Quick test_remoting_passthrough_cheaper_per_call ] );
      ( "vfpga",
        [ Alcotest.test_case "isolation" `Quick test_vfpga_isolation;
          Alcotest.test_case "no fpga" `Quick test_vfpga_no_fpga ] );
      ( "protection",
        [ Alcotest.test_case "quarantine flow" `Quick test_protection_quarantine;
          Alcotest.test_case "access burst" `Quick test_protection_access_burst_quarantines ] );
      ( "orchestrator",
        [ Alcotest.test_case "fixed" `Quick test_orchestrator_fixed_policies;
          Alcotest.test_case "adaptive prefers hw" `Quick test_orchestrator_adaptive_prefers_hw;
          Alcotest.test_case "adapts to contention" `Quick test_orchestrator_adapts_to_contention;
          Alcotest.test_case "random explores" `Quick test_orchestrator_random_policy;
          Alcotest.test_case "breaker degrades hw to sw" `Quick
            test_orchestrator_breaker_degrades ] );
    ]
