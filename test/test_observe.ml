(* Tests for everest_observe: the span-DAG index agrees with naive scans
   over the raw log, critical-path extraction is exact on a hand-built
   chain and tiles [0, makespan] on real executor runs, utilization
   reconciles with the span log, SLOs evaluate and burn-rate alerts flip
   over simulated time, reports round-trip through JSON, and the
   regression differ flags only genuine regressions. *)

open Everest_observe
module Trace = Everest_telemetry.Trace
module Clock = Everest_telemetry.Clock
module Metrics = Everest_telemetry.Metrics
module Wf = Everest_workflow
module Rt = Everest_runtime

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* A traced run of a layered stress DAG (the CLI drill's workload). *)
let traced_run ?(seed = 7) () =
  let dag = Wf.Dag.layered ~seed ~layers:4 ~width:3 ~flops:2e9 ~bytes:1e6 () in
  let registry = Metrics.create_registry () in
  let _, stats =
    Wf.Executor.run_on_demonstrator ~policy:"heft-locality" ~tracer:`Sim
      ~registry dag
  in
  (dag, stats)

(* ---- span dag ------------------------------------------------------------------- *)

let start_order (a : Trace.span) (b : Trace.span) =
  match compare a.Trace.start_s b.Trace.start_s with
  | 0 -> compare a.Trace.id b.Trace.id
  | c -> c

let test_span_dag_agrees_with_naive () =
  let _, stats = traced_run () in
  let spans = stats.Wf.Executor.span_log in
  checkb "have spans" true (spans <> []);
  let sd = Span_dag.of_spans spans in
  checki "size" (List.length spans) (Span_dag.size sd);
  let naive_children id =
    List.sort start_order
      (List.filter (fun (s : Trace.span) -> s.Trace.parent = Some id) spans)
  in
  List.iter
    (fun (s : Trace.span) ->
      checkb
        (Printf.sprintf "children of %d agree" s.Trace.id)
        true
        (Span_dag.children sd s.Trace.id = naive_children s.Trace.id);
      checkb "id lookup finds the very span" true
        (match Span_dag.span sd s.Trace.id with
        | Some x -> x == s
        | None -> false);
      (* find returns the earliest-started span of that name *)
      let naive_find =
        List.hd
          (List.sort start_order
             (List.filter
                (fun (x : Trace.span) -> String.equal x.Trace.name s.Trace.name)
                spans))
      in
      checkb ("find " ^ s.Trace.name) true
        (match Span_dag.find sd s.Trace.name with
        | Some x -> x == naive_find
        | None -> false))
    spans;
  checkb "roots agree" true
    (Span_dag.roots sd
    = List.sort start_order
        (List.filter (fun (s : Trace.span) -> s.Trace.parent = None) spans));
  (* track timelines partition the log *)
  let by_tracks =
    List.concat_map (Span_dag.track_spans sd) (Span_dag.tracks sd)
  in
  checki "tracks partition the log" (List.length spans) (List.length by_tracks);
  checki "task prefix matches naive filter"
    (List.length
       (List.filter
          (fun (s : Trace.span) ->
            String.length s.Trace.name >= 5
            && String.sub s.Trace.name 0 5 = "task:")
          spans))
    (List.length (Span_dag.with_prefix sd "task:"))

(* ---- critical path -------------------------------------------------------------- *)

let act ~id ~name ~start ~finish ~work ~deps =
  { Critical_path.act_id = id; act_name = name; act_node = "n";
    act_start = start; act_finish = finish; act_work_s = work;
    act_deps = deps }

let test_critical_path_exact_chain () =
  (* a -> b -> c back-to-back: the path is the whole run, all self time *)
  let acts =
    [ act ~id:0 ~name:"a" ~start:0.0 ~finish:1.0 ~work:1.0 ~deps:[];
      act ~id:1 ~name:"b" ~start:1.0 ~finish:2.5 ~work:1.5 ~deps:[ 0 ];
      act ~id:2 ~name:"c" ~start:2.5 ~finish:3.0 ~work:0.5 ~deps:[ 1 ] ]
  in
  match Critical_path.extract acts with
  | None -> Alcotest.fail "no path"
  | Some cp ->
      checki "three steps" 3 (List.length cp.Critical_path.steps);
      checkf "duration = makespan" 3.0 cp.Critical_path.duration_s;
      checkf "makespan" 3.0 cp.Critical_path.makespan_s;
      checkf "all self" 3.0 cp.Critical_path.work_s;
      checkf "no wait" 0.0 cp.Critical_path.wait_s;
      checkb "invariant" true (Critical_path.check cp);
      checkb "names in order" true
        (List.map
           (fun (s : Critical_path.step) -> s.Critical_path.st_name)
           cp.Critical_path.steps
        = [ "a"; "b"; "c" ])

let test_critical_path_attributes_wait () =
  (* b finishes 2s after a but only works 0.5s: 1.5s of its segment is
     wait (transfer/queue), and a fast sibling must not hijack the path *)
  let acts =
    [ act ~id:0 ~name:"a" ~start:0.0 ~finish:1.0 ~work:1.0 ~deps:[];
      act ~id:1 ~name:"sibling" ~start:0.0 ~finish:0.4 ~work:0.4 ~deps:[];
      act ~id:2 ~name:"b" ~start:1.0 ~finish:3.0 ~work:0.5 ~deps:[ 0; 1 ] ]
  in
  match Critical_path.extract acts with
  | None -> Alcotest.fail "no path"
  | Some cp ->
      checkb "path is a -> b" true
        (List.map
           (fun (s : Critical_path.step) -> s.Critical_path.st_name)
           cp.Critical_path.steps
        = [ "a"; "b" ]);
      checkf "duration" 3.0 cp.Critical_path.duration_s;
      checkf "self" 1.5 cp.Critical_path.work_s;
      checkf "wait" 1.5 cp.Critical_path.wait_s;
      let b = List.nth cp.Critical_path.steps 1 in
      checkf "b self" 0.5 b.Critical_path.st_self_s;
      checkf "b wait" 1.5 b.Critical_path.st_wait_s;
      (* the sibling is off-path but still counts toward total work *)
      checkf "total work" 1.9 cp.Critical_path.total_work_s;
      checkb "bottleneck is b" true
        ((List.hd (Critical_path.bottlenecks ~k:1 cp)).Critical_path.st_name
        = "b")

let prop_cp_duration_equals_makespan =
  (* on any completed executor run the extracted path must tile exactly
     the interval [0, makespan]: roots launch at t=0 and consumers launch
     the moment their last input lands *)
  QCheck.Test.make ~count:8 ~name:"critical path duration = makespan"
    QCheck.(pair (int_range 1 1000) (pair (int_range 2 4) (int_range 2 4)))
    (fun (seed, (layers, width)) ->
      let dag = Wf.Dag.layered ~seed ~layers ~width ~flops:1e9 ~bytes:5e5 () in
      let registry = Metrics.create_registry () in
      let _, stats =
        Wf.Executor.run_on_demonstrator ~policy:"min-load" ~tracer:`Sim
          ~registry dag
      in
      let report = Lazy.force stats.Wf.Executor.report in
      match report.Report.r_cp with
      | None -> false
      | Some cp ->
          Critical_path.check cp
          && Float.abs
               (cp.Critical_path.duration_s -. stats.Wf.Executor.makespan)
             <= 1e-9 *. Float.max 1.0 stats.Wf.Executor.makespan
          && cp.Critical_path.work_s <= cp.Critical_path.total_work_s +. 1e-9)

(* ---- utilization ---------------------------------------------------------------- *)

let test_utilization_reconciles () =
  let _, stats = traced_run () in
  let report = Lazy.force stats.Wf.Executor.report in
  let u =
    match report.Report.r_util with
    | Some u -> u
    | None -> Alcotest.fail "no utilization"
  in
  checkb "consistency check" true (Utilization.check u);
  checkf "horizon is the makespan" stats.Wf.Executor.makespan
    u.Utilization.u_horizon_s;
  (* per node, the span-time sum must match a direct fold over the raw
     log, and merged busy time can never exceed it *)
  let sd = Span_dag.of_spans stats.Wf.Executor.span_log in
  List.iter
    (fun (n : Utilization.node_util) ->
      let raw =
        List.fold_left
          (fun acc (s : Trace.span) ->
            let is_task =
              String.length s.Trace.name >= 5
              && String.sub s.Trace.name 0 5 = "task:"
            in
            if is_task then acc +. Trace.duration s else acc)
          0.0
          (Span_dag.track_spans sd n.Utilization.nu_track)
      in
      Alcotest.check (Alcotest.float 1e-9)
        ("span_s matches the log on " ^ n.Utilization.nu_node)
        raw n.Utilization.nu_span_s;
      checkb "busy <= raw span time" true
        (n.Utilization.nu_busy_s <= raw +. 1e-9))
    u.Utilization.u_nodes;
  (* every first completion lands on exactly one node's counter *)
  let tasks =
    List.fold_left
      (fun acc (n : Utilization.node_util) -> acc + n.Utilization.nu_tasks)
      0 u.Utilization.u_nodes
  in
  checki "ok attempts partition across nodes"
    (Wf.Executor.trace_tasks_completed stats.Wf.Executor.span_log)
    tasks

let test_utilization_gaps () =
  (* one track, two spans with a 2s hole: busy 2, idle 3 (incl. the tail) *)
  let m = Clock.manual () in
  let tr = Trace.create ~clock:(Clock.of_manual m) () in
  let s1 = Trace.start tr ~track:1 "task:a" in
  Clock.advance m 1.0;
  Trace.finish tr s1;
  Clock.advance m 2.0;
  let s2 = Trace.start tr ~track:1 "task:b" in
  Clock.advance m 1.0;
  Trace.finish tr s2;
  let u =
    Utilization.of_span_dag ~horizon:5.0
      ~track_names:[ (1, "n0") ]
      (Span_dag.of_tracer tr)
  in
  match u.Utilization.u_nodes with
  | [ n ] ->
      checkf "busy" 2.0 n.Utilization.nu_busy_s;
      checkf "idle" 3.0 n.Utilization.nu_idle_s;
      checkb "check" true (Utilization.check u);
      (* largest gap first: the 2s hole, then the 1s tail *)
      (match n.Utilization.nu_gaps with
      | (g1s, g1l) :: (g2s, g2l) :: _ ->
          checkf "hole start" 1.0 g1s;
          checkf "hole length" 2.0 g1l;
          checkf "tail start" 4.0 g2s;
          checkf "tail length" 1.0 g2l
      | _ -> Alcotest.fail "expected two gaps");
      checkb "worst gap" true
        (Utilization.worst_gap u = Some ("n0", 1.0, 2.0))
  | _ -> Alcotest.fail "expected one node"

(* ---- slo ------------------------------------------------------------------------ *)

let outcome t ok lat = { Slo.o_t_s = t; o_ok = ok; o_latency_s = lat }

let test_slo_evaluate () =
  (* 5 of 100 fail -> availability 0.95, half the 0.1 budget burnt *)
  let outcomes =
    List.init 100 (fun i ->
        outcome (float_of_int i *. 0.01) (i mod 20 <> 0) 0.01)
  in
  let r = Slo.evaluate (Slo.availability "a" 0.9) outcomes in
  checkf "attained" 0.95 r.Slo.attained;
  checkb "met at 0.9" true r.Slo.met;
  checkf "budget used" 0.5 r.Slo.budget_used;
  let r99 = Slo.evaluate (Slo.availability "a" 0.99) outcomes in
  checkb "violated at 0.99" false r99.Slo.met;
  checkb "budget exhausted" true (r99.Slo.budget_used > 1.0);
  (* latency quantile over the ok requests *)
  let lat = Slo.evaluate (Slo.latency "l" ~q:0.5 ~limit_s:0.02) outcomes in
  checkf "latency attained" 0.01 lat.Slo.attained;
  checkb "latency met" true lat.Slo.met;
  let tight = Slo.evaluate (Slo.latency "l" ~q:0.5 ~limit_s:0.005) outcomes in
  checkb "latency violated below p50" false tight.Slo.met

let test_slo_burn_rate_flips () =
  let alert =
    { Slo.fast_window_s = 1.0; slow_window_s = 10.0; burn_threshold = 2.0 }
  in
  let m = Slo.monitor ~alert (Slo.availability "avail" 0.9) in
  (* healthy traffic: no alert *)
  for i = 0 to 49 do
    Slo.observe m ~now:(float_of_int i *. 0.1) ~ok:true ()
  done;
  checkb "healthy: not firing" false (Slo.firing m);
  checki "no alerts yet" 0 (Slo.alerts m);
  (* sustained outage: every request fails -> both windows burn hot *)
  for i = 50 to 149 do
    Slo.observe m ~now:(float_of_int i *. 0.1) ~ok:false ()
  done;
  checkb "outage: firing" true (Slo.firing m);
  checki "one rising edge" 1 (Slo.alerts m);
  let fast, slow = Slo.burn_rates m ~now:14.9 in
  checkb "fast window burns >= threshold" true (fast >= 2.0);
  checkb "slow window burns >= threshold" true (slow >= 2.0);
  (* recovery: the fast window clears first and the alert stops firing *)
  for i = 150 to 400 do
    Slo.observe m ~now:(float_of_int i *. 0.1) ~ok:true ()
  done;
  checkb "recovered: not firing" false (Slo.firing m);
  checki "still exactly one alert" 1 (Slo.alerts m);
  let snap = Slo.snapshot m in
  checki "observed everything" 401 snap.Slo.total;
  checki "bad counted" 100 snap.Slo.bad

let test_orchestrator_slo_wiring () =
  let registry = Metrics.create_registry () in
  let cluster =
    Everest_platform.Cluster.create [ Everest_platform.Cluster.power9_node "p9" ]
  in
  let orch = Rt.Orchestrator.create ~registry cluster ~host_name:"p9" in
  let _ =
    Rt.Orchestrator.deploy orch ~kname:"k"
      ~impls:
        [ ("sw", Rt.Orchestrator.Sw { flops = 5e8; bytes = 1e5; threads = 2 }) ]
      ~knowledge:
        (Everest_autotune.Knowledge.create "k"
           [ { Everest_autotune.Knowledge.variant = "sw"; features = [];
               metrics = [ ("time_s", 0.01) ] } ])
      ~goal:
        (Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s"))
  in
  let m = Slo.monitor (Slo.availability "avail" 0.9) in
  let n = 20 in
  let log =
    Rt.Orchestrator.serve orch ~kernel:"k" ~n
      ~policy:(Rt.Orchestrator.Fixed "sw")
      ~fail:(fun ~req ~variant:_ ~attempt:_ -> req mod 2 = 0)
      ~max_attempts:1 ~slos:[ m ] ()
  in
  checki "monitor saw every request" n (Slo.observed m);
  (* completion times come off the simulated clock, monotone over the log *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Rt.Orchestrator.t_done <= b.Rt.Orchestrator.t_done && monotone rest
    | _ -> true
  in
  checkb "t_done monotone" true (monotone log);
  let snap = Slo.snapshot m in
  checkb "violated at 50% availability" false snap.Slo.met;
  (* end-of-run gauges were published, labelled by monitor name *)
  (match
     Metrics.find ~registry
       ~labels:[ ("kernel", "k"); ("slo", "avail") ]
       "orchestrator_slo_budget_used"
   with
  | Some { Metrics.value = Metrics.Gauge g; _ } ->
      checkb "budget gauge shows exhaustion" true (!g > 1.0)
  | _ -> Alcotest.fail "slo gauge missing");
  (* batch evaluation over the request log agrees with the online monitor *)
  let batch =
    Slo.evaluate (Slo.availability "avail" 0.9)
      (Rt.Orchestrator.slo_outcomes log)
  in
  checkf "batch = online" snap.Slo.attained batch.Slo.attained

(* ---- report + regress ----------------------------------------------------------- *)

let test_report_roundtrip () =
  let _, stats = traced_run () in
  let report = Lazy.force stats.Wf.Executor.report in
  let js = Json.to_string ~pretty:true (Report.to_json report) in
  let back = Report.of_json (Json.parse js) in
  checkb "round-trip preserves the report" true
    (Json.to_string (Report.to_json back)
    = Json.to_string (Report.to_json report));
  (* and therefore the self-diff is empty *)
  let changes =
    Regress.diff ~before:(Report.to_json report) ~after:(Report.to_json back) ()
  in
  checki "self-diff clean" 0 (List.length changes)

let test_untraced_report_is_partial () =
  let dag = Wf.Dag.layered ~seed:3 ~layers:3 ~width:2 ~flops:1e9 ~bytes:1e5 () in
  let registry = Metrics.create_registry () in
  let _, stats =
    Wf.Executor.run_on_demonstrator ~policy:"min-load" ~registry dag
  in
  checkb "no spans without a tracer" true (stats.Wf.Executor.span_log = []);
  let report = Lazy.force stats.Wf.Executor.report in
  checkb "no critical path without a trace" true (report.Report.r_cp = None);
  checkb "no utilization without a trace" true (report.Report.r_util = None);
  checki "tasks still counted" (Wf.Dag.size dag) report.Report.r_tasks_done;
  checkb "quantiles from the registry" true (report.Report.r_quantiles <> []);
  checkb "completion slo met" true
    (List.exists
       (fun (r : Slo.result) -> r.Slo.res_kind = "completion" && r.Slo.met)
       report.Report.r_slos)

let test_json_number_roundtrip () =
  (* %.17g printing must re-parse to the identical float, or the CI
     self-diff job breaks *)
  let xs = [ 4.3530518896161894; 1e-9; 0.1; 3.0; 1.0 /. 3.0; 1e15; 6.02e23 ] in
  List.iter
    (fun x ->
      match Json.parse (Json.to_string (Json.Num x)) with
      | Json.Num y ->
          Alcotest.check (Alcotest.float 0.0)
            (Printf.sprintf "roundtrip %.17g" x)
            x y
      | _ -> Alcotest.fail "expected a number")
    xs

let test_regress_flags_regressions () =
  let _, stats = traced_run () in
  let report = Lazy.force stats.Wf.Executor.report in
  let before = Report.to_json report in
  let perturb factor = function
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "makespan_s" then (k, Json.Num (Json.to_num v *. factor))
               else (k, v))
             kvs)
    | j -> j
  in
  (* +50% makespan is a regression *)
  let worse = Regress.diff ~before ~after:(perturb 1.5 before) () in
  checkb "slower makespan flagged" true
    (List.exists
       (fun (c : Regress.change) ->
         c.Regress.c_path = "makespan_s" && c.Regress.c_regression)
       worse);
  (* -50% is a change, not a regression *)
  let better = Regress.diff ~before ~after:(perturb 0.5 before) () in
  checkb "faster makespan is a change" true
    (List.exists
       (fun (c : Regress.change) -> c.Regress.c_path = "makespan_s")
       better);
  checkb "faster makespan not a regression" true
    (not
       (List.exists
          (fun (c : Regress.change) ->
            c.Regress.c_path = "makespan_s" && c.Regress.c_regression)
          better));
  (* within tolerance: silent *)
  let noise =
    Regress.diff ~tolerance:0.05 ~before ~after:(perturb 1.01 before) ()
  in
  checkb "1% within 5% tolerance" true
    (not
       (List.exists
          (fun (c : Regress.change) -> c.Regress.c_path = "makespan_s")
          noise));
  (* an SLO flipping met -> unmet is always a regression *)
  let flip_met = function
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               match (k, v) with
               | "slos", Json.Arr slos ->
                   ( k,
                     Json.Arr
                       (List.map
                          (function
                            | Json.Obj slo ->
                                Json.Obj
                                  (List.map
                                     (fun (sk, sv) ->
                                       if sk = "met" then (sk, Json.Bool false)
                                       else (sk, sv))
                                     slo)
                            | s -> s)
                          slos) )
               | _ -> (k, v))
             kvs)
    | j -> j
  in
  let slo_broken = Regress.diff ~before ~after:(flip_met before) () in
  checkb "met->unmet is a regression" true
    (List.exists
       (fun (c : Regress.change) ->
         c.Regress.c_regression
         && String.length c.Regress.c_path >= 4
         && String.sub c.Regress.c_path 0 4 = "slos")
       slo_broken)

let () =
  Alcotest.run "everest_observe"
    [
      ( "span-dag",
        [ Alcotest.test_case "agrees with naive scans" `Quick
            test_span_dag_agrees_with_naive ] );
      ( "critical-path",
        [ Alcotest.test_case "exact on a chain" `Quick
            test_critical_path_exact_chain;
          Alcotest.test_case "wait attribution" `Quick
            test_critical_path_attributes_wait;
          QCheck_alcotest.to_alcotest prop_cp_duration_equals_makespan ] );
      ( "utilization",
        [ Alcotest.test_case "reconciles with the span log" `Quick
            test_utilization_reconciles;
          Alcotest.test_case "idle gaps" `Quick test_utilization_gaps ] );
      ( "slo",
        [ Alcotest.test_case "batch evaluation" `Quick test_slo_evaluate;
          Alcotest.test_case "burn-rate alert flips" `Quick
            test_slo_burn_rate_flips;
          Alcotest.test_case "orchestrator wiring" `Quick
            test_orchestrator_slo_wiring ] );
      ( "report",
        [ Alcotest.test_case "json round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "untraced is partial" `Quick
            test_untraced_report_is_partial;
          Alcotest.test_case "number round-trip" `Quick
            test_json_number_roundtrip ] );
      ( "regress",
        [ Alcotest.test_case "flags regressions" `Quick
            test_regress_flags_regressions ] );
    ]
