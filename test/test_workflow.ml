(* Tests for everest_workflow: DAG construction, schedulers, and plan
   execution on the simulated platform. *)

open Everest_workflow
open Everest_platform

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let chain n =
  Dag.create "chain"
    (List.init n (fun i ->
         Dag.task ~id:i ~name:(Printf.sprintf "c%d" i)
           ~inputs:(if i = 0 then [] else [ i - 1 ])
           ~out_bytes:4096
           ~impls:[ Dag.Cpu { flops = 1e9; bytes = 4096.0; threads = 1 } ]
           ()))

(* ---- dag -------------------------------------------------------------------- *)

let test_dag_validation () =
  (match
     Dag.create "bad"
       [ Dag.task ~id:0 ~name:"a" ~inputs:[ 0 ] ~out_bytes:1 ~impls:[] () ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self-dependency must be rejected");
  let d = Dag.fork_join ~width:4 ~worker_flops:1e9 ~worker_bytes:1e6 ~chunk_bytes:1024 () in
  checki "fork-join size" 6 (Dag.size d);
  checki "join inputs" 4 (List.length (Dag.find d 5).Dag.inputs);
  checki "source consumers" 4 (List.length (Dag.consumers d 0))

let test_layered_generator () =
  let d = Dag.layered ~seed:7 ~layers:4 ~width:5 ~flops:1e8 ~bytes:1e5 () in
  checki "20 tasks" 20 (Dag.size d);
  (* deterministic *)
  let d2 = Dag.layered ~seed:7 ~layers:4 ~width:5 ~flops:1e8 ~bytes:1e5 () in
  checkb "deterministic" true
    (Array.for_all2
       (fun (a : Dag.task) b -> a.Dag.inputs = b.Dag.inputs)
       d.Dag.tasks d2.Dag.tasks)

(* ---- schedulers ---------------------------------------------------------------- *)

let test_all_policies_execute () =
  List.iter
    (fun policy ->
      let d = Dag.layered ~seed:3 ~layers:3 ~width:4 ~flops:1e9 ~bytes:1e5 () in
      let _, stats = Executor.run_on_demonstrator ~policy d in
      checkb (policy ^ " completes") true (stats.Executor.makespan > 0.0);
      checkb (policy ^ " all tasks finish") true
        (Array.for_all (fun f -> f >= 0.0) stats.Executor.task_finish))
    [ "round-robin"; "min-load"; "heft"; "heft-locality" ]

let test_chain_respects_deps () =
  let d = chain 5 in
  let _, stats = Executor.run_on_demonstrator ~policy:"heft" d in
  let f = stats.Executor.task_finish in
  for i = 1 to 4 do
    checkb "monotone chain" true (f.(i) > f.(i - 1))
  done

let test_locality_beats_round_robin_on_heavy_data () =
  (* Large intermediate data: shipping it around dominates, so the
     locality-aware plan should beat blind round-robin. *)
  let d = Dag.layered ~seed:11 ~layers:5 ~width:4 ~flops:1e8 ~bytes:5e8 () in
  let _, rr = Executor.run_on_demonstrator ~policy:"round-robin" d in
  let _, loc = Executor.run_on_demonstrator ~policy:"heft-locality" d in
  checkb "locality wins" true
    (loc.Executor.makespan < rr.Executor.makespan);
  checkb "locality moves less data" true
    (loc.Executor.bytes_moved <= rr.Executor.bytes_moved)

let test_pinned_source () =
  let d =
    Dag.create "pinned"
      [ Dag.task ~id:0 ~name:"sensor" ~inputs:[] ~out_bytes:1024
          ~pinned:(Some "ep0")
          ~impls:[ Dag.Cpu { flops = 1e6; bytes = 1024.0; threads = 1 } ]
          ();
        Dag.task ~id:1 ~name:"proc" ~inputs:[ 0 ] ~out_bytes:64
          ~impls:[ Dag.Cpu { flops = 1e8; bytes = 1024.0; threads = 1 } ]
          () ]
  in
  let c = Cluster.everest_demonstrator () in
  let plan = Scheduler.locality c d in
  Alcotest.check Alcotest.string "source stays on endpoint" "ep0"
    plan.Scheduler.assignments.(0).Scheduler.node

let test_fpga_impl_selected_when_faster () =
  (* a kernel with a drastically better FPGA estimate must land on an FPGA
     node under HEFT *)
  let est =
    { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
      cycles = 1000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 5.0 }
  in
  let d =
    Dag.create "hw"
      [ Dag.task ~id:0 ~name:"k" ~inputs:[] ~out_bytes:1024
          ~impls:
            [ Dag.Cpu { flops = 1e12; bytes = 1e6; threads = 1 };
              Dag.Fpga { bitstream = "k"; estimate = est; in_bytes = 4096; out_bytes = 1024 } ]
          () ]
  in
  let c = Cluster.everest_demonstrator () in
  let plan = Scheduler.heft c d in
  (match plan.Scheduler.assignments.(0).Scheduler.impl with
  | Dag.Fpga _ -> ()
  | Dag.Cpu _ -> Alcotest.fail "expected FPGA variant chosen");
  let stats = Executor.execute c plan in
  checkb "fast finish" true (stats.Executor.makespan < 0.5)

let test_executor_stats () =
  let d = Dag.fork_join ~width:8 ~worker_flops:1e9 ~worker_bytes:1e6 ~chunk_bytes:65536 () in
  let _, stats = Executor.run_on_demonstrator ~policy:"min-load" d in
  checkb "energy accounted" true (stats.Executor.energy_j > 0.0);
  let total_tasks =
    List.fold_left (fun acc (_, k) -> acc + k) 0 stats.Executor.per_node_tasks
  in
  checki "all tasks counted" (Dag.size d) total_tasks

(* ---- fault tolerance ------------------------------------------------------------ *)

let test_failure_recovery () =
  (* run a wide fork-join; kill one cloud node early; everything must still
     complete, with retries or diversions recorded *)
  let d = Dag.fork_join ~width:16 ~worker_flops:5e9 ~worker_bytes:1e6 ~chunk_bytes:65536 () in
  let _, clean = Executor.run_on_demonstrator ~policy:"min-load" d in
  let _, faulty =
    Executor.run_on_demonstrator ~policy:"min-load"
      ~failures:[ ("cf0", 1e-4); ("cf1", 1e-4) ]
      d
  in
  checkb "all tasks complete despite failures" true
    (Array.for_all (fun f -> f >= 0.0) faulty.Executor.task_finish);
  checkb "failures cost time" true
    (faulty.Executor.makespan >= clean.Executor.makespan)

let test_failure_mid_run_retries () =
  (* a long task on p9 that dies mid-execution must be retried elsewhere *)
  let d =
    Dag.create "long"
      [ Dag.task ~id:0 ~name:"big" ~inputs:[] ~out_bytes:64
          ~pinned:(Some "p9")
          ~impls:[ Dag.Cpu { flops = 1e12; bytes = 1.0; threads = 1 } ]
          () ]
  in
  let c = Cluster.everest_demonstrator () in
  let plan = Scheduler.min_load c d in
  let stats = Executor.execute ~failures:[ ("p9", 0.5) ] c plan in
  checkb "task finished" true (stats.Executor.task_finish.(0) >= 0.0);
  checkb "was retried" true (stats.Executor.retries >= 1)

let test_all_nodes_failed () =
  let d = chain 2 in
  let c = Cluster.create [ Cluster.power9_node "p9" ] in
  let plan = Scheduler.min_load c d in
  match Executor.execute ~failures:[ ("p9", 0.0) ] c plan with
  | exception Executor.Execution_failed { partial; _ } ->
      checki "no task completed" 0
        (Array.fold_left
           (fun acc f -> if f >= 0.0 then acc + 1 else acc)
           0 partial.Executor.task_finish)
  | _ -> Alcotest.fail "must fail when no node survives"

(* ---- data placement --------------------------------------------------------------- *)

let test_placement_replicates_hot_data () =
  (* one producer on the cloud, many consumers pinned to distinct edge
     nodes over slow links: parallel replication must beat serial pulls *)
  let width = 4 in
  let d =
    Dag.create "fanout"
      (Dag.task ~id:0 ~name:"src" ~inputs:[] ~out_bytes:50_000_000
         ~pinned:(Some "p9")
         ~impls:[ Dag.Cpu { flops = 1e6; bytes = 5e7; threads = 1 } ]
         ()
      :: List.init width (fun i ->
             Dag.task ~id:(i + 1)
               ~name:(Printf.sprintf "edge%d_task" i)
               ~inputs:[ 0 ] ~out_bytes:100
               ~pinned:(Some (Printf.sprintf "edge%d" i))
               ~impls:[ Dag.Cpu { flops = 1e6; bytes = 100.0; threads = 1 } ]
               ()))
  in
  let c = Cluster.everest_demonstrator ~edges:width () in
  let plan = Scheduler.locality c d in
  let allocs = Placement.optimize c plan in
  checki "one shared object" 1 (List.length allocs);
  let a = List.hd allocs in
  checkb "replication chosen" true
    (a.Placement.decision = Placement.Replicate_to_consumers);
  checkb "saving positive" true (Placement.saving allocs > 0.3)

let test_placement_keeps_local_data () =
  (* producer and single consumer co-located: nothing to optimize *)
  let d = chain 2 in
  let c = Cluster.create [ Cluster.power9_node "p9" ] in
  let plan = Scheduler.min_load c d in
  let allocs = Placement.optimize c plan in
  List.iter
    (fun (a : Placement.allocation) ->
      checkb "keep at producer" true (a.Placement.decision = Placement.Keep_at_producer);
      checkb "zero cost locally" true (a.Placement.chosen_cost_s = 0.0))
    allocs

let test_placement_never_worse () =
  let d = Dag.layered ~seed:21 ~layers:4 ~width:4 ~flops:1e8 ~bytes:1e7 () in
  let c = Cluster.everest_demonstrator () in
  List.iter
    (fun policy ->
      let plan = (Option.get (Scheduler.by_name policy)) c d in
      let allocs = Placement.optimize c plan in
      checkb (policy ^ ": chosen <= naive") true
        (Placement.total_chosen allocs <= Placement.total_pull allocs +. 1e-12))
    [ "round-robin"; "min-load"; "heft"; "heft-locality" ]

(* property: every plan assigns real nodes and FPGA impls only where FPGAs
   exist (modulo pinned fallbacks, which keep the first impl) *)
let prop_plans_well_formed =
  QCheck.Test.make ~count:20 ~name:"plans reference existing, capable nodes"
    QCheck.(pair (int_range 2 4) (int_range 2 5))
    (fun (layers, width) ->
      let d = Dag.layered ~seed:(layers + (width * 13)) ~layers ~width ~flops:1e8 ~bytes:1e5 () in
      let c = Cluster.everest_demonstrator () in
      List.for_all
        (fun mk ->
          let plan = mk c d in
          Array.for_all
            (fun (a : Scheduler.assignment) ->
              let node = Cluster.find_node c a.Scheduler.node in
              match a.Scheduler.impl with
              | Dag.Cpu _ -> true
              | Dag.Fpga _ -> Node.has_fpga node)
            plan.Scheduler.assignments)
        [ Scheduler.round_robin; Scheduler.min_load;
          Scheduler.heft ~locality_aware:false; Scheduler.locality ])

(* property: makespan is at least the best single-task time and finite *)
let prop_makespan_sane =
  QCheck.Test.make ~count:25 ~name:"makespan finite and positive"
    QCheck.(pair (int_range 2 5) (int_range 2 6))
    (fun (layers, width) ->
      let d = Dag.layered ~seed:(layers * 10 + width) ~layers ~width ~flops:1e8 ~bytes:1e4 () in
      let _, stats = Executor.run_on_demonstrator ~policy:"heft" d in
      Float.is_finite stats.Executor.makespan && stats.Executor.makespan > 0.0)

(* ---- scale engineering (e17) ------------------------------------------------ *)

(* Random small/medium DAGs across the three generator families, ≤ ~200
   tasks so the quadratic reference scheduler stays cheap in the property
   loop. *)
let arbitrary_dag =
  QCheck.(
    map
      (fun (kind, seed, a, b) ->
        match kind with
        | 0 ->
            Dag.layered ~seed ~layers:(2 + (a mod 8)) ~width:(1 + (b mod 12))
              ~flops:2e9 ~bytes:1e6 ()
        | 1 ->
            Dag.fork_join ~width:(2 + (a mod 40)) ~worker_flops:1e9
              ~worker_bytes:1e6
              ~chunk_bytes:(1024 * (1 + (b mod 64)))
              ()
        | _ ->
            Dag.ensemble ~seed ~members:(1 + (a mod 10)) ~stages:(1 + (b mod 8))
              ~stage_flops:1e9 ~stage_bytes:1e5 ())
      (quad (int_range 0 2) (int_range 0 1000) (int_range 0 1000)
         (int_range 0 1000)))

(* satellite: the cached reverse adjacency must agree with the historical
   O(n·deg) scan for every task, in the same (ascending, deduplicated)
   order *)
let prop_consumers_match_naive =
  QCheck.Test.make ~count:50 ~name:"Dag.consumers = consumers_naive"
    arbitrary_dag
    (fun d ->
      List.for_all
        (fun i ->
          Dag.consumers d i = Dag.consumers_naive d i
          && Dag.out_degree d i = List.length (Dag.consumers_naive d i))
        (List.init (Dag.size d) Fun.id))

(* tentpole: the memoized array-based HEFT must produce plans
   assignment-identical to the pre-PR implementation *)
let prop_heft_matches_reference =
  QCheck.Test.make ~count:30 ~name:"heft = heft_reference (both variants)"
    arbitrary_dag
    (fun d ->
      let c = Cluster.everest_demonstrator () in
      List.for_all
        (fun locality_aware ->
          let fast = Scheduler.heft ~locality_aware c d in
          let slow = Scheduler.heft_reference ~locality_aware c d in
          fast.Scheduler.assignments = slow.Scheduler.assignments
          && String.equal fast.Scheduler.policy slow.Scheduler.policy)
        [ false; true ])

(* satellite: repairing a plan after node death must land within ε of a
   full reschedule over the survivors.  ε is calibrated loose (35%):
   delta keeps unaffected placements frozen, so it trades some quality for
   cone-local decision time; what the property pins is that it never
   collapses (and never beats physics: both makespans are executable). *)
let prop_delta_close_to_full =
  QCheck.Test.make ~count:15 ~name:"heft_delta within ε of full reschedule"
    arbitrary_dag
    (fun d ->
      let dead = [ "p9" ] in
      let run plan =
        let c' = Cluster.everest_demonstrator () in
        let stats = Executor.execute c' { plan with Scheduler.dag = d } in
        stats.Executor.makespan
      in
      let c = Cluster.everest_demonstrator () in
      let base = Scheduler.heft c d in
      let delta = Scheduler.heft_delta c base ~dead in
      let full = Scheduler.heft ~exclude:dead c d in
      (* delta must really vacate the dead node *)
      Array.for_all
        (fun (a : Scheduler.assignment) ->
          not (List.mem a.Scheduler.node dead))
        delta.Scheduler.assignments
      &&
      let m_delta = run delta and m_full = run full in
      Float.is_finite m_delta && m_delta > 0.0
      && m_delta <= m_full *. 1.35 +. 1e-9)

let plan_digest (plan : Scheduler.plan) =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun (a : Scheduler.assignment) ->
      Buffer.add_string buf a.Scheduler.node;
      Buffer.add_char buf '/';
      Buffer.add_string buf (Dag.impl_name a.Scheduler.impl);
      Buffer.add_char buf ';')
    plan.Scheduler.assignments;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Golden digests captured from the pre-memoization scheduler on the
   e14/e15 workloads (demonstrator cluster).  Any drift here means the
   scale overhaul changed placement, which it must not. *)
let test_plan_goldens () =
  let checks = Alcotest.check Alcotest.string in
  let e14 = Dag.layered ~seed:11 ~layers:5 ~width:4 ~flops:2e9 ~bytes:1e6 () in
  let e15 = Dag.layered ~seed:7 ~layers:5 ~width:4 ~flops:2e9 ~bytes:1e6 () in
  let digest policy dag =
    let c = Cluster.everest_demonstrator () in
    plan_digest ((Option.get (Scheduler.by_name policy)) c dag)
  in
  List.iter
    (fun (name, dag, policy, expect) ->
      checks (name ^ " " ^ policy) expect (digest policy dag))
    [ ("e14", e14, "round-robin", "fdfa36d88cdac2a3e5cf751588b2876a");
      ("e14", e14, "min-load", "ad03b338ce475cf4acda9efabed721b4");
      ("e14", e14, "heft", "cdc35b0538c938f189f0e000ffb40305");
      ("e14", e14, "heft-locality", "4669a6d5ac50e3387f3b734399c8171b");
      ("e15", e15, "round-robin", "fdfa36d88cdac2a3e5cf751588b2876a");
      ("e15", e15, "min-load", "ad03b338ce475cf4acda9efabed721b4");
      ("e15", e15, "heft", "4aafecd46c3d80327977d421f1f59d13");
      ("e15", e15, "heft-locality", "0b25ebf2263a5752aa8c121b1a0ea4e8") ]

let test_ensemble_generator () =
  let d = Dag.ensemble ~seed:3 ~members:4 ~stages:3 ~stage_flops:1e9 ~stage_bytes:1e5 () in
  checki "size = 1 + members*stages + 1" 14 (Dag.size d);
  checki "source fan-out" 4 (List.length (Dag.consumers d 0));
  checki "reducer fan-in" 4 (List.length (Dag.find d 13).Dag.inputs);
  let d2 = Dag.ensemble ~seed:3 ~members:4 ~stages:3 ~stage_flops:1e9 ~stage_bytes:1e5 () in
  checkb "deterministic" true
    (Array.for_all2
       (fun (a : Dag.task) b ->
         a.Dag.inputs = b.Dag.inputs && a.Dag.impls = b.Dag.impls)
       d.Dag.tasks d2.Dag.tasks)

(* satellite: construction errors must name the dag, the offending task
   (id and name) and the bad input, so a failure inside a generated
   million-task graph is actionable *)
let test_dag_error_messages () =
  let expect_msg parts thunk =
    match thunk () with
    | exception Invalid_argument msg ->
        List.iter
          (fun part ->
            checkb
              (Printf.sprintf "%S mentions %S" msg part)
              true
              (Astring.String.is_infix ~affix:part msg))
          parts
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  let t ~id ~inputs =
    Dag.task ~id ~name:(Printf.sprintf "t%d" id) ~inputs ~out_bytes:1
      ~impls:[ Dag.Cpu { flops = 1.0; bytes = 1.0; threads = 1 } ]
      ()
  in
  expect_msg [ "\"gaps\""; "task 5"; "\"t5\""; "expected id 1" ] (fun () ->
      Dag.create "gaps" [ t ~id:0 ~inputs:[]; t ~id:5 ~inputs:[] ]);
  expect_msg [ "\"fwd\""; "task 1"; "\"t1\""; "input 1" ] (fun () ->
      Dag.create "fwd" [ t ~id:0 ~inputs:[]; t ~id:1 ~inputs:[ 1 ] ]);
  expect_msg [ "\"neg\""; "task 1"; "input -3"; "negative" ] (fun () ->
      Dag.create "neg" [ t ~id:0 ~inputs:[]; t ~id:1 ~inputs:[ -3 ] ]);
  expect_msg [ "\"dup\""; "task 2"; "\"t2\""; "input 1"; "more than once" ]
    (fun () ->
      Dag.create "dup"
        [ t ~id:0 ~inputs:[]; t ~id:1 ~inputs:[ 0 ];
          t ~id:2 ~inputs:[ 1; 0; 1 ] ])

(* satellite: a functional update of [tasks] (the heft_delta caller
   pattern) must never serve the original's cached reverse adjacency —
   and the original must keep its own *)
let prop_functional_update_never_stale =
  QCheck.Test.make ~count:50 ~name:"functional tasks update never stale"
    QCheck.(pair arbitrary_dag (int_range 0 1000))
    (fun (d, salt) ->
      let n = Dag.size d in
      (* drop one task's inputs, as a cone repair that rewires does *)
      let victim = 1 + (salt mod (max 1 (n - 1))) in
      let tasks = Array.copy d.Dag.tasks in
      tasks.(victim) <- { (tasks.(victim)) with Dag.inputs = [] };
      let d2 = { d with Dag.tasks = tasks } in
      let ids = List.init n Fun.id in
      List.for_all
        (fun i -> Dag.consumers d2 i = Dag.consumers_naive d2 i)
        ids
      && List.for_all
           (fun i -> Dag.consumers d i = Dag.consumers_naive d i)
           ids)

let () =
  Alcotest.run "everest_workflow"
    [
      ( "dag",
        [ Alcotest.test_case "validation" `Quick test_dag_validation;
          Alcotest.test_case "error messages" `Quick test_dag_error_messages;
          Alcotest.test_case "layered gen" `Quick test_layered_generator;
          Alcotest.test_case "ensemble gen" `Quick test_ensemble_generator;
          QCheck_alcotest.to_alcotest prop_consumers_match_naive;
          QCheck_alcotest.to_alcotest prop_functional_update_never_stale ] );
      ( "schedulers",
        [ Alcotest.test_case "all policies" `Quick test_all_policies_execute;
          Alcotest.test_case "chain deps" `Quick test_chain_respects_deps;
          Alcotest.test_case "locality wins" `Quick test_locality_beats_round_robin_on_heavy_data;
          Alcotest.test_case "pinned source" `Quick test_pinned_source;
          Alcotest.test_case "fpga variant" `Quick test_fpga_impl_selected_when_faster ] );
      ( "scale",
        [ Alcotest.test_case "plan goldens" `Quick test_plan_goldens;
          QCheck_alcotest.to_alcotest prop_heft_matches_reference;
          QCheck_alcotest.to_alcotest prop_delta_close_to_full ] );
      ( "executor",
        [ Alcotest.test_case "stats" `Quick test_executor_stats;
          QCheck_alcotest.to_alcotest prop_makespan_sane;
          QCheck_alcotest.to_alcotest prop_plans_well_formed ] );
      ( "placement",
        [ Alcotest.test_case "replicates hot data" `Quick test_placement_replicates_hot_data;
          Alcotest.test_case "keeps local" `Quick test_placement_keeps_local_data;
          Alcotest.test_case "never worse" `Quick test_placement_never_worse ] );
      ( "fault-tolerance",
        [ Alcotest.test_case "recovery" `Quick test_failure_recovery;
          Alcotest.test_case "mid-run retry" `Quick test_failure_mid_run_retries;
          Alcotest.test_case "total failure" `Quick test_all_nodes_failed ] );
    ]
