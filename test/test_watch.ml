(* everest_watch: series ring/downsampling, sketch merge laws, change
   detectors (never-alarm / always-alarm properties), phase segmentation,
   rules, the facade and the dashboard's determinism. *)

module Series = Everest_watch.Series
module Sketch = Everest_watch.Sketch
module Detect = Everest_watch.Detect
module Rules = Everest_watch.Rules
module Scrape = Everest_watch.Scrape
module Watch = Everest_watch.Watch
module Live = Everest_watch.Live
module Metrics = Everest_telemetry.Metrics

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let checks = Alcotest.(check string)

(* ---- series ---------------------------------------------------------------------- *)

let test_series_ring_bounds () =
  let s = Series.create ~capacity:8 ~tiers:1 ~name:"x" ~labels:[] () in
  for i = 0 to 99 do
    Series.observe s ~t:(float_of_int i) (float_of_int i)
  done;
  let pts = Series.points s ~tier:0 in
  checki "capacity bounds the ring" 8 (List.length pts);
  checki "raw samples still counted" 100 (Series.samples s);
  (* the ring keeps the newest points *)
  checkf "oldest survivor" 92.0 (List.hd pts).Series.pt_t;
  checkf "latest" 99.0 (Option.get (Series.latest s)).Series.pt_last

let test_series_downsampling () =
  let s =
    Series.create ~capacity:64 ~tiers:2 ~factor:10 ~res_s:0.01 ~name:"x"
      ~labels:[] ()
  in
  (* 100 samples over 1 s: tier 1 (res 0.1 s) should aggregate 10 raw
     samples per point *)
  for i = 0 to 99 do
    Series.observe s ~t:(0.01 *. float_of_int i) (float_of_int i)
  done;
  let t1 = Series.points s ~tier:1 in
  checki "tier-1 point count" 10 (List.length t1);
  let p0 = List.hd t1 in
  checki "tier-1 aggregates 10 samples" 10 p0.Series.pt_count;
  checkf "tier-1 min" 0.0 p0.Series.pt_min;
  checkf "tier-1 max" 9.0 p0.Series.pt_max;
  checkf "tier-1 mean" 4.5 (Series.pt_mean p0)

let test_series_between_picks_tier () =
  let s =
    Series.create ~capacity:16 ~tiers:2 ~factor:10 ~res_s:0.01 ~name:"x"
      ~labels:[] ()
  in
  for i = 0 to 199 do
    Series.observe s ~t:(0.01 *. float_of_int i) 1.0
  done;
  (* raw tier only reaches back 16 samples = 0.16 s; asking for the full
     2 s span must fall back to the coarser tier *)
  let recent = Series.between s ~t0:1.9 ~t1:2.0 in
  let full = Series.between s ~t0:0.0 ~t1:2.0 in
  checkb "recent span served" true (recent <> []);
  checkb "full span falls back to coarse tier" true (List.length full > 0);
  checkb "coarse points aggregate" true
    (List.exists (fun p -> p.Series.pt_count > 1) full)

let test_store_sorted_iteration () =
  let st = Series.Store.create () in
  Series.Store.observe st ~now:0.0 ~name:"zeta" ~labels:[] 1.0;
  Series.Store.observe st ~now:0.0 ~name:"alpha" ~labels:[ ("b", "2") ] 1.0;
  Series.Store.observe st ~now:0.0 ~name:"alpha" ~labels:[ ("a", "1") ] 1.0;
  let names = List.map Series.name (Series.Store.to_list st) in
  Alcotest.(check (list string)) "sorted by (name, labels)"
    [ "alpha"; "alpha"; "zeta" ] names;
  checki "size" 3 (Series.Store.size st);
  checkb "label order normalized" true
    (Series.Store.find st ~name:"alpha" ~labels:[ ("a", "1") ] <> None)

(* ---- sketch ---------------------------------------------------------------------- *)

let sketch_of values =
  let s = Sketch.create () in
  List.iter (Sketch.observe s) values;
  s

let sketch_eq a b =
  Sketch.count a = Sketch.count b
  && Float.abs (Sketch.sum a -. Sketch.sum b) < 1e-9
  && Float.abs (Sketch.min_v a -. Sketch.min_v b) < 1e-12
  && Float.abs (Sketch.max_v a -. Sketch.max_v b) < 1e-12
  && List.for_all
       (fun q -> Float.abs (Sketch.quantile a q -. Sketch.quantile b q) < 1e-12)
       [ 0.1; 0.5; 0.9; 0.99 ]

let prop_merge_associative =
  QCheck.Test.make ~count:100 ~name:"sketch merge is associative"
    QCheck.(
      triple
        (list_of_size QCheck.Gen.(int_range 0 50) (float_range 0.0 1e3))
        (list_of_size QCheck.Gen.(int_range 0 50) (float_range 0.0 1e3))
        (list_of_size QCheck.Gen.(int_range 0 50) (float_range 0.0 1e3)))
    (fun (xs, ys, zs) ->
      let a () = sketch_of xs and b () = sketch_of ys and c () = sketch_of zs in
      let l = Sketch.merge (Sketch.merge (a ()) (b ())) (c ()) in
      let r = Sketch.merge (a ()) (Sketch.merge (b ()) (c ())) in
      sketch_eq l r)

let prop_merge_commutative =
  QCheck.Test.make ~count:100 ~name:"sketch merge is commutative"
    QCheck.(
      pair
        (list_of_size QCheck.Gen.(int_range 0 50) (float_range 0.0 1e3))
        (list_of_size QCheck.Gen.(int_range 0 50) (float_range 0.0 1e3)))
    (fun (xs, ys) ->
      sketch_eq
        (Sketch.merge (sketch_of xs) (sketch_of ys))
        (Sketch.merge (sketch_of ys) (sketch_of xs)))

let prop_merge_equals_union =
  QCheck.Test.make ~count:100 ~name:"merge of parts equals sketch of union"
    QCheck.(
      pair
        (list_of_size QCheck.Gen.(int_range 0 50) (float_range 0.0 1e3))
        (list_of_size QCheck.Gen.(int_range 0 50) (float_range 0.0 1e3)))
    (fun (xs, ys) ->
      sketch_eq
        (Sketch.merge (sketch_of xs) (sketch_of ys))
        (sketch_of (xs @ ys)))

let test_sketch_quantile_matches_metrics () =
  (* the sketch reuses the Metrics bucket layout, so on identical data the
     estimates must agree exactly *)
  let values = [ 0.001; 0.004; 0.004; 0.02; 0.3; 2.0 ] in
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r "lat" in
  List.iter (Metrics.observe h) values;
  let s = sketch_of values in
  List.iter
    (fun q ->
      checkf
        (Printf.sprintf "q=%g agrees with Metrics" q)
        (Metrics.quantile h q) (Sketch.quantile s q))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_windowed_rotation () =
  let w = Sketch.Windowed.create ~bucket_s:0.1 ~slots:5 () in
  (* old epoch, then far newer samples: the query over the trailing window
     must only see the new ones *)
  Sketch.Windowed.observe w ~now:0.0 100.0;
  Sketch.Windowed.observe w ~now:10.0 1.0;
  Sketch.Windowed.observe w ~now:10.05 2.0;
  let sk = Sketch.Windowed.query w ~now:10.05 ~window_s:0.5 in
  checki "stale slots rotated out" 2 (Sketch.count sk);
  checkf "max is recent" 2.0 (Sketch.max_v sk);
  checki "samples counts everything ever" 3 (Sketch.Windowed.samples w)

(* ---- detectors ------------------------------------------------------------------- *)

let detector_named = function
  | "ewma" -> Detect.ewma ()
  | "cusum" -> Detect.cusum ()
  | "ph" -> Detect.page_hinkley ()
  | s -> invalid_arg s

let det_gen = QCheck.Gen.oneofl [ "ewma"; "cusum"; "ph" ]

let prop_constant_never_alarms =
  QCheck.Test.make ~count:200 ~name:"constant series never alarms"
    QCheck.(
      make
        ~print:(fun (k, v, n) -> Printf.sprintf "%s v=%g n=%d" k v n)
        QCheck.Gen.(
          triple det_gen (float_range (-1e6) 1e6) (int_range 10 300)))
    (fun (kind, v, n) ->
      let d = detector_named kind in
      let ok = ref true in
      for _ = 1 to n do
        if Detect.step d v = Detect.Alarm then ok := false
      done;
      !ok && Detect.alarms d = 0)

let prop_big_step_always_alarms =
  (* after a noiseless baseline, a step of >= 8 sigma-floors must alarm
     within a short window for both EWMA and CUSUM *)
  QCheck.Test.make ~count:200 ~name:"8-sigma step alarms within window"
    QCheck.(
      make
        ~print:(fun (k, base, step_mag) ->
          Printf.sprintf "%s base=%g step=%g" k base step_mag)
        QCheck.Gen.(
          triple
            (oneofl [ "ewma"; "cusum" ])
            (float_range (-1e3) 1e3)
            (float_range 1.0 1e3)))
    (fun (kind, base, step_mag) ->
      let d = detector_named kind in
      (* noisy-but-tame warmup: alternate +/- around base so sigma0 > 0 *)
      let noise i = if i mod 2 = 0 then 0.01 else -0.01 in
      for i = 1 to 8 do
        ignore (Detect.step d (base +. noise i))
      done;
      (* sigma0 is ~0.01; an 8-sigma step is 0.08, scale by step_mag *)
      let stepped = base +. (0.08 *. step_mag) in
      let alarmed = ref false in
      for _ = 1 to 10 do
        if Detect.step d stepped = Detect.Alarm then alarmed := true
      done;
      !alarmed)

let test_cusum_integrates_small_shift () =
  (* a 1.5-sigma sustained shift: inside the EWMA band, but CUSUM's sums
     integrate it past the threshold *)
  let d = Detect.cusum ~drift:0.5 ~threshold:5.0 () in
  let noise i = if i mod 2 = 0 then 0.01 else -0.01 in
  for i = 1 to 8 do
    ignore (Detect.step d (10.0 +. noise i))
  done;
  let fired = ref false in
  for _ = 1 to 30 do
    if Detect.step d 10.016 = Detect.Alarm then fired := true
  done;
  checkb "sustained small shift caught" true !fired

let test_ewma_recenters_after_step () =
  let d = Detect.ewma ~alpha:0.3 ~k:4.0 () in
  let noise i = if i mod 2 = 0 then 0.01 else -0.01 in
  for i = 1 to 8 do
    ignore (Detect.step d (1.0 +. noise i))
  done;
  ignore (Detect.step d 2.0);
  checkb "step fires" true (Detect.firing d);
  (* keep feeding the new level: the band re-centers and the alarm clears *)
  for _ = 1 to 50 do
    ignore (Detect.step d 2.0)
  done;
  checkb "new normal settles" false (Detect.firing d);
  checki "one rising edge" 1 (Detect.alarms d)

let test_detector_reset () =
  let d = Detect.cusum () in
  for i = 1 to 8 do
    ignore (Detect.step d (float_of_int (i mod 2)))
  done;
  for _ = 1 to 10 do
    ignore (Detect.step d 100.0)
  done;
  checkb "alarmed before reset" true (Detect.alarms d > 0);
  Detect.reset d;
  checki "reset clears samples" 0 (Detect.samples d);
  checkb "reset clears firing" false (Detect.firing d);
  checki "reset clears alarms" 0 (Detect.alarms d)

(* ---- phases ---------------------------------------------------------------------- *)

let test_phase_segmentation () =
  let samples =
    List.init 30 (fun i ->
        let t = float_of_int i in
        let v = if i < 10 then 0.2 else if i < 20 then 0.8 else 0.3 in
        (t, v))
  in
  let ps = Detect.phases ~abs_tol:0.05 ~rel_tol:0.05 samples in
  checki "three phases" 3 (List.length ps);
  let means = List.map (fun p -> p.Detect.ph_mean) ps in
  checkf "phase 1 mean" 0.2 (List.nth means 0);
  checkf "phase 2 mean" 0.8 (List.nth means 1);
  checkf "phase 3 mean" 0.3 (List.nth means 2)

let test_phase_merge_absorbs_blips () =
  let samples =
    List.init 21 (fun i ->
        (float_of_int i, if i = 10 then 5.0 else 1.0))
  in
  (* a single-sample blip is shorter than min_samples: absorbed, one phase *)
  let ps = Detect.phases ~abs_tol:0.05 ~rel_tol:0.05 ~min_samples:2 samples in
  checki "blip absorbed" 1 (List.length ps)

let test_phases_constant () =
  let samples = List.init 50 (fun i -> (float_of_int i, 0.7)) in
  let ps = Detect.phases samples in
  checki "constant timeline is one phase" 1 (List.length ps);
  checkf "mean preserved" 0.7 (List.hd ps).Detect.ph_mean;
  checki "all samples in it" 50 (List.hd ps).Detect.ph_samples

(* ---- rules ----------------------------------------------------------------------- *)

let mk_ctx store =
  { Rules.ctx_store = store; ctx_sketch = (fun _ _ -> None) }

let test_rules_record_then_alert () =
  let store = Series.Store.create () in
  let eng =
    Rules.engine
      [ Rules.record "doubled" (Rules.Mul (Rules.Last ("x", []), Rules.Const 2.0));
        (* sees "doubled" in the same tick: declaration order *)
        Rules.alert "too-big" (Rules.Last ("doubled", [])) (Rules.Above 10.0) ]
  in
  let ctx = mk_ctx store in
  Series.Store.observe store ~now:0.0 ~name:"x" ~labels:[] 3.0;
  checki "no fire at 6" 0 (List.length (Rules.eval eng ctx ~now:0.0));
  Series.Store.observe store ~now:1.0 ~name:"x" ~labels:[] 6.0;
  let fired = Rules.eval eng ctx ~now:1.0 in
  checki "fires at 12" 1 (List.length fired);
  checks "fired name" "too-big" (List.hd fired).Rules.as_name;
  (* recording rule wrote the derived series *)
  let d = Option.get (Series.Store.find store ~name:"doubled" ~labels:[]) in
  checkf "derived value" 12.0 (Option.get (Series.latest d)).Series.pt_last

let test_rules_for_s_holddown () =
  let store = Series.Store.create () in
  let eng =
    Rules.engine
      [ Rules.alert ~for_s:0.5 "hot" (Rules.Last ("t", [])) (Rules.Above 100.0) ]
  in
  let ctx = mk_ctx store in
  let tick now v =
    Series.Store.observe store ~now ~name:"t" ~labels:[] v;
    Rules.eval eng ctx ~now
  in
  checki "breach starts pending" 0 (List.length (tick 0.0 150.0));
  checki "still pending" 0 (List.length (tick 0.3 150.0));
  checki "held long enough: fires" 1 (List.length (tick 0.6 150.0));
  checki "stays firing, no new edge" 0 (List.length (tick 0.9 150.0));
  (* condition clears: pending resets, a new breach must re-hold *)
  ignore (tick 1.0 50.0);
  checki "cleared" 0 (List.length (Rules.firing eng));
  checki "fresh breach pends again" 0 (List.length (tick 1.1 150.0));
  checki "edges counted once so far" 1 (Rules.edges_total eng)

let test_rules_undefined_skips () =
  let store = Series.Store.create () in
  let eng =
    Rules.engine
      [ Rules.alert "ghost" (Rules.Last ("nope", [])) (Rules.Above 0.0);
        Rules.alert "div0"
          (Rules.Div (Rules.Const 1.0, Rules.Const 0.0))
          (Rules.Above (-1.0)) ]
  in
  let ctx = mk_ctx store in
  checki "nothing fires" 0 (List.length (Rules.eval eng ctx ~now:0.0));
  List.iter
    (fun (a : Rules.alert_state) ->
      checkb (a.Rules.as_name ^ " untouched") false a.Rules.as_firing)
    (Rules.alert_states eng)

let test_rules_rate_and_window_exprs () =
  let store = Series.Store.create () in
  (* counter growing 10/s; mean/max/min over trailing 1 s *)
  for i = 0 to 20 do
    let t = 0.1 *. float_of_int i in
    Series.Store.observe store ~now:t ~name:"c" ~labels:[] (10.0 *. t)
  done;
  let eng =
    Rules.engine
      [ Rules.record "rate" (Rules.Rate_over ("c", [], 1.0));
        Rules.record "mx" (Rules.Max_over ("c", [], 1.0));
        Rules.record "mn" (Rules.Min_over ("c", [], 1.0)) ]
  in
  ignore (Rules.eval eng (mk_ctx store) ~now:2.0);
  let v name =
    (Option.get
       (Series.latest (Option.get (Series.Store.find store ~name ~labels:[]))))
      .Series.pt_last
  in
  checkf "rate ~10/s" 10.0 (v "rate");
  checkf "max over window" 20.0 (v "mx");
  checkf "min over window" 10.0 (v "mn")

(* ---- facade + dashboard ---------------------------------------------------------- *)

let test_watch_scrape_and_alert () =
  let r = Metrics.create_registry () in
  let g = Metrics.gauge ~registry:r "depth" in
  let w =
    Watch.create
      ~config:{ Watch.default_config with Watch.wc_interval_s = 0.1 }
      ~rules:[ Rules.alert "deep" (Rules.Last ("depth", [])) (Rules.Above 5.0) ]
      ()
  in
  Watch.add_source w (Scrape.of_registry r);
  Metrics.set g 1.0;
  Watch.maybe_tick w ~now:0.0;
  checki "first call ticks" 1 (Watch.ticks w);
  Watch.maybe_tick w ~now:0.05;
  checki "interval gates" 1 (Watch.ticks w);
  Metrics.set g 9.0;
  Watch.maybe_tick w ~now:0.1;
  checki "second tick" 2 (Watch.ticks w);
  Alcotest.(check (list string)) "alert fired" [ "deep" ] (Watch.firing w);
  checkb "work attributed" true (Watch.work_s w > 0.0)

let test_watch_source_replace () =
  let w = Watch.create () in
  Watch.add_source w (Scrape.of_fn ~name:"s" (fun ~now:_ -> [ ("a", [], 1.0) ]));
  Watch.add_source w (Scrape.of_fn ~name:"s" (fun ~now:_ -> [ ("a", [], 2.0) ]));
  ignore (Watch.tick w ~now:0.0);
  let s = Option.get (Series.Store.find (Watch.store w) ~name:"a" ~labels:[]) in
  checki "not double-sampled" 1 (Option.get (Series.latest s)).Series.pt_count;
  checkf "replacement won" 2.0 (Option.get (Series.latest s)).Series.pt_last

let test_dashboard_deterministic () =
  let mk () =
    let r = Metrics.create_registry () in
    Metrics.set (Metrics.gauge ~registry:r "g") 3.0;
    let w = Watch.create () in
    Watch.add_source w (Scrape.of_registry r);
    Watch.observe w ~now:0.02 ~labels:[ ("t", "a") ] "lat" 0.004;
    Watch.observe w ~now:0.03 ~labels:[ ("t", "a") ] "lat" 0.005;
    ignore (Watch.tick w ~now:0.05);
    (Live.render w ~now:0.05, Live.render_json w ~now:0.05)
  in
  let t1, j1 = mk () in
  let t2, j2 = mk () in
  checks "text renders byte-identical" t1 t2;
  checks "json renders byte-identical" j1 j2;
  checkb "sketch visible" true
    (Astring.String.is_infix ~affix:"lat{" t1);
  (* json parses back *)
  let parsed = Everest_observe.Json.parse j1 in
  checkb "json roundtrips" true
    (Everest_observe.Json.member "series" parsed <> None)

let () =
  Alcotest.run "everest_watch"
    [
      ( "series",
        [ Alcotest.test_case "ring bounds" `Quick test_series_ring_bounds;
          Alcotest.test_case "staircase downsampling" `Quick
            test_series_downsampling;
          Alcotest.test_case "between picks tier" `Quick
            test_series_between_picks_tier;
          Alcotest.test_case "store sorted iteration" `Quick
            test_store_sorted_iteration ] );
      ( "sketch",
        [ QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_merge_commutative;
          QCheck_alcotest.to_alcotest prop_merge_equals_union;
          Alcotest.test_case "quantile matches Metrics" `Quick
            test_sketch_quantile_matches_metrics;
          Alcotest.test_case "windowed rotation" `Quick test_windowed_rotation ]
      );
      ( "detect",
        [ QCheck_alcotest.to_alcotest prop_constant_never_alarms;
          QCheck_alcotest.to_alcotest prop_big_step_always_alarms;
          Alcotest.test_case "cusum integrates small shift" `Quick
            test_cusum_integrates_small_shift;
          Alcotest.test_case "ewma recenters" `Quick
            test_ewma_recenters_after_step;
          Alcotest.test_case "reset" `Quick test_detector_reset ] );
      ( "phases",
        [ Alcotest.test_case "segmentation" `Quick test_phase_segmentation;
          Alcotest.test_case "blip absorbed" `Quick
            test_phase_merge_absorbs_blips;
          Alcotest.test_case "constant is one phase" `Quick
            test_phases_constant ] );
      ( "rules",
        [ Alcotest.test_case "record then alert" `Quick
            test_rules_record_then_alert;
          Alcotest.test_case "for_s hold-down" `Quick test_rules_for_s_holddown;
          Alcotest.test_case "undefined skips" `Quick
            test_rules_undefined_skips;
          Alcotest.test_case "rate and window exprs" `Quick
            test_rules_rate_and_window_exprs ] );
      ( "watch",
        [ Alcotest.test_case "scrape and alert" `Quick
            test_watch_scrape_and_alert;
          Alcotest.test_case "source replace" `Quick test_watch_source_replace;
          Alcotest.test_case "dashboard deterministic" `Quick
            test_dashboard_deterministic ] );
    ]
