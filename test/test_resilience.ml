(* Tests for everest_resilience: fault plans, recovery policies, circuit
   breakers, heartbeat health monitoring, output lineage — and their wiring
   through the workflow executor, the orchestrator and API remoting. *)

open Everest_workflow
open Everest_platform
open Everest_resilience

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-12)

(* ---- fault plans ----------------------------------------------------------- *)

let test_faults_windows () =
  let f =
    Faults.plan
      ~windows:
        [ { Faults.w_node = "a"; w_down = 1.0; w_up = Some 2.0 };
          { Faults.w_node = "b"; w_down = 3.0; w_up = None } ]
      ()
  in
  checkb "a alive before" false (Faults.node_dead f ~node:"a" ~now:0.5);
  checkb "a dead inside" true (Faults.node_dead f ~node:"a" ~now:1.5);
  checkb "a back after restart" false (Faults.node_dead f ~node:"a" ~now:2.5);
  checkb "b permanently dead" true (Faults.node_dead f ~node:"b" ~now:1e9);
  checkb "crash inside interval" true
    (Faults.down_between f ~node:"a" ~t0:0.5 ~t1:2.5);
  checkb "no crash before" false
    (Faults.down_between f ~node:"a" ~t0:0.0 ~t1:0.9);
  checkb "restart time" true (Faults.next_up f ~node:"a" ~now:1.5 = Some 2.0);
  checkb "no restart for b" true (Faults.next_up f ~node:"b" ~now:4.0 = None)

let test_faults_deterministic_draws () =
  let f = Faults.plan ~seed:9 ~transient_prob:0.4 () in
  let g = Faults.plan ~seed:9 ~transient_prob:0.4 () in
  for task = 0 to 20 do
    for attempt = 0 to 3 do
      checkb "same verdict" (Faults.transient f ~task ~attempt)
        (Faults.transient g ~task ~attempt)
    done
  done;
  (* a different seed must flip at least one verdict over a decent range *)
  let h = Faults.plan ~seed:10 ~transient_prob:0.4 () in
  let differs = ref false in
  for task = 0 to 50 do
    if Faults.transient f ~task ~attempt:0 <> Faults.transient h ~task ~attempt:0
    then differs := true
  done;
  checkb "seed matters" true !differs

let test_faults_validation () =
  (match Faults.plan ~transient_prob:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probability > 1 must be rejected");
  (match Faults.plan ~transient_prob:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probability = 1 must be rejected")

let test_faults_link_degradation () =
  let f = Faults.plan ~link_factors:[ ("a", "b", 3.0) ] () in
  checkf "declared direction" 3.0 (Faults.link_degradation f ~src:"a" ~dst:"b");
  checkf "symmetric" 3.0 (Faults.link_degradation f ~src:"b" ~dst:"a");
  checkf "other pairs clean" 1.0 (Faults.link_degradation f ~src:"a" ~dst:"c")

let test_faults_shim () =
  let f = Faults.of_failures [ ("n", 2.0) ] in
  checkb "alive before" false (Faults.node_dead f ~node:"n" ~now:1.0);
  checkb "dead forever after" true (Faults.node_dead f ~node:"n" ~now:1e12)

(* ---- recovery policy ------------------------------------------------------- *)

let test_backoff_bounds () =
  let b = { Policy.base_s = 0.01; factor = 3.0; max_s = 0.05 } in
  let rng = Everest_parallel.Rng.create 1 in
  let prev = ref 0.0 in
  for _ = 1 to 100 do
    let d = Policy.next_delay b ~rng ~prev:!prev in
    checkb "at least base" true (d >= b.Policy.base_s);
    checkb "capped" true (d <= b.Policy.max_s);
    prev := d
  done;
  let off = { Policy.base_s = 0.0; factor = 2.0; max_s = 1.0 } in
  checkf "zero base disables" 0.0 (Policy.next_delay off ~rng ~prev:0.02)

let test_policy_validation () =
  match Policy.make ~max_retries:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative retry budget must be rejected"

(* ---- circuit breaker ------------------------------------------------------- *)

let test_breaker_lifecycle () =
  let cfg =
    { Breaker.failure_threshold = 2; cooldown_s = 1.0; half_open_probes = 1 }
  in
  let b = Breaker.create ~config:cfg () in
  checkb "starts closed" true (Breaker.state b ~now:0.0 = Breaker.Closed);
  Breaker.record b ~now:0.1 ~ok:false;
  checkb "one failure stays closed" true
    (Breaker.state b ~now:0.1 = Breaker.Closed);
  Breaker.record b ~now:0.2 ~ok:false;
  checkb "threshold opens" true (Breaker.state b ~now:0.2 = Breaker.Open);
  checkb "open rejects" false (Breaker.allow b ~now:0.5);
  checkb "cooldown half-opens" true
    (Breaker.state b ~now:1.3 = Breaker.Half_open);
  checkb "half-open admits probe" true (Breaker.allow b ~now:1.3);
  checkb "probe budget bounded" false (Breaker.allow b ~now:1.3);
  Breaker.record b ~now:1.4 ~ok:true;
  checkb "probe success closes" true
    (Breaker.state b ~now:1.4 = Breaker.Closed);
  checki "opened once" 1 (Breaker.opens b)

let test_breaker_reopen_on_failed_probe () =
  let cfg =
    { Breaker.failure_threshold = 1; cooldown_s = 1.0; half_open_probes = 1 }
  in
  let b = Breaker.create ~config:cfg () in
  Breaker.record b ~now:0.0 ~ok:false;
  checkb "open" true (Breaker.state b ~now:0.0 = Breaker.Open);
  ignore (Breaker.allow b ~now:1.5);
  Breaker.record b ~now:1.6 ~ok:false;
  checkb "failed probe re-opens" true (Breaker.state b ~now:1.6 = Breaker.Open);
  checki "opened twice" 2 (Breaker.opens b);
  checkb "success interleaves reset closed counting" true
    (List.length (Breaker.transitions b) >= 3)

let test_breaker_success_resets_streak () =
  let cfg =
    { Breaker.failure_threshold = 3; cooldown_s = 1.0; half_open_probes = 1 }
  in
  let b = Breaker.create ~config:cfg () in
  Breaker.record b ~now:0.0 ~ok:false;
  Breaker.record b ~now:0.1 ~ok:false;
  Breaker.record b ~now:0.2 ~ok:true;
  Breaker.record b ~now:0.3 ~ok:false;
  Breaker.record b ~now:0.4 ~ok:false;
  checkb "non-consecutive failures stay closed" true
    (Breaker.state b ~now:0.4 = Breaker.Closed)

(* A breaker restored from a checkpoint (or shared across simulations) can
   see [~now] jump backwards past [opened_at].  The cooldown must re-base on
   the earlier clock instead of demanding a time the clock may never reach:
   "open for at most cooldown_s of observed time". *)
let test_breaker_backwards_clock () =
  let cfg =
    { Breaker.failure_threshold = 1; cooldown_s = 1.0; half_open_probes = 1 }
  in
  let b = Breaker.create ~config:cfg () in
  Breaker.record b ~now:100.0 ~ok:false;
  checkb "open at trip time" true (Breaker.state b ~now:100.0 = Breaker.Open);
  (* the clock jumps back below opened_at *)
  checkb "still open just after the jump" true
    (Breaker.state b ~now:0.2 = Breaker.Open);
  checkb "open shortly before the re-based cooldown" true
    (Breaker.state b ~now:1.1 = Breaker.Open);
  checkb "half-open once the re-based cooldown elapses" true
    (Breaker.state b ~now:1.3 = Breaker.Half_open);
  checkb "probe admitted" true (Breaker.allow b ~now:1.3);
  Breaker.record b ~now:1.4 ~ok:true;
  checkb "probe success closes" true (Breaker.state b ~now:1.4 = Breaker.Closed)

(* ---- heartbeat health ------------------------------------------------------ *)

let test_health_detects_death_and_recovery () =
  let sim = Desim.create () in
  let f =
    Faults.plan
      ~windows:[ { Faults.w_node = "n"; w_down = 0.42; w_up = Some 0.9 } ]
      ()
  in
  let events = ref [] in
  let h =
    Health.start sim ~faults:f ~interval:0.1 ~nodes:[ "n"; "m" ]
      ~on_event:(fun ~node ev -> events := (node, ev, Desim.now sim) :: !events)
  in
  Desim.at sim 2.0 (fun () -> Health.stop h);
  Desim.run sim;
  (match List.rev !events with
  | (n1, Health.Died, t1) :: (n2, Health.Recovered, t2) :: [] ->
      Alcotest.check Alcotest.string "died node" "n" n1;
      Alcotest.check Alcotest.string "recovered node" "n" n2;
      (* detection within one beat of the actual edge *)
      checkb "death detected within a beat" true (t1 >= 0.42 && t1 <= 0.53);
      checkb "recovery detected within a beat" true (t2 >= 0.9 && t2 <= 1.01)
  | evs ->
      Alcotest.failf "expected died+recovered, got %d events"
        (List.length evs));
  checkb "beats counted" true (Health.beats h >= 19)

let test_health_requires_positive_interval () =
  let sim = Desim.create () in
  match
    Health.start sim ~faults:Faults.none ~interval:0.0 ~nodes:[]
      ~on_event:(fun ~node:_ _ -> ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive interval must be rejected"

(* ---- lineage --------------------------------------------------------------- *)

let test_lineage_primary_first () =
  let f = Faults.plan () in
  let l = Lineage.create f in
  Lineage.record_primary l ~task:0 ~node:"a" ~now:0.0;
  Lineage.record_replica l ~task:0 ~node:"b" ~now:0.5;
  checkb "primary wins while valid" true
    (Lineage.choose l ~task:0 ~prefer:"b" ~now:1.0 = Some "a")

let test_lineage_survivor_after_crash () =
  let f =
    Faults.plan
      ~windows:[ { Faults.w_node = "a"; w_down = 1.0; w_up = Some 1.5 } ]
      ()
  in
  let l = Lineage.create f in
  Lineage.record_primary l ~task:0 ~node:"a" ~now:0.0;
  Lineage.record_replica l ~task:0 ~node:"b" ~now:0.5;
  (* during the outage the replica serves *)
  checkb "replica during outage" true
    (Lineage.choose l ~task:0 ~prefer:"b" ~now:1.2 = Some "b");
  (* after the restart the primary's memory is gone: still the replica *)
  checkb "restart wipes the primary copy" true
    (Lineage.choose l ~task:0 ~prefer:"b" ~now:2.0 = Some "b");
  checkb "not lost while the replica lives" false (Lineage.lost l ~task:0 ~now:2.0)

let test_lineage_lost () =
  let f =
    Faults.plan ~windows:[ { Faults.w_node = "a"; w_down = 1.0; w_up = None } ]
      ()
  in
  let l = Lineage.create f in
  Lineage.record_primary l ~task:3 ~node:"a" ~now:0.0;
  checkb "not lost while alive" false (Lineage.lost l ~task:3 ~now:0.5);
  checkb "lost when the only copy dies" true (Lineage.lost l ~task:3 ~now:2.0);
  checkb "choose finds nothing" true
    (Lineage.choose l ~task:3 ~prefer:"b" ~now:2.0 = None);
  checkb "never produced is not lost" false (Lineage.lost l ~task:9 ~now:2.0)

(* Pruning at snapshot points bounds lineage memory: invalidated copies and
   excess replicas go, but tasks with no surviving copy are untouched so
   [lost] keeps telling them apart from never-produced. *)
let test_lineage_prune_bounds_memory () =
  let f =
    Faults.plan
      ~windows:[ { Faults.w_node = "dead"; w_down = 1.0; w_up = None } ]
      ()
  in
  let l = Lineage.create f in
  Lineage.record_primary l ~task:0 ~node:"a" ~now:0.0;
  Lineage.record_replica l ~task:0 ~node:"b" ~now:0.2;
  Lineage.record_replica l ~task:0 ~node:"c" ~now:0.3;
  Lineage.record_replica l ~task:0 ~node:"dead" ~now:0.4;
  Lineage.record_primary l ~task:1 ~node:"dead" ~now:0.5;
  checki "copies before prune" 5 (Lineage.total_copies l);
  let dropped = Lineage.prune l ~now:2.0 in
  (* task 0: primary + 1 replica kept, dead copy and the excess replica
     dropped; task 1 (all copies invalid) untouched *)
  checki "dropped" 2 dropped;
  checki "copies after prune" 3 (Lineage.total_copies l);
  checkb "primary still wins" true
    (Lineage.choose l ~task:0 ~prefer:"c" ~now:2.0 = Some "a");
  checkb "kept replica serves" true
    (Lineage.choose l ~task:0 ~prefer:"b" ~now:2.0 = Some "a");
  checkb "lost task still reported lost" true (Lineage.lost l ~task:1 ~now:2.0);
  (* wider cap keeps more; idempotent at the same width *)
  checki "re-prune drops nothing" 0 (Lineage.prune l ~now:2.0)

let test_lineage_prune_keep_replicas () =
  let l = Lineage.create (Faults.plan ()) in
  Lineage.record_primary l ~task:7 ~node:"a" ~now:0.0;
  List.iteri
    (fun i n -> Lineage.record_replica l ~task:7 ~node:n ~now:(0.1 *. float_of_int i))
    [ "b"; "c"; "d"; "e" ];
  checki "five copies" 5 (Lineage.total_copies l);
  checki "cap at 2 replicas drops 2" 2
    (Lineage.prune ~keep_replicas:2 l ~now:1.0);
  checki "three left" 3 (Lineage.total_copies l);
  checki "cap at 0 leaves the primary" 2 (Lineage.prune ~keep_replicas:0 l ~now:1.0);
  checkb "primary survives" true
    (Lineage.choose l ~task:7 ~prefer:"e" ~now:1.0 = Some "a")

(* ---- executor: recovery ---------------------------------------------------- *)

let two_node_cluster () =
  Cluster.create [ Cluster.power9_node ~n_fpgas:0 "fast"; Cluster.endpoint_node "slow" ]

let single_cpu_dag flops =
  Dag.create "one"
    [ Dag.task ~id:0 ~name:"t" ~inputs:[] ~out_bytes:64
        ~impls:[ Dag.Cpu { flops; bytes = 1.0; threads = 1 } ]
        () ]

let test_executor_lineage_recompute () =
  (* t0 on [a] finishes early; [a] dies before the consumer (gated behind a
     long task on [b]) pulls its output; the lost output must be recomputed
     on a surviving node, not silently read from the dead one *)
  let d =
    Dag.create "lineage"
      [ Dag.task ~id:0 ~name:"produce" ~inputs:[] ~out_bytes:4096
          ~pinned:(Some "a")
          ~impls:[ Dag.Cpu { flops = 1e6; bytes = 1.0; threads = 1 } ]
          ();
        Dag.task ~id:1 ~name:"gate" ~inputs:[] ~out_bytes:64
          ~pinned:(Some "b")
          ~impls:[ Dag.Cpu { flops = 1e11; bytes = 1.0; threads = 1 } ]
          ();
        Dag.task ~id:2 ~name:"consume" ~inputs:[ 0; 1 ] ~out_bytes:64
          ~pinned:(Some "b")
          ~impls:[ Dag.Cpu { flops = 1e6; bytes = 1.0; threads = 1 } ]
          () ]
  in
  let c =
    Cluster.create [ Cluster.power9_node ~n_fpgas:0 "a"; Cluster.power9_node ~n_fpgas:0 "b" ]
  in
  let plan = Scheduler.min_load c d in
  let faults =
    Faults.plan ~windows:[ { Faults.w_node = "a"; w_down = 1.0; w_up = None } ] ()
  in
  let stats = Executor.execute ~faults c plan in
  checkb "all tasks complete" true
    (Array.for_all (fun f -> f >= 0.0) stats.Executor.task_finish);
  checki "lost output recomputed" 1 stats.Executor.recomputed;
  checki "no attempt failed" 0 stats.Executor.retries;
  (* the recomputation ran somewhere alive: 4 executions for 3 tasks *)
  checki "extra execution happened" 4
    (List.fold_left (fun acc (_, k) -> acc + k) 0 stats.Executor.per_node_tasks)

let test_executor_fpga_fallback_pays_reconfig () =
  (* an FPGA task whose planned node dies must divert to a surviving
     FPGA-capable node and pay reconfiguration there (the bitstream was only
     preloaded on the planned node), not silently land on a CPU *)
  let est =
    { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
      cycles = 100_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 5.0 }
  in
  let d =
    Dag.create "hw"
      [ Dag.task ~id:0 ~name:"k" ~inputs:[] ~out_bytes:1024
          ~impls:
            [ Dag.Fpga
                { bitstream = "k"; estimate = est; in_bytes = 4096;
                  out_bytes = 1024 } ]
          () ]
  in
  let c = Cluster.everest_demonstrator () in
  let plan = Scheduler.heft c d in
  let planned = plan.Scheduler.assignments.(0).Scheduler.node in
  let stats = Executor.execute ~failures:[ (planned, 0.0) ] c plan in
  checkb "task completed" true (stats.Executor.task_finish.(0) >= 0.0);
  let ran_fpga, reconfigs =
    List.fold_left
      (fun (ran, rc) (n : Node.t) ->
        if String.equal n.Node.name planned then (ran, rc)
        else
          ( (ran || (n.Node.tasks_run > 0 && Node.has_fpga n)),
            rc + List.fold_left (fun a d -> a + d.Node.reconfigs) 0 n.Node.fpgas ))
      (false, 0) c.Cluster.nodes
  in
  checkb "diverted to a surviving FPGA node" true ran_fpga;
  checkb "fallback paid reconfiguration" true (reconfigs >= 1)

let test_executor_timeout_rescues_straggler () =
  (* planned on [fast] which is dead: the attempt lands on [slow] and blows
     the plan-relative deadline; each timeout burns one retry, and once the
     budget is gone the last attempt is left to finish *)
  let c = two_node_cluster () in
  let d = single_cpu_dag 1e9 in
  let plan = Scheduler.min_load c d in
  Alcotest.check Alcotest.string "planned on fast" "fast"
    plan.Scheduler.assignments.(0).Scheduler.node;
  let policy =
    Policy.make ~max_retries:2
      ~backoff:{ Policy.base_s = 0.0; factor = 2.0; max_s = 0.0 }
      ~timeout:{ Policy.timeout_factor = 1.5; timeout_min_s = 1e-4 }
      ()
  in
  let faults = Faults.of_failures [ ("fast", 0.0) ] in
  let stats = Executor.execute ~faults ~policy c plan in
  checkb "completed despite timeouts" true (stats.Executor.task_finish.(0) >= 0.0);
  checki "budget-bounded timeouts" 2 stats.Executor.timeouts

let test_executor_speculation_wins () =
  (* [fast] is down just long enough that the first attempt lands on [slow];
     once [fast] restarts, the speculative duplicate launched at the
     straggler point finishes first *)
  let c = two_node_cluster () in
  let d = single_cpu_dag 1e10 in
  let plan = Scheduler.min_load c d in
  let fast = Cluster.find_node c "fast" in
  let slow = Cluster.find_node c "slow" in
  let impl = plan.Scheduler.assignments.(0).Scheduler.impl in
  let est_fast = Scheduler.exec_estimate fast impl in
  let est_slow = Scheduler.exec_estimate slow impl in
  checkb "meaningful speed gap" true (est_slow > 3.0 *. est_fast);
  let faults =
    Faults.plan
      ~windows:
        [ { Faults.w_node = "fast"; w_down = 0.0; w_up = Some (0.3 *. est_slow) } ]
      ()
  in
  let policy =
    Policy.make
      ~speculation:
        { Policy.spec_factor = 0.0; spec_min_s = 0.5 *. est_slow;
          max_speculative = 4 }
      ()
  in
  let stats = Executor.execute ~faults ~policy c plan in
  checki "one speculative launch" 1 stats.Executor.speculative;
  checkb "speculation beat the straggler" true
    (stats.Executor.makespan < 0.95 *. est_slow)

let test_executor_transient_faults_retry () =
  let c = two_node_cluster () in
  let d = single_cpu_dag 1e9 in
  let plan = Scheduler.min_load c d in
  let faults = Faults.plan ~seed:3 ~transient_prob:0.7 () in
  let stats = Executor.execute ~faults c plan in
  checkb "completed" true (stats.Executor.task_finish.(0) >= 0.0);
  checkb "transients caused retries" true (stats.Executor.retries >= 1)

let test_executor_typed_failure () =
  let c = Cluster.create [ Cluster.power9_node ~n_fpgas:0 "only" ] in
  let d = single_cpu_dag 1e9 in
  let plan = Scheduler.min_load c d in
  (* every attempt fails transiently often enough to exhaust a tiny budget *)
  let faults = Faults.plan ~seed:1 ~transient_prob:0.99 () in
  let policy = Policy.make ~max_retries:1 () in
  match Executor.execute ~faults ~policy c plan with
  | exception Executor.Execution_failed { reason; partial } ->
      checkb "reason names the task" true
        (Astring.String.is_infix ~affix:"retry budget" reason);
      checkb "partial stats carried" true (partial.Executor.retries >= 1)
  | _ -> Alcotest.fail "budget exhaustion must raise Execution_failed"

let test_executor_heartbeat_rescues_early () =
  (* [fast] dies mid-run; with a heartbeat the rescue happens within one
     beat instead of waiting for the doomed completion event *)
  let c = two_node_cluster () in
  let d = single_cpu_dag 1e10 in
  let plan = Scheduler.min_load c d in
  let fast = Cluster.find_node c "fast" in
  let impl = plan.Scheduler.assignments.(0).Scheduler.impl in
  let est_fast = Scheduler.exec_estimate fast impl in
  let faults = Faults.of_failures [ ("fast", 0.5 *. est_fast) ] in
  let beat = 0.05 *. est_fast in
  let with_hb =
    Executor.execute ~faults
      ~policy:(Policy.make ~heartbeat_s:beat ())
      c plan
  in
  let without =
    let c2 = two_node_cluster () in
    let plan2 = Scheduler.min_load c2 (single_cpu_dag 1e10) in
    Executor.execute ~faults c2 plan2
  in
  checkb "both complete" true
    (with_hb.Executor.task_finish.(0) >= 0.0
    && without.Executor.task_finish.(0) >= 0.0);
  checkb "heartbeat rescues earlier" true
    (with_hb.Executor.makespan < without.Executor.makespan)

(* ---- executor: determinism and byte-identity ------------------------------- *)

(* Golden numbers captured from the pre-resilience executor: zero-fault runs
   under the default policy must reproduce them bit for bit. *)
let test_zero_fault_goldens () =
  let d = Dag.layered ~seed:42 ~layers:4 ~width:4 ~flops:1e9 ~bytes:1e6 () in
  let _, s = Executor.run_on_demonstrator ~policy:"heft-locality" d in
  checkf "layered makespan" 0.24896767676767681 s.Executor.makespan;
  checki "layered bytes" 8_000_000 s.Executor.bytes_moved;
  checki "layered transfers" 8 s.Executor.transfers;
  checkf "layered energy" 56.650294949494963 s.Executor.energy_j;
  checki "layered retries" 0 s.Executor.retries;
  let fj =
    Dag.fork_join ~width:8 ~worker_flops:1e9 ~worker_bytes:1e6
      ~chunk_bytes:65536 ()
  in
  let _, s = Executor.run_on_demonstrator ~policy:"min-load" fj in
  checkf "fork-join makespan" 0.56189084872727302 s.Executor.makespan;
  checki "fork-join bytes" 4_718_592 s.Executor.bytes_moved;
  checki "fork-join transfers" 16 s.Executor.transfers;
  checkf "fork-join energy" 122.92664667814148 s.Executor.energy_j

let demonstrator_nodes =
  [ "p9"; "cf0"; "cf1"; "cf2"; "cf3"; "edge0"; "edge1"; "ep0"; "ep1"; "ep2";
    "ep3" ]

let chaos_run ~seed d =
  let faults =
    Faults.random_plan ~seed ~fault_rate:0.2 ~mean_downtime:0.2
      ~transient_prob:0.05 ~nodes:demonstrator_nodes ~horizon:1.0 ()
  in
  Executor.run_on_demonstrator ~policy:"heft-locality" ~faults
    ~exec_policy:Policy.chaos d

let qcheck_seed_determinism =
  QCheck.Test.make ~count:12 ~name:"same fault seed, bit-identical stats"
    QCheck.(pair small_nat (int_bound 1000))
    (fun (shape, seed) ->
      let d =
        Dag.layered ~seed:(shape + 1) ~layers:3 ~width:3 ~flops:5e8 ~bytes:1e5
          ()
      in
      let run () =
        match chaos_run ~seed d with
        | _, s ->
            Ok
              ( s.Executor.makespan, s.Executor.bytes_moved,
                s.Executor.retries, s.Executor.timeouts,
                s.Executor.speculative, s.Executor.recomputed,
                s.Executor.energy_j )
        | exception Executor.Execution_failed { reason; _ } -> Error reason
      in
      run () = run ())

let qcheck_trace_reconciles =
  QCheck.Test.make ~count:10 ~name:"stats reconcile with the span log"
    QCheck.(int_bound 1000)
    (fun seed ->
      let d =
        Dag.fork_join ~width:6 ~worker_flops:5e8 ~worker_bytes:1e5
          ~chunk_bytes:4096 ()
      in
      let faults =
        Faults.random_plan ~seed ~fault_rate:0.2 ~mean_downtime:0.2
          ~transient_prob:0.05 ~nodes:demonstrator_nodes ~horizon:1.0 ()
      in
      match
        Executor.run_on_demonstrator ~policy:"min-load" ~faults
          ~exec_policy:Policy.chaos ~tracer:`Sim d
      with
      | _, s ->
          s.Executor.retries = Executor.trace_retries s.Executor.span_log
          && s.Executor.timeouts = Executor.trace_timeouts s.Executor.span_log
          && s.Executor.speculative
             = Executor.trace_speculative s.Executor.span_log
          && s.Executor.recomputed
             = Executor.trace_recomputed s.Executor.span_log
          && Dag.size d = Executor.trace_tasks_completed s.Executor.span_log
          && s.Executor.bytes_moved
             = Executor.trace_bytes_moved s.Executor.span_log
      | exception Executor.Execution_failed _ -> QCheck.assume_fail ())

let qcheck_zero_fault_identity =
  QCheck.Test.make ~count:10 ~name:"zero-fault runs unchanged by the plumbing"
    QCheck.(int_bound 1000)
    (fun seed ->
      let d =
        Dag.layered ~seed:(seed + 1) ~layers:3 ~width:4 ~flops:1e9 ~bytes:2e5
          ()
      in
      let bare = snd (Executor.run_on_demonstrator ~policy:"heft" d) in
      let plumbed =
        snd
          (Executor.run_on_demonstrator ~policy:"heft" ~faults:Faults.none
             ~exec_policy:Policy.default d)
      in
      bare.Executor.makespan = plumbed.Executor.makespan
      && bare.Executor.bytes_moved = plumbed.Executor.bytes_moved
      && bare.Executor.transfers = plumbed.Executor.transfers
      && bare.Executor.energy_j = plumbed.Executor.energy_j
      && bare.Executor.task_finish = plumbed.Executor.task_finish)

let test_chaos_completes_at_twenty_percent () =
  (* the acceptance bar: a fixed seed and a 20% node-failure rate, and the
     example shapes still complete, twice, with identical makespans *)
  List.iter
    (fun d ->
      let _, a = chaos_run ~seed:7 d in
      let _, b = chaos_run ~seed:7 d in
      checkb "all tasks complete" true
        (Array.for_all (fun f -> f >= 0.0) a.Executor.task_finish);
      checkf "repeat run identical" a.Executor.makespan b.Executor.makespan)
    [ Dag.layered ~seed:5 ~layers:4 ~width:4 ~flops:1e9 ~bytes:1e6 ();
      Dag.fork_join ~width:8 ~worker_flops:1e9 ~worker_bytes:1e6
        ~chunk_bytes:65536 () ]

(* ---- remoting -------------------------------------------------------------- *)

let test_remoting_retry () =
  let open Everest_runtime in
  let sim = Desim.create () in
  let done_at = ref (-1.0) in
  (* first two attempts dropped, third lands *)
  Remoting.invoke
    ~fail:(fun ~attempt -> attempt <= 2)
    ~retries:3 sim Remoting.virtio_default ~calls:8 ~bytes_per_call:4096
    (fun () -> done_at := Desim.now sim);
  Desim.run sim;
  let clean = Remoting.cost Remoting.virtio_default ~calls:8 ~bytes_per_call:4096 in
  checkb "eventually delivered" true (!done_at > 0.0);
  checkb "retries cost time" true (!done_at > 2.0 *. clean)

let test_remoting_gives_up () =
  let open Everest_runtime in
  let sim = Desim.create () in
  let gave_up = ref 0 in
  Remoting.invoke
    ~fail:(fun ~attempt:_ -> true)
    ~retries:2
    ~on_give_up:(fun ~attempts -> gave_up := attempts)
    sim Remoting.virtio_default ~calls:1 ~bytes_per_call:64
    (fun () -> Alcotest.fail "must not deliver");
  Desim.run sim;
  checki "all attempts burned" 3 !gave_up

let test_remoting_raises_by_default () =
  let open Everest_runtime in
  let sim = Desim.create () in
  Remoting.invoke
    ~fail:(fun ~attempt:_ -> true)
    ~retries:1 sim Remoting.virtio_default ~calls:1 ~bytes_per_call:64
    (fun () -> ());
  match Desim.run sim with
  | exception Remoting.Call_failed { attempts } -> checki "attempts" 2 attempts
  | _ -> Alcotest.fail "exhausted call must raise"

let () =
  Alcotest.run "everest_resilience"
    [ ( "faults",
        [ Alcotest.test_case "windows" `Quick test_faults_windows;
          Alcotest.test_case "deterministic draws" `Quick
            test_faults_deterministic_draws;
          Alcotest.test_case "validation" `Quick test_faults_validation;
          Alcotest.test_case "link degradation" `Quick
            test_faults_link_degradation;
          Alcotest.test_case "failures shim" `Quick test_faults_shim ] );
      ( "policy",
        [ Alcotest.test_case "backoff bounds" `Quick test_backoff_bounds;
          Alcotest.test_case "validation" `Quick test_policy_validation ] );
      ( "breaker",
        [ Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "failed probe re-opens" `Quick
            test_breaker_reopen_on_failed_probe;
          Alcotest.test_case "success resets streak" `Quick
            test_breaker_success_resets_streak;
          Alcotest.test_case "backwards clock" `Quick
            test_breaker_backwards_clock ] );
      ( "health",
        [ Alcotest.test_case "death and recovery" `Quick
            test_health_detects_death_and_recovery;
          Alcotest.test_case "interval validation" `Quick
            test_health_requires_positive_interval ] );
      ( "lineage",
        [ Alcotest.test_case "primary first" `Quick test_lineage_primary_first;
          Alcotest.test_case "survivor after crash" `Quick
            test_lineage_survivor_after_crash;
          Alcotest.test_case "lost output" `Quick test_lineage_lost;
          Alcotest.test_case "prune bounds memory" `Quick
            test_lineage_prune_bounds_memory;
          Alcotest.test_case "prune replica cap" `Quick
            test_lineage_prune_keep_replicas ] );
      ( "executor-recovery",
        [ Alcotest.test_case "lineage recompute" `Quick
            test_executor_lineage_recompute;
          Alcotest.test_case "fpga fallback reconfigures" `Quick
            test_executor_fpga_fallback_pays_reconfig;
          Alcotest.test_case "timeout rescue" `Quick
            test_executor_timeout_rescues_straggler;
          Alcotest.test_case "speculation wins" `Quick
            test_executor_speculation_wins;
          Alcotest.test_case "transient retries" `Quick
            test_executor_transient_faults_retry;
          Alcotest.test_case "typed failure" `Quick test_executor_typed_failure;
          Alcotest.test_case "heartbeat rescue" `Quick
            test_executor_heartbeat_rescues_early ] );
      ( "determinism",
        [ Alcotest.test_case "zero-fault goldens" `Quick
            test_zero_fault_goldens;
          Alcotest.test_case "chaos at 20%" `Quick
            test_chaos_completes_at_twenty_percent;
          QCheck_alcotest.to_alcotest qcheck_seed_determinism;
          QCheck_alcotest.to_alcotest qcheck_trace_reconciles;
          QCheck_alcotest.to_alcotest qcheck_zero_fault_identity ] );
      ( "remoting",
        [ Alcotest.test_case "retry" `Quick test_remoting_retry;
          Alcotest.test_case "gives up" `Quick test_remoting_gives_up;
          Alcotest.test_case "raises by default" `Quick
            test_remoting_raises_by_default ] ) ]
